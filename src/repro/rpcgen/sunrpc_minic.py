"""The Sun RPC micro-layers in MiniC — the code the paper specializes.

This is a statement-for-statement rendition of the 1984 Sun RPC client
and server paths the paper works on (its Figures 1–4):

* ``xdrmem_create`` / ``xdrmem_putlong`` / ``xdrmem_getlong`` — the
  memory stream with ``x_handy`` overflow accounting (Figure 3);
* ``xdr_putlong`` / ``xdr_getlong`` — the stream-kind dispatch standing
  in for the C ``x_ops`` vtable (MiniC has no function pointers; the
  ``x_kind`` switch preserves the same interpretation overhead);
* ``xdr_long`` — the encode/decode/free dispatch (Figure 2);
* ``xdr_int`` — the "machine dependent switch on integer size";
* ``xdr_callhdr`` / ``xdr_replyhdr`` / ``xdr_callhdr_decode`` /
  ``xdr_replyhdr_encode`` — RPC message headers over the micro-layers.

The record-stream variants (``xdrrec_*``) exist so the ``x_kind``
dispatch is genuine; they carry an extra fragment-space counter the way
the C ``xdrrec`` layer tracks its output fragment.
"""

SUNRPC_MINIC_RUNTIME = r"""
#define XDR_ENCODE 0
#define XDR_DECODE 1
#define XDR_FREE 2
#define TRUE 1
#define FALSE 0

#define XDR_STREAM_MEM 0
#define XDR_STREAM_REC 1

#define MSG_CALL 0
#define MSG_REPLY 1
#define MSG_ACCEPTED 0
#define ACCEPT_SUCCESS 0
#define RPC_VERSION 2
#define AUTH_NULL 0

struct XDR {
    int x_op;          /* XDR_ENCODE / XDR_DECODE / XDR_FREE */
    int x_kind;        /* stream implementation selector */
    int x_handy;       /* bytes remaining in the buffer */
    caddr_t x_private; /* current position */
    caddr_t x_base;    /* buffer start */
    int x_frag;        /* xdrrec: bytes left in the output fragment */
};

struct CLIENT {
    u_long cl_prog;    /* remote program number */
    u_long cl_vers;    /* remote program version */
};

void xdrmem_create(struct XDR *xdrs, caddr_t addr, int size, int op)
{
    xdrs->x_op = op;
    xdrs->x_kind = XDR_STREAM_MEM;
    xdrs->x_handy = size;
    xdrs->x_private = addr;
    xdrs->x_base = addr;
    xdrs->x_frag = 0;
}

bool_t xdrmem_putlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

bool_t xdrmem_getlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *lp = (long)ntohl((u_long)(*(long *)(xdrs->x_private)));
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

bool_t xdrrec_putlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_frag -= sizeof(long)) < 0)
        return FALSE;
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *(long *)(xdrs->x_private) = (long)htonl((u_long)*lp);
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

bool_t xdrrec_getlong(struct XDR *xdrs, long *lp)
{
    if ((xdrs->x_frag -= sizeof(long)) < 0)
        return FALSE;
    if ((xdrs->x_handy -= sizeof(long)) < 0)
        return FALSE;
    *lp = (long)ntohl((u_long)(*(long *)(xdrs->x_private)));
    xdrs->x_private = xdrs->x_private + sizeof(long);
    return TRUE;
}

/* XDR_PUTLONG: generic marshaling to memory, stream... (Figure 1) */
bool_t xdr_putlong(struct XDR *xdrs, long *lp)
{
    if (xdrs->x_kind == XDR_STREAM_MEM)
        return xdrmem_putlong(xdrs, lp);
    if (xdrs->x_kind == XDR_STREAM_REC)
        return xdrrec_putlong(xdrs, lp);
    return FALSE;
}

bool_t xdr_getlong(struct XDR *xdrs, long *lp)
{
    if (xdrs->x_kind == XDR_STREAM_MEM)
        return xdrmem_getlong(xdrs, lp);
    if (xdrs->x_kind == XDR_STREAM_REC)
        return xdrrec_getlong(xdrs, lp);
    return FALSE;
}

/* Generic encoding or decoding of a long integer (Figure 2). */
bool_t xdr_long(struct XDR *xdrs, long *lp)
{
    if (xdrs->x_op == XDR_ENCODE)
        return xdr_putlong(xdrs, lp);
    if (xdrs->x_op == XDR_DECODE)
        return xdr_getlong(xdrs, lp);
    if (xdrs->x_op == XDR_FREE)
        return TRUE;
    return FALSE;
}

/* Machine dependent switch on integer size (Figure 1). */
bool_t xdr_int(struct XDR *xdrs, int *ip)
{
    if (sizeof(int) == sizeof(long))
        return xdr_long(xdrs, (long *)ip);
    return FALSE;
}

bool_t xdr_u_long(struct XDR *xdrs, u_long *ulp)
{
    if (xdrs->x_op == XDR_ENCODE)
        return xdr_putlong(xdrs, (long *)ulp);
    if (xdrs->x_op == XDR_DECODE)
        return xdr_getlong(xdrs, (long *)ulp);
    if (xdrs->x_op == XDR_FREE)
        return TRUE;
    return FALSE;
}

bool_t xdr_u_int(struct XDR *xdrs, unsigned *up)
{
    return xdr_u_long(xdrs, (u_long *)up);
}

bool_t xdr_bool(struct XDR *xdrs, int *bp)
{
    long lb;
    if (xdrs->x_op == XDR_ENCODE) {
        if (*bp != 0)
            lb = 1;
        else
            lb = 0;
        return xdr_putlong(xdrs, &lb);
    }
    if (xdrs->x_op == XDR_DECODE) {
        if (!xdr_getlong(xdrs, &lb))
            return FALSE;
        if (lb != 0)
            *bp = 1;
        else
            *bp = 0;
        return TRUE;
    }
    if (xdrs->x_op == XDR_FREE)
        return TRUE;
    return FALSE;
}

bool_t xdr_enum_t(struct XDR *xdrs, int *ep)
{
    return xdr_long(xdrs, (long *)ep);
}

int xdr_getpos(struct XDR *xdrs)
{
    return (int)(xdrs->x_private - xdrs->x_base);
}

/* Marshal the RPC call header: xid, CALL, RPC version, program,
 * version, procedure, then null credential and verifier areas. */
bool_t xdr_callhdr(struct XDR *xdrs, u_long xid, u_long prog, u_long vers,
                   u_long proc)
{
    long tmp;
    tmp = (long)xid;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = MSG_CALL;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = RPC_VERSION;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = (long)prog;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = (long)vers;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = (long)proc;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = AUTH_NULL;            /* credential flavor */
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = 0;                    /* credential length */
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = AUTH_NULL;            /* verifier flavor */
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = 0;                    /* verifier length */
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    return TRUE;
}

/* Unmarshal and validate a reply header: the dynamic tests that must
 * remain in the specialized code (paper, section 3.4). */
bool_t xdr_replyhdr(struct XDR *xdrs, u_long xid)
{
    long rxid;
    long mtype;
    long rstat;
    long vflavor;
    long vlen;
    long astat;
    if (!xdr_long(xdrs, &rxid))
        return FALSE;
    if ((u_long)rxid != xid)
        return FALSE;
    if (!xdr_long(xdrs, &mtype))
        return FALSE;
    if (mtype != MSG_REPLY)
        return FALSE;
    if (!xdr_long(xdrs, &rstat))
        return FALSE;
    if (rstat != MSG_ACCEPTED)
        return FALSE;
    if (!xdr_long(xdrs, &vflavor))
        return FALSE;
    if (!xdr_long(xdrs, &vlen))
        return FALSE;
    if (vlen == 0) {
        if (!xdr_long(xdrs, &astat))
            return FALSE;
        if (astat != ACCEPT_SUCCESS)
            return FALSE;
        return TRUE;
    }
    return FALSE;
}

/* Server side: unmarshal and validate a call header. */
bool_t xdr_callhdr_decode(struct XDR *xdrs, u_long prog, u_long vers,
                          u_long *xidp, long *procp)
{
    long tmp;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    *xidp = (u_long)tmp;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    if (tmp != MSG_CALL)
        return FALSE;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    if (tmp != RPC_VERSION)
        return FALSE;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    if ((u_long)tmp != prog)
        return FALSE;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    if ((u_long)tmp != vers)
        return FALSE;
    if (!xdr_long(xdrs, procp))
        return FALSE;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    if (tmp == 0) {
        if (!xdr_long(xdrs, &tmp))
            return FALSE;
        if (!xdr_long(xdrs, &tmp))
            return FALSE;
        if (tmp == 0)
            return TRUE;
        return FALSE;
    }
    return FALSE;
}

/* Server side: marshal an accepted SUCCESS reply header. */
bool_t xdr_replyhdr_encode(struct XDR *xdrs, u_long xid)
{
    long tmp;
    tmp = (long)xid;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = MSG_REPLY;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = MSG_ACCEPTED;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = AUTH_NULL;            /* verifier flavor */
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = 0;                    /* verifier length */
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    tmp = ACCEPT_SUCCESS;
    if (!xdr_long(xdrs, &tmp))
        return FALSE;
    return TRUE;
}
"""
