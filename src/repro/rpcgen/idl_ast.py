"""AST for the rpcgen interface definition language (.x files)."""

from dataclasses import dataclass, field


class TypeRef:
    """Base class for IDL type references."""


@dataclass(frozen=True)
class Prim(TypeRef):
    """A primitive: int, unsigned, bool, hyper, float, double, void."""

    name: str


@dataclass(frozen=True)
class Named(TypeRef):
    """Reference to a typedef/struct/enum/union by name."""

    name: str


@dataclass(frozen=True)
class StringT(TypeRef):
    """``string name<bound>``."""

    bound: int = 0xFFFFFFFF


@dataclass(frozen=True)
class OpaqueFixed(TypeRef):
    """``opaque name[size]``."""

    size: int = 0


@dataclass(frozen=True)
class OpaqueVar(TypeRef):
    """``opaque name<bound>``."""

    bound: int = 0xFFFFFFFF


@dataclass(frozen=True)
class FixedArray(TypeRef):
    elem: TypeRef = None
    size: int = 0


@dataclass(frozen=True)
class VarArray(TypeRef):
    """Bounded counted array ``T name<bound>``."""

    elem: TypeRef = None
    bound: int = 0xFFFFFFFF


@dataclass(frozen=True)
class Optional(TypeRef):
    """``T *name`` — XDR optional data."""

    elem: TypeRef = None


VOID = Prim("void")


@dataclass
class ConstDef:
    name: str
    value: int


@dataclass
class EnumDef:
    name: str
    members: list  # (name, value)


@dataclass
class TypedefDef:
    name: str
    type: TypeRef


@dataclass
class FieldDecl:
    name: str
    type: TypeRef


@dataclass
class StructDef:
    name: str
    fields: list  # FieldDecl


@dataclass
class UnionArm:
    values: list  # discriminant values for this arm
    decl: FieldDecl  # decl.type may be VOID


@dataclass
class UnionDef:
    name: str
    disc_name: str
    disc_type: TypeRef
    arms: list  # UnionArm
    default: FieldDecl = None


@dataclass
class ProcDef:
    name: str
    number: int
    ret: TypeRef
    arg: TypeRef


@dataclass
class VersionDef:
    name: str
    number: int
    procs: list  # ProcDef


@dataclass
class ProgramDef:
    name: str
    number: int
    versions: list  # VersionDef


@dataclass
class Interface:
    """A parsed .x file."""

    consts: list = field(default_factory=list)
    enums: list = field(default_factory=list)
    typedefs: list = field(default_factory=list)
    structs: list = field(default_factory=list)
    unions: list = field(default_factory=list)
    programs: list = field(default_factory=list)

    def struct(self, name):
        for struct in self.structs:
            if struct.name == name:
                return struct
        raise KeyError(name)

    def resolve(self, type_ref):
        """Follow typedef chains to the underlying type."""
        seen = set()
        while isinstance(type_ref, Named):
            if type_ref.name in seen:
                raise ValueError(f"typedef cycle at {type_ref.name}")
            seen.add(type_ref.name)
            for typedef in self.typedefs:
                if typedef.name == type_ref.name:
                    type_ref = typedef.type
                    break
            else:
                return type_ref  # struct/enum/union name
        return type_ref
