"""MiniC stub generation — the rpcgen output the Tempo specializer eats.

For an interface, generates (on top of the fixed Sun RPC micro-layer
runtime in :mod:`repro.rpcgen.sunrpc_minic`):

* one MiniC struct per IDL struct (bounded arrays ``T f<N>`` flatten to
  ``int f_len; T f[N];`` as the classic rpcgen's ``struct { u_int len;
  T *val; }`` does, with the bound made explicit);
* one ``xdr_<S>`` filter per struct, written with the *expected-length
  guard* of the paper's §6.2: the dynamic length is compared against a
  parameter known at specialization time, and the matching branch
  re-assigns the known value so flow-sensitive binding-time analysis
  unrolls the element loop;
* per procedure: ``<proc>_marshal`` (client argument marshaling — the
  paper's Table 1 micro-benchmark), ``<proc>_call`` (full client call
  over ``net_sendrecv`` with the ``expected_inlen`` rewrite — Table 2),
  and a server dispatcher ``svc_handle_<prog>_<vers>`` (+ its
  ``svc_process`` body shared by the expected/generic branches).

The MiniC path supports the type subset the paper's workload exercises:
32-bit scalars (int/unsigned/bool/enum), structs of them, fixed arrays
and bounded arrays.  Strings, floats, unions and optionals are served by
the Python stub path (:mod:`repro.rpcgen.codegen_py`).
"""

from repro.errors import IdlError
from repro.rpcgen import idl_ast as idl
from repro.rpcgen.sunrpc_minic import SUNRPC_MINIC_RUNTIME

_SCALAR_FILTERS = {
    "int": "xdr_int",
    "u_int": "xdr_u_int",
    "bool": "xdr_bool",
}

_SCALAR_CTYPES = {
    "int": "int",
    "u_int": "unsigned",
    "bool": "int",
}


class MiniCGenerator:
    def __init__(self, interface):
        self.interface = interface
        self.lines = []
        self.struct_names = {s.name for s in interface.structs}
        self.enum_names = {e.name for e in interface.enums}

    def emit(self, text=""):
        self.lines.append(text)

    # -- type mapping -----------------------------------------------------

    def resolve(self, type_ref):
        resolved = self.interface.resolve(type_ref)
        return resolved

    def scalar_kind(self, type_ref):
        """'int'/'u_int'/'bool' for 32-bit scalars, or None."""
        type_ref = self.resolve(type_ref)
        if isinstance(type_ref, idl.Prim) and type_ref.name in (
            "int", "u_int", "bool",
        ):
            return type_ref.name
        if isinstance(type_ref, idl.Named) and type_ref.name in (
            self.enum_names
        ):
            return "int"
        return None

    def unsupported(self, type_ref, where):
        raise IdlError(
            f"{where}: type {type_ref!r} is outside the MiniC stub subset"
            " (use the Python stub path for strings/floats/unions)"
        )

    # -- expected-length parameters --------------------------------------

    def var_fields(self, struct):
        """Bounded-array fields of a struct (these need expected-length
        guards)."""
        result = []
        for field in struct.fields:
            resolved = self.resolve(field.type)
            if isinstance(resolved, idl.VarArray):
                result.append(field.name)
        return result

    def expected_params(self, struct):
        return [f"expected_{name}_len" for name in self.var_fields(struct)]

    def expected_param_decl(self, struct):
        return "".join(
            f", int {param}" for param in self.expected_params(struct)
        )

    def expected_args(self, struct):
        return "".join(f", {p}" for p in self.expected_params(struct))

    # -- struct definitions -------------------------------------------------

    def struct_defs(self):
        for struct in self.interface.structs:
            self.emit(f"struct {struct.name} {{")
            for field in struct.fields:
                resolved = self.resolve(field.type)
                scalar = self.scalar_kind(field.type)
                if scalar is not None:
                    self.emit(f"    {_SCALAR_CTYPES[scalar]} {field.name};")
                elif isinstance(resolved, idl.FixedArray):
                    elem = self.scalar_kind(resolved.elem)
                    if elem is None:
                        self.unsupported(resolved, struct.name)
                    self.emit(
                        f"    {_SCALAR_CTYPES[elem]}"
                        f" {field.name}[{resolved.size}];"
                    )
                elif isinstance(resolved, idl.VarArray):
                    elem = self.scalar_kind(resolved.elem)
                    if elem is None:
                        self.unsupported(resolved, struct.name)
                    self.emit(f"    int {field.name}_len;")
                    self.emit(
                        f"    {_SCALAR_CTYPES[elem]}"
                        f" {field.name}[{resolved.bound}];"
                    )
                elif isinstance(resolved, idl.Named) and (
                    resolved.name in self.struct_names
                ):
                    self.emit(f"    struct {resolved.name} {field.name};")
                else:
                    self.unsupported(resolved, struct.name)
            self.emit("};")
            self.emit("")

    # -- xdr filters ------------------------------------------------------------

    def xdr_filters(self):
        for struct in self.interface.structs:
            self._xdr_filter(struct)

    def _scalar_call(self, kind, target):
        return f"{_SCALAR_FILTERS[kind]}(xdrs, &{target})"

    def _needs_index(self, struct):
        for field in struct.fields:
            resolved = self.resolve(field.type)
            if isinstance(resolved, (idl.FixedArray, idl.VarArray)):
                return True
        return False

    def _xdr_filter(self, struct):
        params = self.expected_param_decl(struct)
        self.emit(
            f"bool_t xdr_{struct.name}(struct XDR *xdrs,"
            f" struct {struct.name} *objp{params})"
        )
        self.emit("{")
        if self._needs_index(struct):
            self.emit("    int i;")
        for field in struct.fields:
            resolved = self.resolve(field.type)
            scalar = self.scalar_kind(field.type)
            if scalar is not None:
                self.emit(
                    f"    if (!{self._scalar_call(scalar, f'objp->{field.name}')})"
                )
                self.emit("        return FALSE;")
            elif isinstance(resolved, idl.FixedArray):
                elem = self.scalar_kind(resolved.elem)
                self.emit(
                    f"    for (i = 0; i < {resolved.size}; i++) {{"
                )
                self.emit(
                    f"        if (!{self._scalar_call(elem, f'objp->{field.name}[i]')})"
                )
                self.emit("            return FALSE;")
                self.emit("    }")
            elif isinstance(resolved, idl.VarArray):
                self._var_array_field(struct, field, resolved)
            elif isinstance(resolved, idl.Named) and (
                resolved.name in self.struct_names
            ):
                nested = self.interface.struct(resolved.name)
                nested_args = self.expected_args(nested)
                if nested_args:
                    raise IdlError(
                        f"{struct.name}.{field.name}: nested structs with"
                        " bounded arrays are outside the MiniC stub subset"
                    )
                self.emit(
                    f"    if (!xdr_{resolved.name}(xdrs,"
                    f" &objp->{field.name}))"
                )
                self.emit("        return FALSE;")
            else:
                self.unsupported(resolved, struct.name)
        self.emit("    return TRUE;")
        self.emit("}")
        self.emit("")

    def _var_array_field(self, struct, field, resolved):
        """Bounded array with the paper's expected-length guard: the
        matching branch re-binds the length to the statically known
        value so the element loop unrolls under specialization."""
        elem = self.scalar_kind(resolved.elem)
        if elem is None:
            self.unsupported(resolved, struct.name)
        name = field.name
        expected = f"expected_{name}_len"
        item = self._scalar_call(elem, f"objp->{name}[i]")
        self.emit(f"    if (!xdr_int(xdrs, &objp->{name}_len))")
        self.emit("        return FALSE;")
        self.emit(f"    if (objp->{name}_len < 0)")
        self.emit("        return FALSE;")
        self.emit(f"    if (objp->{name}_len > {resolved.bound})")
        self.emit("        return FALSE;")
        self.emit(f"    if (objp->{name}_len == {expected}) {{")
        self.emit(f"        objp->{name}_len = {expected};")
        self.emit(f"        for (i = 0; i < objp->{name}_len; i++) {{")
        self.emit(f"            if (!{item})")
        self.emit("                return FALSE;")
        self.emit("        }")
        self.emit("    } else {")
        self.emit(f"        for (i = 0; i < objp->{name}_len; i++) {{")
        self.emit(f"            if (!{item})")
        self.emit("                return FALSE;")
        self.emit("        }")
        self.emit("    }")

    # -- client functions -----------------------------------------------------

    def _struct_of(self, type_ref, where):
        resolved = self.resolve(type_ref)
        if isinstance(resolved, idl.Named) and (
            resolved.name in self.struct_names
        ):
            return self.interface.struct(resolved.name)
        raise IdlError(
            f"{where}: MiniC stubs need struct argument/result types,"
            f" got {type_ref!r}"
        )

    def client_functions(self, program, version):
        for proc in version.procs:
            arg = self._struct_of(proc.arg, proc.name)
            ret = self._struct_of(proc.ret, proc.name)
            self._marshal_function(proc, arg)
            self._recv_function(proc, ret)
            self._call_function(proc, arg, ret)

    def _marshal_function(self, proc, arg):
        name = proc.name.lower()
        self.emit(
            f"int {name}_marshal(struct CLIENT *clnt, u_long xid,"
            f" struct {arg.name} *argsp, caddr_t outbuf, int outsize"
            f"{self.expected_param_decl(arg)})"
        )
        self.emit("{")
        self.emit("    struct XDR xdr_out;")
        self.emit("    xdrmem_create(&xdr_out, outbuf, outsize, XDR_ENCODE);")
        self.emit(
            f"    if (!xdr_callhdr(&xdr_out, xid, clnt->cl_prog,"
            f" clnt->cl_vers, {proc.number}))"
        )
        self.emit("        return 0;")
        self.emit(
            f"    if (!xdr_{arg.name}(&xdr_out, argsp"
            f"{self.expected_args(arg)}))"
        )
        self.emit("        return 0;")
        self.emit("    return xdr_getpos(&xdr_out);")
        self.emit("}")
        self.emit("")

    def _recv_function(self, proc, ret):
        name = proc.name.lower()
        self.emit(
            f"int {name}_recv(caddr_t inbuf, int inlen, u_long xid,"
            f" struct {ret.name} *resp{self.expected_param_decl(ret)})"
        )
        self.emit("{")
        self.emit("    struct XDR xdr_in;")
        self.emit("    xdrmem_create(&xdr_in, inbuf, inlen, XDR_DECODE);")
        self.emit("    if (!xdr_replyhdr(&xdr_in, xid))")
        self.emit("        return FALSE;")
        self.emit(
            f"    if (!xdr_{ret.name}(&xdr_in, resp"
            f"{self.expected_args(ret)}))"
        )
        self.emit("        return FALSE;")
        self.emit("    return TRUE;")
        self.emit("}")
        self.emit("")

    def _call_function(self, proc, arg, ret):
        name = proc.name.lower()
        ret_expected = self.expected_args(ret)
        self.emit(
            f"int {name}_call(struct CLIENT *clnt, u_long xid,"
            f" struct {arg.name} *argsp, struct {ret.name} *resp,"
            f" caddr_t outbuf, int outsize, caddr_t inbuf, int insize,"
            f" int expected_inlen{self.expected_param_decl(arg)}"
            f"{_rename_params(self.expected_param_decl(ret), '_res')})"
        )
        self.emit("{")
        self.emit("    struct XDR xdr_out;")
        self.emit("    int outlen;")
        self.emit("    int inlen;")
        self.emit("    xdrmem_create(&xdr_out, outbuf, outsize, XDR_ENCODE);")
        self.emit(
            f"    if (!xdr_callhdr(&xdr_out, xid, clnt->cl_prog,"
            f" clnt->cl_vers, {proc.number}))"
        )
        self.emit("        return FALSE;")
        self.emit(
            f"    if (!xdr_{arg.name}(&xdr_out, argsp"
            f"{self.expected_args(arg)}))"
        )
        self.emit("        return FALSE;")
        self.emit("    outlen = xdr_getpos(&xdr_out);")
        self.emit("    bzero(inbuf, insize);")
        self.emit("    inlen = net_sendrecv(outbuf, outlen, inbuf, insize);")
        res_args = _rename_args(ret_expected, "_res")
        self.emit("    if (inlen == expected_inlen) {")
        self.emit(
            f"        return {name}_recv(inbuf, expected_inlen, xid,"
            f" resp{res_args});"
        )
        self.emit("    }")
        self.emit(
            f"    return {name}_recv(inbuf, inlen, xid, resp{res_args});"
        )
        self.emit("}")
        self.emit("")

    # -- server functions -----------------------------------------------------

    def server_functions(self, program, version):
        procs = [
            (
                proc,
                self._struct_of(proc.arg, proc.name),
                self._struct_of(proc.ret, proc.name),
            )
            for proc in version.procs
        ]
        self._svc_process(program, version, procs)
        self._svc_handle(program, version, procs)

    def _svc_expected_decl(self, procs):
        parts = []
        for proc, arg, ret in procs:
            lname = proc.name.lower()
            for param in self.expected_params(arg):
                parts.append(f", int {lname}_{param}")
            for param in self.expected_params(ret):
                parts.append(f", int {lname}_{param}_res")
        return "".join(parts)

    def _svc_expected_args(self, procs):
        decl = self._svc_expected_decl(procs)
        return "".join(
            f", {part.split()[-1]}" for part in decl.split(",") if part.strip()
        )

    def _svc_process(self, program, version, procs):
        suffix = f"{program.name.lower()}_{version.number}"
        self.emit(
            f"int svc_process_{suffix}(caddr_t inbuf, int inlen,"
            f" caddr_t outbuf, int outsize"
            f"{self._svc_expected_decl(procs)})"
        )
        self.emit("{")
        self.emit("    struct XDR xdr_in;")
        self.emit("    struct XDR xdr_out;")
        self.emit("    u_long xid;")
        self.emit("    long proc;")
        self.emit("    xid = 0;")
        self.emit("    proc = 0;")
        self.emit("    xdrmem_create(&xdr_in, inbuf, inlen, XDR_DECODE);")
        self.emit(
            f"    if (!xdr_callhdr_decode(&xdr_in, {program.number},"
            f" {version.number}, &xid, &proc))"
        )
        self.emit("        return 0;")
        for proc, arg, ret in procs:
            lname = proc.name.lower()
            arg_args = "".join(
                f", {lname}_{p}" for p in self.expected_params(arg)
            )
            ret_args = "".join(
                f", {lname}_{p}_res" for p in self.expected_params(ret)
            )
            self.emit(f"    if (proc == {proc.number}) {{")
            self.emit(f"        struct {arg.name} args;")
            self.emit(f"        struct {ret.name} res;")
            self.emit(
                f"        if (!xdr_{arg.name}(&xdr_in, &args{arg_args}))"
            )
            self.emit("            return 0;")
            self.emit(f"        {lname}_impl(&args, &res);")
            self.emit(
                "        xdrmem_create(&xdr_out, outbuf, outsize,"
                " XDR_ENCODE);"
            )
            self.emit("        if (!xdr_replyhdr_encode(&xdr_out, xid))")
            self.emit("            return 0;")
            self.emit(
                f"        if (!xdr_{ret.name}(&xdr_out, &res{ret_args}))"
            )
            self.emit("            return 0;")
            self.emit("        return xdr_getpos(&xdr_out);")
            self.emit("    }")
        self.emit("    return 0;")
        self.emit("}")
        self.emit("")

    def _svc_handle(self, program, version, procs):
        suffix = f"{program.name.lower()}_{version.number}"
        self.emit(
            f"int svc_handle_{suffix}(caddr_t inbuf, int inlen,"
            f" caddr_t outbuf, int outsize, int expected_inlen"
            f"{self._svc_expected_decl(procs)})"
        )
        self.emit("{")
        args = self._svc_expected_args(procs)
        self.emit("    if (inlen == expected_inlen) {")
        self.emit(
            f"        return svc_process_{suffix}(inbuf, expected_inlen,"
            f" outbuf, outsize{args});"
        )
        self.emit("    }")
        self.emit(
            f"    return svc_process_{suffix}(inbuf, inlen, outbuf,"
            f" outsize{args});"
        )
        self.emit("}")
        self.emit("")

    # -- assembly ----------------------------------------------------------------

    def generate(self, impl_sources=None):
        self.emit(SUNRPC_MINIC_RUNTIME)
        self.struct_defs()
        self.xdr_filters()
        if impl_sources:
            for source in impl_sources:
                self.emit(source)
                self.emit("")
        for program in self.interface.programs:
            for version in program.versions:
                self.client_functions(program, version)
                if impl_sources:
                    self.server_functions(program, version)
        return "\n".join(self.lines) + "\n"


def _rename_params(decl, suffix):
    """Append ``suffix`` to each ``, int name`` parameter name."""
    if not decl:
        return ""
    parts = []
    for part in decl.split(","):
        part = part.strip()
        if part:
            parts.append(f", {part}{suffix}")
    return "".join(parts)


def _rename_args(args, suffix):
    if not args:
        return ""
    parts = []
    for part in args.split(","):
        part = part.strip()
        if part:
            parts.append(f", {part}{suffix}")
    return "".join(parts)


def generate_minic(interface, impl_sources=None):
    """Generate the complete MiniC translation unit for an interface.

    ``impl_sources`` optionally supplies MiniC implementations
    (``<proc>_impl(struct A *, struct R *)``) enabling server-side
    generation; without them only client code is produced.
    """
    return MiniCGenerator(interface).generate(impl_sources)
