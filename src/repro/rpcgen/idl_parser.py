"""Parser for the rpcgen interface language (.x files).

Reuses the MiniC lexer (the token-level languages coincide) and parses
the RPC-language subset the 1984 rpcgen accepted: ``const``, ``enum``,
``typedef``, ``struct``, ``union ... switch``, and
``program { version { procs } = N; } = M;`` declarations.
"""

from repro.errors import IdlError
from repro.minic.lexer import tokenize
from repro.minic.tokens import EOF, IDENT, INT, KEYWORD, PUNCT
from repro.rpcgen import idl_ast as idl

_PRIMS = {
    "int": "int",
    "long": "int",
    "short": "int",
    "char": "int",
    "bool": "bool",
    "bool_t": "bool",
    "hyper": "hyper",
    "float": "float",
    "double": "double",
    "void": "void",
}


class IdlParser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0
        self.consts = {}

    # -- token plumbing ------------------------------------------------

    def peek(self, ahead=0):
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def error(self, message):
        token = self.peek()
        where = f" at {token.line}:{token.col} (near {token.value!r})"
        raise IdlError(f"{message}{where}")

    def expect_punct(self, text):
        token = self.peek()
        if not (token.kind == PUNCT and token.value == text):
            self.error(f"expected {text!r}")
        return self.advance()

    def expect_name(self):
        token = self.peek()
        if token.kind not in (IDENT, KEYWORD):
            self.error("expected a name")
        return self.advance().value

    def expect_word(self, word):
        token = self.peek()
        if token.value != word or token.kind not in (IDENT, KEYWORD):
            self.error(f"expected {word!r}")
        return self.advance()

    def at_word(self, word):
        token = self.peek()
        return token.kind in (IDENT, KEYWORD) and token.value == word

    def parse_value(self):
        """An integer literal, a defined constant, or a negative."""
        token = self.peek()
        if token.kind == PUNCT and token.value == "-":
            self.advance()
            return -self.parse_value()
        if token.kind == INT:
            self.advance()
            return token.value
        if token.kind in (IDENT, KEYWORD) and token.value in self.consts:
            self.advance()
            return self.consts[token.value]
        self.error("expected an integer constant")

    # -- grammar --------------------------------------------------------

    def parse(self):
        interface = idl.Interface()
        while self.peek().kind != EOF:
            if self.at_word("const"):
                interface.consts.append(self.parse_const())
            elif self.at_word("enum"):
                interface.enums.append(self.parse_enum())
            elif self.at_word("typedef"):
                interface.typedefs.append(self.parse_typedef())
            elif self.at_word("struct"):
                interface.structs.append(self.parse_struct())
            elif self.at_word("union"):
                interface.unions.append(self.parse_union())
            elif self.at_word("program"):
                interface.programs.append(self.parse_program())
            else:
                self.error("expected a top-level declaration")
        return interface

    def parse_const(self):
        self.advance()  # const
        name = self.expect_name()
        self.expect_punct("=")
        value = self.parse_value()
        self.expect_punct(";")
        self.consts[name] = value
        return idl.ConstDef(name, value)

    def parse_enum(self):
        self.advance()  # enum
        name = self.expect_name()
        self.expect_punct("{")
        members = []
        next_value = 0
        while not self.peek().is_punct("}"):
            member = self.expect_name()
            if self.peek().is_punct("="):
                self.advance()
                next_value = self.parse_value()
            members.append((member, next_value))
            self.consts[member] = next_value
            next_value += 1
            if not self.peek().is_punct(","):
                break
            self.advance()
        self.expect_punct("}")
        self.expect_punct(";")
        return idl.EnumDef(name, members)

    def parse_base_type(self):
        """A type name (possibly multi-word like ``unsigned int``)."""
        token = self.peek()
        if token.value == "unsigned":
            self.advance()
            if self.peek().value in ("int", "long", "short", "char",
                                     "hyper"):
                inner = self.advance().value
                if inner == "hyper":
                    return idl.Prim("u_hyper")
                return idl.Prim("u_int")
            return idl.Prim("u_int")
        if token.value == "struct":
            self.advance()
            return idl.Named(self.expect_name())
        if token.value == "enum":
            self.advance()
            return idl.Named(self.expect_name())
        name = self.expect_name()
        if name in _PRIMS:
            return idl.Prim(_PRIMS[name])
        if name == "u_int" or name == "u_long":
            return idl.Prim("u_int")
        return idl.Named(name)

    def parse_declaration(self):
        """One declaration: ``type name``, with array/pointer suffixes
        and the string/opaque special forms.  Returns FieldDecl."""
        if self.at_word("void"):
            self.advance()
            return idl.FieldDecl("", idl.VOID)
        if self.at_word("string"):
            self.advance()
            name = self.expect_name()
            bound = self._angle_bound()
            return idl.FieldDecl(name, idl.StringT(bound))
        if self.at_word("opaque"):
            self.advance()
            name = self.expect_name()
            if self.peek().is_punct("["):
                self.advance()
                size = self.parse_value()
                self.expect_punct("]")
                return idl.FieldDecl(name, idl.OpaqueFixed(size))
            bound = self._angle_bound()
            return idl.FieldDecl(name, idl.OpaqueVar(bound))
        base = self.parse_base_type()
        pointer = False
        if self.peek().is_punct("*"):
            self.advance()
            pointer = True
        name = self.expect_name()
        type_ref = base
        if self.peek().is_punct("["):
            self.advance()
            size = self.parse_value()
            self.expect_punct("]")
            type_ref = idl.FixedArray(base, size)
        elif self.peek().is_punct("<"):
            bound = self._angle_bound()
            type_ref = idl.VarArray(base, bound)
        if pointer:
            type_ref = idl.Optional(type_ref)
        return idl.FieldDecl(name, type_ref)

    def _angle_bound(self):
        if not self.peek().is_punct("<"):
            return 0xFFFFFFFF
        self.advance()
        if self.peek().is_punct(">"):
            self.advance()
            return 0xFFFFFFFF
        bound = self.parse_value()
        self.expect_punct(">")
        return bound

    def parse_typedef(self):
        self.advance()  # typedef
        decl = self.parse_declaration()
        self.expect_punct(";")
        if not decl.name:
            self.error("typedef needs a name")
        return idl.TypedefDef(decl.name, decl.type)

    def parse_struct(self):
        self.advance()  # struct
        name = self.expect_name()
        self.expect_punct("{")
        fields = []
        while not self.peek().is_punct("}"):
            decl = self.parse_declaration()
            self.expect_punct(";")
            fields.append(decl)
        self.expect_punct("}")
        self.expect_punct(";")
        return idl.StructDef(name, fields)

    def parse_union(self):
        self.advance()  # union
        name = self.expect_name()
        self.expect_word("switch")
        self.expect_punct("(")
        disc_type = self.parse_base_type()
        disc_name = self.expect_name()
        self.expect_punct(")")
        self.expect_punct("{")
        arms = []
        default = None
        while not self.peek().is_punct("}"):
            if self.at_word("case"):
                values = []
                while self.at_word("case"):
                    self.advance()
                    values.append(self.parse_value())
                    self.expect_punct(":")
                decl = self.parse_declaration()
                self.expect_punct(";")
                arms.append(idl.UnionArm(values, decl))
            elif self.at_word("default"):
                self.advance()
                self.expect_punct(":")
                decl = self.parse_declaration()
                self.expect_punct(";")
                default = decl
            else:
                self.error("expected case or default")
        self.expect_punct("}")
        self.expect_punct(";")
        return idl.UnionDef(name, disc_name, disc_type, arms, default)

    def parse_program(self):
        self.advance()  # program
        name = self.expect_name()
        self.expect_punct("{")
        versions = []
        while not self.peek().is_punct("}"):
            versions.append(self.parse_version())
        self.expect_punct("}")
        self.expect_punct("=")
        number = self.parse_value()
        self.expect_punct(";")
        return idl.ProgramDef(name, number, versions)

    def parse_version(self):
        self.expect_word("version")
        name = self.expect_name()
        self.expect_punct("{")
        procs = []
        while not self.peek().is_punct("}"):
            procs.append(self.parse_proc())
        self.expect_punct("}")
        self.expect_punct("=")
        number = self.parse_value()
        self.expect_punct(";")
        return idl.VersionDef(name, number, procs)

    def parse_proc(self):
        ret = self._proc_type()
        name = self.expect_name()
        self.expect_punct("(")
        arg = self._proc_type()
        self.expect_punct(")")
        self.expect_punct("=")
        number = self.parse_value()
        self.expect_punct(";")
        return idl.ProcDef(name, number, ret, arg)

    def _proc_type(self):
        if self.at_word("void"):
            self.advance()
            return idl.VOID
        if self.at_word("string"):
            self.advance()
            return idl.StringT()
        base = self.parse_base_type()
        if self.peek().is_punct("*"):
            self.advance()
            return idl.Optional(base)
        return base


def parse_idl(source):
    """Parse .x interface source into an :class:`Interface`."""
    return IdlParser(tokenize(source)).parse()
