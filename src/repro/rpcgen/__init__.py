"""rpcgen — the Sun RPC stub compiler.

Parses ``.x`` interface files (the XDR/RPC language subset the paper's
``rmin`` example uses: constants, enums, typedefs, structs, unions,
program/version/procedure declarations) and generates:

* Python stubs over the :mod:`repro.xdr` micro-layers and
  :mod:`repro.rpc` transports (:mod:`repro.rpcgen.codegen_py`);
* MiniC marshaling code mirroring the paper's Figure 1 call path
  (:mod:`repro.rpcgen.codegen_minic`), which is what the Tempo
  specializer optimizes.
"""

from repro.rpcgen.idl_parser import parse_idl
from repro.rpcgen.codegen_py import generate_python
from repro.rpcgen.codegen_minic import generate_minic

__all__ = ["parse_idl", "generate_python", "generate_minic"]
