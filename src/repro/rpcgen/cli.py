"""``repro-rpcgen`` — command-line stub compiler.

Usage::

    repro-rpcgen interface.x --python out_stubs.py
    repro-rpcgen interface.x --minic out_stubs.c
"""

import argparse
import sys

from repro.rpcgen.codegen_minic import generate_minic
from repro.rpcgen.codegen_py import generate_python
from repro.rpcgen.idl_parser import parse_idl


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-rpcgen",
        description="Sun RPC stub compiler (Python and MiniC back ends)",
    )
    parser.add_argument("input", help=".x interface definition file")
    parser.add_argument(
        "--python", metavar="FILE", help="write Python stubs to FILE"
    )
    parser.add_argument(
        "--minic", metavar="FILE", help="write MiniC stubs to FILE"
    )
    args = parser.parse_args(argv)
    with open(args.input, encoding="utf-8") as handle:
        interface = parse_idl(handle.read())
    wrote = False
    if args.python:
        with open(args.python, "w", encoding="utf-8") as handle:
            handle.write(generate_python(interface))
        wrote = True
    if args.minic:
        with open(args.minic, "w", encoding="utf-8") as handle:
            handle.write(generate_minic(interface))
        wrote = True
    if not wrote:
        sys.stdout.write(generate_python(interface))
    return 0


if __name__ == "__main__":
    sys.exit(main())
