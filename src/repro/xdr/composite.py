"""XDR composite filters: opaque data, strings, arrays, unions,
optionals (RFC 1014 §3.9–3.15).

These are the micro-layers the generated stubs compose: ``xdr_array``
takes the element filter as a parameter, exactly like the C library
takes an ``xdrproc_t`` function pointer.
"""

from repro.errors import XdrError
from repro.xdr.primitives import xdr_bool, xdr_u_long, xdr_void
from repro.xdr.xdr_ops import XdrOp


def xdr_opaque(xdrs, value, size):
    """Fixed-length opaque data, padded to a 4-byte boundary."""
    if xdrs.x_op == XdrOp.ENCODE:
        data = bytes(value)
        if len(data) != size:
            raise XdrError(
                f"opaque size mismatch: expected {size}, got {len(data)}"
            )
        if not xdrs.putbytes(data) or not xdrs.put_padding(size):
            raise XdrError("xdr stream overflow")
        return data
    if xdrs.x_op == XdrOp.DECODE:
        data = xdrs.getbytes(size)
        if data is None or not xdrs.skip_padding(size):
            raise XdrError("xdr stream underflow")
        return data
    return value


def xdr_bytes(xdrs, value, maxsize=0xFFFFFFFF):
    """Variable-length opaque data: length unit then padded payload."""
    if xdrs.x_op == XdrOp.ENCODE:
        data = bytes(value)
        if len(data) > maxsize:
            raise XdrError(f"bytes too long: {len(data)} > {maxsize}")
        xdr_u_long(xdrs, len(data))
        return xdr_opaque(xdrs, data, len(data))
    if xdrs.x_op == XdrOp.DECODE:
        size = xdr_u_long(xdrs, None)
        if size > maxsize:
            raise XdrError(f"bytes too long on the wire: {size} > {maxsize}")
        return xdr_opaque(xdrs, None, size)
    return value


def xdr_string(xdrs, value, maxsize=0xFFFFFFFF):
    """Counted string; encoded as UTF-8 bytes (ASCII in classic RPC)."""
    if xdrs.x_op == XdrOp.ENCODE:
        data = value.encode("utf-8") if isinstance(value, str) else bytes(
            value
        )
        if len(data) > maxsize:
            raise XdrError(f"string too long: {len(data)} > {maxsize}")
        xdr_u_long(xdrs, len(data))
        xdr_opaque(xdrs, data, len(data))
        return value
    if xdrs.x_op == XdrOp.DECODE:
        size = xdr_u_long(xdrs, None)
        if size > maxsize:
            raise XdrError(f"string too long on the wire: {size}")
        data = xdr_opaque(xdrs, None, size)
        return data.decode("utf-8")
    return value


def xdr_vector(xdrs, value, size, elem_filter):
    """Fixed-length array: ``size`` elements, no length on the wire."""
    if xdrs.x_op == XdrOp.ENCODE:
        items = list(value)
        if len(items) != size:
            raise XdrError(
                f"vector size mismatch: expected {size}, got {len(items)}"
            )
        for item in items:
            elem_filter(xdrs, item)
        return items
    if xdrs.x_op == XdrOp.DECODE:
        return [elem_filter(xdrs, None) for _ in range(size)]
    if value is not None:
        for item in value:
            elem_filter(xdrs, item)
    return value


def xdr_array(xdrs, value, maxsize, elem_filter):
    """Counted (variable-length, bounded) array — the workhorse of the
    paper's benchmark workload (arrays of 4-byte integers)."""
    if xdrs.x_op == XdrOp.ENCODE:
        items = list(value)
        if len(items) > maxsize:
            raise XdrError(f"array too long: {len(items)} > {maxsize}")
        xdr_u_long(xdrs, len(items))
        for item in items:
            elem_filter(xdrs, item)
        return items
    if xdrs.x_op == XdrOp.DECODE:
        size = xdr_u_long(xdrs, None)
        if size > maxsize:
            raise XdrError(f"array too long on the wire: {size} > {maxsize}")
        return [elem_filter(xdrs, None) for _ in range(size)]
    if value is not None:
        for item in value:
            elem_filter(xdrs, item)
    return value


def xdr_optional(xdrs, value, filter_fn):
    """XDR optional-data (``*`` in the language): a boolean then the
    payload if present.  ``None`` models the NULL pointer."""
    if xdrs.x_op == XdrOp.ENCODE:
        present = value is not None
        xdr_bool(xdrs, present)
        if present:
            filter_fn(xdrs, value)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        present = xdr_bool(xdrs, None)
        if present:
            return filter_fn(xdrs, None)
        return None
    if value is not None:
        filter_fn(xdrs, value)
    return value


def xdr_union(xdrs, discriminant, value, arms, default_filter=None):
    """Discriminated union: the discriminant (signed 32-bit) then the
    arm selected by it.  ``arms`` maps discriminant -> filter; a filter
    of ``None`` means a void arm.

    Returns ``(discriminant, value)``.
    """
    from repro.xdr.primitives import xdr_long

    if xdrs.x_op == XdrOp.ENCODE:
        disc = int(discriminant)
        xdr_long(xdrs, disc)
        if disc in arms:
            chosen = arms[disc]
        elif default_filter is not None:
            chosen = default_filter
        else:
            raise XdrError(f"union: no arm for discriminant {disc}")
        if chosen is not None:
            chosen(xdrs, value)
        return discriminant, value
    if xdrs.x_op == XdrOp.DECODE:
        tag = xdr_long(xdrs, None)
        if tag in arms:
            chosen = arms[tag]
        elif default_filter is not None:
            chosen = default_filter
        else:
            raise XdrError(f"union: bad discriminant on the wire: {tag}")
        payload = chosen(xdrs, None) if chosen is not None else None
        if chosen is xdr_void or chosen is None:
            payload = None
        return tag, payload
    return discriminant, value
