"""Sun XDR (RFC 1014) — External Data Representation.

A faithful pure-Python port of the 1984 Sun XDR library's *structure*:
the same micro-layers the paper specializes.  ``xdr_long`` dispatches on
the stream's operation each call; ``XdrMemStream.putlong`` maintains the
``x_handy`` remaining-space counter and checks it on every item — these
are exactly the interpretation overheads the Tempo specializer removes
in the MiniC rendition of this code, and they make this module the
"generic" baseline of the live-Python benchmarks.

Usage::

    stream = XdrMemStream(bytearray(400), XdrOp.ENCODE)
    xdr_int(stream, 42)          # encode
    stream = XdrMemStream(data, XdrOp.DECODE)
    value = xdr_int(stream, None)  # decode
"""

from repro.xdr.xdr_ops import XdrOp
from repro.xdr.stream import XdrMemStream, XdrCountStream
from repro.xdr.primitives import (
    xdr_bool,
    xdr_double,
    xdr_enum,
    xdr_float,
    xdr_hyper,
    xdr_int,
    xdr_long,
    xdr_short,
    xdr_u_hyper,
    xdr_u_int,
    xdr_u_long,
    xdr_u_short,
    xdr_void,
)
from repro.xdr.composite import (
    xdr_array,
    xdr_bytes,
    xdr_opaque,
    xdr_optional,
    xdr_string,
    xdr_union,
    xdr_vector,
)

__all__ = [
    "XdrOp",
    "XdrMemStream",
    "XdrCountStream",
    "xdr_bool",
    "xdr_double",
    "xdr_enum",
    "xdr_float",
    "xdr_hyper",
    "xdr_int",
    "xdr_long",
    "xdr_short",
    "xdr_u_hyper",
    "xdr_u_int",
    "xdr_u_long",
    "xdr_u_short",
    "xdr_void",
    "xdr_array",
    "xdr_bytes",
    "xdr_opaque",
    "xdr_optional",
    "xdr_string",
    "xdr_union",
    "xdr_vector",
]
