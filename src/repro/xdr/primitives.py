"""XDR primitive filters.

Each filter mirrors its Sun C counterpart: it dispatches on the stream's
``x_op`` *on every call* (the interpretation overhead of the paper's
Figure 2) and moves exactly one XDR item.

Convention (Pythonized from the C in/out pointer style):

* ``ENCODE`` — ``xdr_T(stream, value)`` writes and returns ``value``;
* ``DECODE`` — ``xdr_T(stream, ignored)`` reads and returns the value;
* ``FREE`` — returns ``value`` unchanged (no heap to free in Python).

Failures raise :class:`repro.errors.XdrError`.
"""

import struct

from repro.errors import XdrError
from repro.xdr.xdr_ops import XdrOp

_U32_MASK = 0xFFFFFFFF


def _overflow():
    raise XdrError("xdr stream overflow")


def _underflow():
    raise XdrError("xdr stream underflow")


def xdr_u_long(xdrs, value):
    """32-bit unsigned integer — the base item every scalar rides on."""
    if xdrs.x_op == XdrOp.ENCODE:
        if not xdrs.putlong(int(value) & _U32_MASK):
            _overflow()
        return value
    if xdrs.x_op == XdrOp.DECODE:
        raw = xdrs.getlong()
        if raw is None:
            _underflow()
        return raw
    if xdrs.x_op == XdrOp.FREE:
        return value
    raise XdrError(f"bad xdr operation {xdrs.x_op!r}")


def xdr_long(xdrs, value):
    """32-bit signed integer (``long`` on the paper's 32-bit platforms)."""
    if xdrs.x_op == XdrOp.ENCODE:
        if not -0x8000_0000 <= int(value) <= 0x7FFF_FFFF:
            raise XdrError(f"long out of range: {value}")
        if not xdrs.putlong(int(value) & _U32_MASK):
            _overflow()
        return value
    if xdrs.x_op == XdrOp.DECODE:
        raw = xdrs.getlong()
        if raw is None:
            _underflow()
        return raw - 0x1_0000_0000 if raw > 0x7FFF_FFFF else raw
    if xdrs.x_op == XdrOp.FREE:
        return value
    raise XdrError(f"bad xdr operation {xdrs.x_op!r}")


def xdr_int(xdrs, value):
    """``int``: the machine-dependent switch of the paper's Figure 1
    resolves to the long filter on 32-bit platforms."""
    return xdr_long(xdrs, value)


def xdr_u_int(xdrs, value):
    return xdr_u_long(xdrs, value)


def xdr_short(xdrs, value):
    """16-bit signed, carried in a full XDR unit (RFC 1014)."""
    if xdrs.x_op == XdrOp.ENCODE:
        if not -0x8000 <= int(value) <= 0x7FFF:
            raise XdrError(f"short out of range: {value}")
        return xdr_long(xdrs, value)
    result = xdr_long(xdrs, value)
    if xdrs.x_op == XdrOp.DECODE and not -0x8000 <= result <= 0x7FFF:
        raise XdrError(f"decoded short out of range: {result}")
    return result


def xdr_u_short(xdrs, value):
    if xdrs.x_op == XdrOp.ENCODE and not 0 <= int(value) <= 0xFFFF:
        raise XdrError(f"u_short out of range: {value}")
    result = xdr_u_long(xdrs, value)
    if xdrs.x_op == XdrOp.DECODE and result > 0xFFFF:
        raise XdrError(f"decoded u_short out of range: {result}")
    return result


def xdr_bool(xdrs, value):
    if xdrs.x_op == XdrOp.ENCODE:
        xdr_long(xdrs, 1 if value else 0)
        return bool(value)
    if xdrs.x_op == XdrOp.DECODE:
        raw = xdr_long(xdrs, None)
        if raw not in (0, 1):
            raise XdrError(f"bad boolean on the wire: {raw}")
        return bool(raw)
    return value


def xdr_enum(xdrs, value, allowed=None):
    """Enumerations ride the wire as signed 32-bit values; ``allowed``
    optionally restricts the decoded range."""
    result = xdr_long(xdrs, int(value) if value is not None else None)
    if xdrs.x_op == XdrOp.DECODE and allowed is not None and (
        result not in allowed
    ):
        raise XdrError(f"enum value {result} not in {sorted(allowed)}")
    return result


def xdr_hyper(xdrs, value):
    """64-bit signed integer: two XDR units, most significant first."""
    if xdrs.x_op == XdrOp.ENCODE:
        value = int(value)
        if not -(1 << 63) <= value < 1 << 63:
            raise XdrError(f"hyper out of range: {value}")
        raw = value & 0xFFFF_FFFF_FFFF_FFFF
        xdr_u_long(xdrs, raw >> 32)
        xdr_u_long(xdrs, raw & _U32_MASK)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        high = xdr_u_long(xdrs, None)
        low = xdr_u_long(xdrs, None)
        raw = (high << 32) | low
        return raw - (1 << 64) if raw >= 1 << 63 else raw
    return value


def xdr_u_hyper(xdrs, value):
    if xdrs.x_op == XdrOp.ENCODE:
        value = int(value)
        if not 0 <= value < 1 << 64:
            raise XdrError(f"u_hyper out of range: {value}")
        xdr_u_long(xdrs, value >> 32)
        xdr_u_long(xdrs, value & _U32_MASK)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        high = xdr_u_long(xdrs, None)
        low = xdr_u_long(xdrs, None)
        return (high << 32) | low
    return value


def xdr_float(xdrs, value):
    """IEEE single precision (RFC 1014 §3.6)."""
    if xdrs.x_op == XdrOp.ENCODE:
        raw = struct.unpack(">I", struct.pack(">f", float(value)))[0]
        xdr_u_long(xdrs, raw)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        raw = xdr_u_long(xdrs, None)
        return struct.unpack(">f", struct.pack(">I", raw))[0]
    return value


def xdr_double(xdrs, value):
    """IEEE double precision: two XDR units, MSW first."""
    if xdrs.x_op == XdrOp.ENCODE:
        raw = struct.unpack(">Q", struct.pack(">d", float(value)))[0]
        xdr_u_long(xdrs, raw >> 32)
        xdr_u_long(xdrs, raw & _U32_MASK)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        high = xdr_u_long(xdrs, None)
        low = xdr_u_long(xdrs, None)
        return struct.unpack(">d", struct.pack(">Q", (high << 32) | low))[0]
    return value


def xdr_void(xdrs, value=None):
    """The empty filter: encodes/decodes nothing."""
    return None
