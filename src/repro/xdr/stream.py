"""XDR memory streams — the ``xdrmem`` micro-layer.

:class:`XdrMemStream` mirrors the original ``xdrmem_create`` /
``xdrmem_putlong`` / ``xdrmem_getlong`` functions, including the
``x_handy`` remaining-space accounting checked on every item (the
paper's Figure 3).  :class:`XdrCountStream` implements the sizing pass
used to compute ``expected_inlen`` (§6.2 of the paper): it encodes
nothing but counts bytes.
"""

import struct

from repro.errors import XdrError
from repro.xdr.xdr_ops import BYTES_PER_XDR_UNIT, XdrOp, round_up


class XdrMemStream:
    """An XDR stream over a fixed memory buffer.

    Attributes mirror the C struct: ``x_op`` (operation), ``x_handy``
    (bytes remaining), ``pos`` (the cursor, i.e. ``x_private`` as an
    offset from ``x_base``).
    """

    def __init__(self, buffer, op, offset=0):
        if type(op) is not XdrOp:
            op = XdrOp(op)
        if isinstance(buffer, bytearray):
            self.buffer = buffer
        elif isinstance(buffer, memoryview):
            # Zero-copy: decode straight out of the caller's view (the
            # received datagram); encoding needs it writable.
            if op != XdrOp.DECODE and buffer.readonly:
                raise XdrError("ENCODE stream needs a writable buffer")
            self.buffer = buffer
        elif isinstance(buffer, bytes):
            # DECODE reads the immutable bytes in place (zero-copy);
            # ENCODE keeps the historical copy-to-bytearray behavior.
            self.buffer = buffer if op == XdrOp.DECODE else bytearray(buffer)
        else:
            raise XdrError(f"bad buffer type {type(buffer).__name__}")
        self.x_op = op
        self.pos = offset
        self.x_handy = len(self.buffer) - offset

    # -- micro-layer primitives (putlong/getlong of the paper) ---------

    def putlong(self, value):
        """Write one 4-byte unit; False on overflow (Figure 3)."""
        self.x_handy -= BYTES_PER_XDR_UNIT
        if self.x_handy < 0:
            return False
        struct.pack_into(">I", self.buffer, self.pos, value & 0xFFFFFFFF)
        self.pos += BYTES_PER_XDR_UNIT
        return True

    def getlong(self):
        """Read one 4-byte unit; None on underflow."""
        self.x_handy -= BYTES_PER_XDR_UNIT
        if self.x_handy < 0:
            return None
        value = struct.unpack_from(">I", self.buffer, self.pos)[0]
        self.pos += BYTES_PER_XDR_UNIT
        return value

    def putbytes(self, data):
        size = len(data)
        self.x_handy -= size
        if self.x_handy < 0:
            return False
        self.buffer[self.pos:self.pos + size] = data
        self.pos += size
        return True

    def getbytes(self, size):
        self.x_handy -= size
        if self.x_handy < 0:
            return None
        data = bytes(self.buffer[self.pos:self.pos + size])
        self.pos += size
        return data

    def put_padding(self, raw_size):
        pad = round_up(raw_size) - raw_size
        if pad:
            return self.putbytes(b"\x00" * pad)
        return True

    def skip_padding(self, raw_size):
        pad = round_up(raw_size) - raw_size
        if pad:
            return self.getbytes(pad) is not None
        return True

    # -- positioning -------------------------------------------------------

    def getpos(self):
        return self.pos

    def setpos(self, pos):
        if not 0 <= pos <= len(self.buffer):
            raise XdrError(f"setpos({pos}) out of range")
        delta = pos - self.pos
        self.pos = pos
        self.x_handy -= delta

    def data(self):
        """The encoded bytes so far (ENCODE streams)."""
        return bytes(self.buffer[:self.pos])

    def __repr__(self):
        return (
            f"XdrMemStream(op={self.x_op.name}, pos={self.pos},"
            f" handy={self.x_handy})"
        )


class XdrCountStream:
    """A write-only stream that just measures encoded size.

    The paper computes ``expected_inlen`` "with a dummy encoding-call to
    the generic encoding/decoding function"; this stream is that dummy
    call's target.
    """

    def __init__(self):
        self.x_op = XdrOp.ENCODE
        self.pos = 0
        self.x_handy = 1 << 30

    def putlong(self, value):
        self.pos += BYTES_PER_XDR_UNIT
        return True

    def getlong(self):
        raise XdrError("XdrCountStream cannot decode")

    def putbytes(self, data):
        self.pos += len(data)
        return True

    def getbytes(self, size):
        raise XdrError("XdrCountStream cannot decode")

    def put_padding(self, raw_size):
        self.pos += round_up(raw_size) - raw_size
        return True

    def skip_padding(self, raw_size):
        raise XdrError("XdrCountStream cannot decode")

    def getpos(self):
        return self.pos


def sizeof_xdr(filter_fn, value):
    """Encoded size in bytes of ``value`` under ``filter_fn``."""
    stream = XdrCountStream()
    if filter_fn(stream, value) is False:
        raise XdrError("sizing pass failed")
    return stream.pos
