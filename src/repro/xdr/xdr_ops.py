"""XDR stream operations (the ``x_op`` field of the paper's Figure 2)."""

import enum


class XdrOp(enum.IntEnum):
    """What an XDR filter call should do with its stream."""

    ENCODE = 0
    DECODE = 1
    FREE = 2


#: XDR items are serialized in 4-byte basic units (RFC 1014 §2).
BYTES_PER_XDR_UNIT = 4


def round_up(size):
    """Round a byte count up to the XDR 4-byte alignment."""
    return (size + BYTES_PER_XDR_UNIT - 1) // BYTES_PER_XDR_UNIT * (
        BYTES_PER_XDR_UNIT
    )
