"""Exception hierarchy shared by every repro subpackage."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class MiniCError(ReproError):
    """Base class for MiniC front-end and runtime errors."""


class LexError(MiniCError):
    """Raised when the MiniC lexer meets an unexpected character."""

    def __init__(self, message, line=None, col=None):
        location = f" at {line}:{col}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.col = col


class ParseError(MiniCError):
    """Raised when the MiniC parser meets an unexpected token."""

    def __init__(self, message, token=None):
        location = ""
        if token is not None and getattr(token, "line", None) is not None:
            location = f" at {token.line}:{token.col} (near {token.value!r})"
        super().__init__(f"{message}{location}")
        self.token = token


class TypeCheckError(MiniCError):
    """Raised by the MiniC type checker."""


class InterpError(MiniCError):
    """Raised by the MiniC reference interpreter on runtime faults."""


class CompileError(MiniCError):
    """Raised when compiling MiniC to Python fails."""


class SpecializationError(ReproError):
    """Raised by the Tempo specializer when a program cannot be handled."""


class VerificationError(SpecializationError):
    """Raised when the residual-code equivalence verifier rejects a
    residual codec (byte divergence from the generic codec, a bounds
    violation, uncovered output bytes, a guard wider than the declared
    domain, or an unroll-cap breach).  A rejected codec is never
    installed; callers fall back to the generic path."""


class BindingTimeError(SpecializationError):
    """Raised by the binding-time analysis on inconsistent declarations."""


class XdrError(ReproError):
    """Raised on XDR encode/decode failure (buffer overflow, bad data)."""


class RpcError(ReproError):
    """Base class for RPC-level failures."""


class RpcTimeoutError(RpcError):
    """Raised when a client call exhausts its retransmission budget."""


class RpcDeadlineExceeded(RpcTimeoutError):
    """Raised when a call's *deadline budget* is exhausted.

    A deadline is an end-to-end bound shared by every stage of a call
    — encode, connect/reconnect, every retransmission window, and the
    reply wait all draw from one budget
    (:class:`~repro.rpc.resilience.Deadline`).  Subclasses
    :class:`RpcTimeoutError` so existing handlers that treat any
    client-side expiry uniformly keep working.
    """


class RpcRetryBudgetExhausted(RpcTimeoutError):
    """Raised when the client *retry budget* denies a retransmission
    or a failover rotation.

    A :class:`~repro.rpc.overload.RetryBudget` caps retries to a
    fraction of recent calls; once the bucket is dry the call fails
    fast with this typed error instead of feeding a retry storm.
    Subclasses :class:`RpcTimeoutError` so existing handlers that
    treat any client-side expiry uniformly keep working — but a
    budget denial is deliberately *not* counted as an endpoint
    failure by :class:`~repro.rpc.resilience.FailoverClient`'s
    circuit breakers.
    """


class RpcCircuitOpenError(RpcError):
    """Raised when a circuit breaker refuses a call locally.

    The endpoint's :class:`~repro.rpc.resilience.CircuitBreaker` is
    open: recent calls failed and the recovery timeout has not yet
    elapsed, so the call is rejected without touching the network.
    """


class RpcProtocolError(RpcError):
    """Raised on malformed or unexpected RPC messages."""


class RpcConnectionError(RpcProtocolError):
    """Raised when a stream transport fails mid-conversation (peer
    closed the connection, reset, broken pipe).

    Subclasses :class:`RpcProtocolError` so existing handlers that
    treat any protocol-level transport failure uniformly keep working.
    """


class FaultInjected(RpcError):
    """Raised by the fault-injection layer when an injected fault makes
    the local operation impossible to complete (e.g. a stream "drop"
    aborts the connection).  Never raised outside tests/benches that
    installed a :class:`~repro.rpc.faults.FaultPlan`."""


class RpcDeniedError(RpcError):
    """Raised when the server rejects a call (auth error, mismatch)."""


class IdlError(ReproError):
    """Raised by the rpcgen IDL front end."""


class SimulatorError(ReproError):
    """Raised by the platform simulator."""
