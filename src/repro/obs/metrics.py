"""Counters, gauges, and fixed-bucket histograms for the RPC stack.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
optionally refined by labels (``registry.counter("faults.injected",
kind="drop")``).  Instruments are created on first use and live for
the registry's lifetime, so hot paths can re-look them up by name
(one dict hit) or hold a reference.

Concurrency model: instrument updates take a per-instrument lock, so
counts are exact under threaded servers; the *disabled* stack never
reaches an instrument at all (every call site is behind a single
``if obs.enabled`` check — see :mod:`repro.obs`), which is where the
overhead budget is spent.  ``collect()`` takes a consistent snapshot
of each instrument but not across instruments — cross-instrument skew
of a few in-flight calls is acceptable for an observability surface.

Everything here is exported by :mod:`repro.obs`; the instrument
*names* used by the stack are declared in :mod:`repro.obs.catalog`
and documented in ``docs/OBSERVABILITY.md``.
"""

import threading

#: Default latency bucket upper edges, in seconds.  Chosen around the
#: loopback RPC regime this repo measures: tens of microseconds for
#: the fast path through seconds for retransmitted calls under loss.
DEFAULT_LATENCY_BUCKETS_S = (
    25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
    1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0, 2.5,
)


def format_labels(labels):
    """Render a label dict as the canonical ``{k=v,...}`` suffix."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name, labels=None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def reset(self):
        with self._lock:
            self._value = 0

    def snapshot(self):
        return self._value

    def __repr__(self):
        return (f"Counter({self.name}{format_labels(self.labels)}"
                f"={self._value})")


class Gauge:
    """A value that can go up and down (pool depth, cache entries)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name, labels=None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        return self._value

    def reset(self):
        with self._lock:
            self._value = 0

    def snapshot(self):
        return self._value

    def __repr__(self):
        return (f"Gauge({self.name}{format_labels(self.labels)}"
                f"={self._value})")


class Histogram:
    """A fixed-bucket histogram (cumulative-style buckets).

    ``buckets`` are the finite upper edges, ascending; an implicit
    +inf bucket catches the overflow.  ``observe(v)`` increments the
    first bucket whose edge is >= v, plus ``count``/``sum`` — the
    snapshot reports *cumulative* per-bucket counts like Prometheus,
    so ``counts[i]`` is "observations <= edge i".
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_counts", "_count", "_sum",
                 "_lock")

    def __init__(self, name, buckets=DEFAULT_LATENCY_BUCKETS_S, labels=None):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(float(edge) for edge in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1: the +inf bucket
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value):
        index = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def reset(self):
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0

    def quantile(self, fraction):
        """Approximate quantile: the upper edge of the bucket holding
        the ``fraction``-th observation (None when empty; the +inf
        bucket reports the last finite edge)."""
        with self._lock:
            total = self._count
            if not total:
                return None
            target = fraction * total
            seen = 0
            for i, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= target:
                    return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]

    def snapshot(self):
        with self._lock:
            cumulative = []
            running = 0
            for bucket_count in self._counts:
                running += bucket_count
                cumulative.append(running)
            return {
                "buckets": list(self.buckets),
                "cumulative_counts": cumulative,
                "count": self._count,
                "sum": self._sum,
            }

    def __repr__(self):
        return (f"Histogram({self.name}{format_labels(self.labels)},"
                f" count={self._count})")


class MetricsRegistry:
    """A named family of instruments with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the instrument for
    ``(name, labels)``, creating it on first use; asking for the same
    name with a different instrument kind is an error (it would make
    ``collect()`` ambiguous).
    """

    def __init__(self):
        self._instruments = {}
        self._lock = threading.Lock()

    def _get(self, cls, name, labels, **kwargs):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(name, labels=labels, **kwargs)
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"{name} already registered as {instrument.kind},"
                f" not {cls.kind}"
            )
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, buckets=DEFAULT_LATENCY_BUCKETS_S, **labels):
        return self._get(Histogram, name, labels, buckets=buckets)

    def __iter__(self):
        with self._lock:
            return iter(list(self._instruments.values()))

    def __len__(self):
        with self._lock:
            return len(self._instruments)

    def reset(self):
        """Zero every instrument in place (references stay valid)."""
        for instrument in self:
            instrument.reset()

    def collect(self):
        """A JSON-able snapshot: ``{counters: {...}, gauges: {...},
        histograms: {...}}`` keyed by ``name{labels}``."""
        snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in self:
            key = instrument.name + format_labels(instrument.labels)
            snapshot[instrument.kind + "s"][key] = instrument.snapshot()
        return snapshot
