"""The observability catalog: every instrument and span the stack emits.

This module is the single source of truth the documentation and the
tests check against: ``tests/obs/test_docs_catalog.py`` asserts that
(a) every name here is documented in ``docs/OBSERVABILITY.md`` and
(b) every instrument a live run actually produces is declared here —
so an undeclared, undocumented metric cannot ship silently.
"""

#: metric name -> (kind, labels, meaning).  Labels list the label
#: *keys* an instrument may be refined by ("" = unlabeled).
METRICS = {
    # -- client ----------------------------------------------------------
    "rpc.client.calls": (
        "counter", "transport, tier",
        "calls started, by transport (udp/tcp) and dispatch tier"
        " (generic/fastpath/specialized)"),
    "rpc.client.attempts": (
        "counter", "transport",
        "datagrams/records sent including retransmissions"),
    "rpc.client.retransmissions": (
        "counter", "transport",
        "resends after a silent receive window (attempts - calls)"),
    "rpc.client.stale_replies": (
        "counter", "transport",
        "well-formed replies bearing another call's xid, discarded"),
    "rpc.client.garbage_datagrams": (
        "counter", "transport",
        "received payloads that failed header/body decode, discarded"),
    "rpc.client.timeouts": (
        "counter", "transport",
        "calls that exhausted their timeout budget"),
    "rpc.client.errors": (
        "counter", "transport, error",
        "calls that raised, by exception type"),
    "rpc.client.call_latency_s": (
        "histogram", "transport",
        "end-to-end call latency in seconds (success and failure)"),
    "rpc.client.deadline_exceeded": (
        "counter", "transport",
        "calls that exhausted their end-to-end deadline budget"
        " (raised RpcDeadlineExceeded)"),
    "rpc.client.failovers": (
        "counter", "",
        "successful calls that landed on a different endpoint than the"
        " previous one (FailoverClient endpoint switches)"),
    # -- overload control (repro.rpc.overload) ----------------------------
    "rpc.retry_budget.granted": (
        "counter", "",
        "retransmission/failover attempts the retry budget paid for"),
    "rpc.retry_budget.denied": (
        "counter", "",
        "retransmission/failover attempts refused by an empty retry"
        " budget (the call fails typed instead of amplifying load)"),
    "rpc.hedge.attempts": (
        "counter", "",
        "hedged requests issued (a second replica raced after the"
        " adaptive p95 trigger fired)"),
    "rpc.hedge.wins": (
        "counter", "winner",
        "settled hedged races, by which leg answered first"
        " (primary/hedge)"),
    "rpc.deadline.doomed": (
        "counter", "",
        "requests dropped before dispatch because their propagated"
        " deadline budget had already expired (doomed work)"),
    "rpc.queue.sojourn_s": (
        "histogram", "",
        "request queue wait (enqueue to dequeue) in seconds, per"
        " worker-pool pop"),
    "rpc.queue.sojourn_sheds": (
        "counter", "",
        "requests shed by the CoDel controller for sustained"
        " over-target sojourn times"),
    # -- circuit breaker -------------------------------------------------
    "rpc.breaker.transitions": (
        "counter", "to",
        "circuit-breaker state transitions, by destination state"
        " (closed/open/half_open)"),
    "rpc.breaker.rejections": (
        "counter", "",
        "calls refused locally by an open (or probe-exhausted"
        " half-open) breaker"),
    # -- server ----------------------------------------------------------
    "rpc.server.requests": (
        "counter", "",
        "call messages entering the dispatcher"),
    "rpc.server.replies": (
        "counter", "outcome",
        "dispatch outcomes: success, drc_replay, prog_unavail,"
        " prog_mismatch, proc_unavail, garbage_args, system_err,"
        " rpc_mismatch, dropped, shed"),
    "rpc.server.sheds": (
        "counter", "reason",
        "requests answered with a SYSTEM_ERR shed reply, by reason"
        " (queue_full, draining, quota, sojourn)"),
    "rpc.server.queue_depth": (
        "gauge", "",
        "bounded request queue occupancy after the last enqueue"),
    "rpc.server.draining": (
        "gauge", "",
        "1 while the registry is in graceful-drain mode, else 0"),
    "rpc.server.drains": (
        "counter", "",
        "graceful drains initiated (begin_drain calls)"),
    "rpc.server.decode_defended": (
        "counter", "",
        "non-RpcError exceptions from malformed requests converted"
        " into drops/GARBAGE_ARGS/fallbacks by the defensive decode"),
    "rpc.server.handler_errors": (
        "counter", "",
        "handler invocations that raised (answered SYSTEM_ERR)"),
    "rpc.server.dispatch_latency_s": (
        "histogram", "",
        "dispatch_bytes latency in seconds, DRC replays included"),
    "rpc.server.fastpath_header_hits": (
        "counter", "",
        "call headers recognized by the fast-path slice compare"),
    "rpc.server.fastpath_fallbacks": (
        "counter", "",
        "fast-path-enabled dispatches that fell back to the generic"
        " header decoder"),
    "rpc.server.specialized_hits": (
        "counter", "",
        "requests answered by the compiled residual dispatcher"),
    "rpc.server.specialized_fallbacks": (
        "counter", "",
        "requests the residual dispatcher handed to the generic"
        " fallback registry"),
    "rpc.server.datagrams": (
        "counter", "transport",
        "transport-level receive events (UDP datagrams handled)"),
    "rpc.server.connections": (
        "counter", "transport",
        "TCP connections accepted"),
    # -- concurrent call engine (mux) -------------------------------------
    "rpc.mux.calls": (
        "counter", "transport",
        "calls submitted through a mux client's call_async"),
    "rpc.mux.inflight": (
        "gauge", "transport",
        "xids currently in flight on a mux client (set on every"
        " submit/complete)"),
    "rpc.mux.batch_size": (
        "histogram", "transport, side",
        "messages coalesced per transmit flush (client) or per"
        " readiness wakeup (server); 1 = no batching happened"),
    "rpc.mux.wakeups": (
        "counter", "transport, side",
        "demux/event-loop select returns — syscall pressure of the"
        " readiness loop"),
    "rpc.mux.unknown_xids": (
        "counter", "transport",
        "replies bearing an xid with no pending call (late retransmit"
        " answers, duplicates after completion), discarded"),
    # -- duplicate-request cache ----------------------------------------
    "rpc.drc.hits": (
        "counter", "",
        "retransmitted requests answered by replaying the cached reply"),
    "rpc.drc.misses": (
        "counter", "",
        "first-sighting requests (cache lookup found nothing)"),
    "rpc.drc.stores": (
        "counter", "",
        "replies recorded into the cache"),
    "rpc.drc.evictions": (
        "counter", "",
        "entries pushed out by the LRU capacity bound"),
    "rpc.drc.entries": (
        "gauge", "",
        "current number of cached replies"),
    "rpc.drc.absorbed": (
        "counter", "",
        "entries accepted from journal recovery or replication"
        " (first-wins; never overwrite local state, never re-fire"
        " on_store)"),
    # -- DRC persistence (journal + snapshot) -----------------------------
    "rpc.drc.journal.appends": (
        "counter", "",
        "handler-produced replies appended to the write-ahead journal"),
    "rpc.drc.journal.errors": (
        "counter", "",
        "journal append/compaction failures (durability degraded,"
        " dispatch unaffected)"),
    "rpc.drc.journal.fsyncs": (
        "counter", "",
        "fsync syscalls issued by the journal, per the fsync policy"),
    "rpc.drc.journal.compactions": (
        "counter", "",
        "snapshot rewrites that reset the journal tail"),
    "rpc.drc.journal.recoveries": (
        "counter", "",
        "recover_into runs at startup (one per journal attach)"),
    "rpc.drc.journal.recovered_entries": (
        "counter", "",
        "entries replayed from snapshot + journal into the cache"),
    "rpc.drc.journal.torn_bytes": (
        "counter", "",
        "bytes dropped as a torn/corrupt journal suffix during"
        " recovery"),
    # -- fleet: membership + DRC replication ------------------------------
    "rpc.fleet.registrations": (
        "counter", "",
        "member registrations accepted by a fleet directory"),
    "rpc.fleet.heartbeats": (
        "counter", "",
        "member heartbeats accepted by a fleet directory"),
    "rpc.fleet.expirations": (
        "counter", "",
        "members dropped for missing the liveness window"),
    "rpc.fleet.members": (
        "gauge", "",
        "registered members after the last directory operation"),
    "rpc.fleet.refreshes": (
        "counter", "",
        "fleet-watcher polls that changed a failover client's"
        " endpoint set"),
    "rpc.fleet.repl_pushes": (
        "counter", "",
        "replication batches delivered to a peer"),
    "rpc.fleet.repl_push_errors": (
        "counter", "",
        "replication batches a peer failed to acknowledge (dropped;"
        " anti-entropy catch-up or the peer's journal covers the gap)"),
    "rpc.fleet.repl_entries": (
        "counter", "",
        "DRC entries received in replication pushes (absorbed or"
        " skipped)"),
    "rpc.fleet.repl_fenced": (
        "counter", "",
        "replication pushes rejected whole for carrying a stale"
        " origin incarnation (zombie fencing)"),
    # -- per-caller quotas ------------------------------------------------
    "rpc.quota.admitted": (
        "counter", "",
        "calls that took a token from their caller's bucket"),
    "rpc.quota.sheds": (
        "counter", "",
        "calls denied by an empty caller bucket (answered SYSTEM_ERR,"
        " shed reason quota)"),
    "rpc.quota.callers": (
        "gauge", "",
        "caller buckets tracked in the quota LRU"),
    # -- buffer pools ----------------------------------------------------
    "rpc.pool.reuses": (
        "counter", "",
        "buffer acquisitions served from the free-list"),
    "rpc.pool.allocations": (
        "counter", "",
        "buffer acquisitions that had to allocate (steady state: 0)"),
    # -- fault injection -------------------------------------------------
    "faults.injected": (
        "counter", "kind",
        "faults applied by FaultPlan, by kind (drop/duplicate/reorder/"
        "delay/corrupt/truncate/skipped, plus the timed phases"
        " spike/partition)"),
    # -- online specialization (repro.specialized.online) -----------------
    "rpc.spec.online.observed": (
        "counter", "side",
        "calls sampled by the dispatch/codec profilers while generic"
        " (the evidence pool promotions are decided from)"),
    "rpc.spec.online.hits": (
        "counter", "side",
        "calls answered by a hot-swapped online-specialized route or"
        " codec"),
    "rpc.spec.online.violations": (
        "counter", "side",
        "invariant-guard misses: messages outside the specialized"
        " length set, answered by the generic codec on that call"),
    "rpc.spec.online.promotions": (
        "counter", "side",
        "procedures auto-specialized and hot-swapped into dispatch"),
    "rpc.spec.online.respecializations": (
        "counter", "side",
        "routes widened with a new stable length after the violation"
        " threshold"),
    "rpc.spec.online.demotions": (
        "counter", "side",
        "routes removed back to generic (size distribution shifted or"
        " width cap reached)"),
    "rpc.spec.online.skips": (
        "counter", "reason",
        "refused builds, by reason (unroll_cap, unsupported,"
        " build_error, verify_failed)"),
    "rpc.spec.online.active": (
        "gauge", "side",
        "online-specialized routes/codecs currently installed"),
    "rpc.spec.online.build_s": (
        "histogram", "",
        "background Tempo + compile time per online build, seconds"),
    # -- residual verification (repro.analysis.verify) --------------------
    "rpc.spec.verify.pass": (
        "counter", "kind",
        "residual codecs proved equivalent to the generic codec before"
        " installing (kind: client/server)"),
    "rpc.spec.verify.fail": (
        "counter", "kind, reason",
        "residual codecs rejected by the equivalence verifier, by"
        " finding rule (never installed; callers fall back to generic"
        " or rebuild)"),
    # -- specialization cache -------------------------------------------
    "spec.cache.hits": (
        "counter", "",
        "specializations served from the in-memory LRU"),
    "spec.cache.disk_hits": (
        "counter", "",
        "specializations revived from the on-disk tier (Tempo skipped)"),
    "spec.cache.misses": (
        "counter", "",
        "specializations built from scratch (full Tempo run)"),
}

#: span name -> meaning.  The per-span *fields* are documented in
#: docs/OBSERVABILITY.md; the common envelope (name/span/parent/trace/
#: ts/dur_us/tid) is emitted for every span.
SPANS = {
    "client.call": "one whole client call, root of the client's trace",
    "client.encode": "serializing the call message (header + body)",
    "client.send": "handing one attempt's bytes to the socket",
    "client.wait": "one attempt's receive window (UDP) or the reply"
                   " read loop (TCP)",
    "client.decode": "parsing one received payload against the"
                     " expected xid",
    "mux.flush": "one coalesced transmit by a mux client's demux loop"
                 " (fields: messages, bytes)",
    "server.dispatch": "one whole dispatch_bytes, root of the server's"
                       " trace",
    "server.drc_lookup": "duplicate-request cache probe",
    "server.decode_args": "unmarshaling the call arguments",
    "server.handler": "the registered handler's execution",
    "server.encode_reply": "marshaling the reply header + results",
}

#: every label value the ``tier`` field/label may take.
TIERS = ("generic", "fastpath", "specialized", "online")
