"""``repro.obs`` — zero-dependency tracing + metrics for the RPC stack.

The paper's argument is quantitative: it *measures* where the Sun RPC
micro-layer stack spends its time and specializes accordingly.  This
package is the live stack's measuring instrument — per-call trace
spans (:mod:`repro.obs.trace`) and stack-wide counters/gauges/
histograms (:mod:`repro.obs.metrics`) threaded through the clients,
the servers, the fast path, the DRC, the fault injectors, and the
specialization cache.  The online-specialization follow-up work
(PAPERS.md) treats exactly this kind of runtime observation as the
input that drives specialization decisions.

Design rules:

* **Disabled is free(ish).**  Every call site in the hot path is a
  single ``if obs.enabled:`` test of this module's flag; no
  instrument, span, or label dict is touched when it is False (the
  default).  ``python -m repro.bench live`` measures the residual
  guard cost and reports it in ``BENCH_live.json`` (documented bound:
  <= 2% of a loopback round trip).
* **One registry, one tracer.**  ``obs.registry`` and ``obs.tracer``
  are process-global; tests swap/reset them via :func:`reset`.
* **Everything emitted is documented.**  Instrument and span names
  live in :mod:`repro.obs.catalog` and ``docs/OBSERVABILITY.md``; a
  test fails if the stack emits an undeclared name.

Knobs (see also docs/OBSERVABILITY.md and docs/OPERATIONS.md):

* ``REPRO_OBS=1`` — enable metrics at import.
* ``REPRO_TRACE=1`` — enable metrics *and* tracing at import; spans go
  to ``REPRO_TRACE_FILE`` (default ``rpc-trace.jsonl``) as JSON-lines.
* API: :func:`enable` / :func:`disable` / :func:`reset`.
"""

import os

from repro.obs.metrics import (  # noqa: F401  (re-exports)
    Counter,
    DEFAULT_LATENCY_BUCKETS_S,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (  # noqa: F401  (re-exports)
    JsonLinesSink,
    MemorySink,
    Span,
    Tracer,
    TraceSink,
    load_trace,
    summarize_spans,
)

#: THE module flag.  Hot paths test this and nothing else; everything
#: below this ``if`` is allowed to cost something.
enabled = False

#: default trace destination when tracing is enabled without a path.
DEFAULT_TRACE_FILE = "rpc-trace.jsonl"

registry = MetricsRegistry()
tracer = Tracer()


# -- instrument accessors (thin veneers over the global registry) --------

def counter(name, **labels):
    return registry.counter(name, **labels)


def gauge(name, **labels):
    return registry.gauge(name, **labels)


def histogram(name, buckets=DEFAULT_LATENCY_BUCKETS_S, **labels):
    return registry.histogram(name, buckets=buckets, **labels)


def span(name, **fields):
    """A new root span, or None when no trace sink is attached.

    Instrumented code holds the result and guards child-span calls
    with ``if span is not None`` — metrics-only operation therefore
    constructs no span objects at all.
    """
    return tracer.start(name, **fields)


def collect():
    """A JSON-able snapshot of every instrument (see
    :meth:`~repro.obs.metrics.MetricsRegistry.collect`)."""
    return registry.collect()


# -- switches ------------------------------------------------------------

def enable(trace=False, trace_file=None, sink=None):
    """Turn instrumentation on.

    ``enable()`` alone enables metrics.  ``trace=True`` (or passing
    ``trace_file``/``sink``) also attaches a trace sink: ``sink`` if
    given, else a :class:`JsonLinesSink` on ``trace_file`` (default
    :data:`DEFAULT_TRACE_FILE`).  Returns the attached sink (or None).
    """
    global enabled
    enabled = True
    attached = None
    if sink is not None:
        attached = tracer.add_sink(sink)
    elif trace or trace_file is not None:
        attached = tracer.add_sink(
            JsonLinesSink(trace_file or DEFAULT_TRACE_FILE)
        )
    return attached


def disable():
    """Turn instrumentation off and detach (close) every trace sink.

    Metric values are kept — :func:`collect` still reports the counts
    accumulated while enabled; use :func:`reset` to zero them.
    """
    global enabled
    enabled = False
    tracer.clear_sinks()


def reset():
    """Zero all metrics and drop buffered spans from memory sinks.

    Instrument references stay valid (values are reset in place), so
    long-lived objects holding instruments keep working.
    """
    registry.reset()
    for attached in tracer.sinks:
        if isinstance(attached, MemorySink):
            attached.clear()


def configure_from_env(environ=None):
    """Apply the ``REPRO_OBS`` / ``REPRO_TRACE`` / ``REPRO_TRACE_FILE``
    environment knobs; called once at import."""
    environ = os.environ if environ is None else environ
    truthy = ("1", "true", "yes", "on")
    want_trace = environ.get("REPRO_TRACE", "").lower() in truthy
    trace_file = environ.get("REPRO_TRACE_FILE")
    if want_trace or trace_file:
        enable(trace=True, trace_file=trace_file)
    elif environ.get("REPRO_OBS", "").lower() in truthy:
        enable()


configure_from_env()
