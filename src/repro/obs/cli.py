"""``python -m repro.obs`` — the operator's window into the stack.

Two subcommands:

``dump``
    Run a small seeded fault-injected loopback exchange (UDP, fast
    path + DRC on, 20% drop + 10% duplication by default) with every
    instrument live, then print the metrics snapshot — the quickest
    way to see the whole catalog populated.  ``--json`` emits the raw
    ``registry.collect()`` object; ``--trace FILE`` also writes the
    exchange's span trace as JSON-lines.

``summarize``
    Read a JSON-lines trace (``RPCTrace`` format) and print the
    per-span-name time breakdown; ``--xid N`` instead reconstructs
    the full nested timeline of the call(s) carrying that xid — the
    worked example in docs/OBSERVABILITY.md walks one retransmitted
    call through this view.
"""

import argparse
import json
import sys

from repro import obs
from repro.obs.trace import load_trace, summarize_spans

DEMO_CALLS = 12
DEMO_LOSS = 0.20
DEMO_SEED = 0x0B5


def run_demo(calls=DEMO_CALLS, loss=DEMO_LOSS, seed=DEMO_SEED,
             trace_file=None):
    """Drive a seeded lossy loopback exchange with instrumentation on.

    Returns the metrics snapshot dict.  Restores the previous obs
    state on exit so the demo composes with an already-configured
    process.
    """
    from repro.bench.workloads import (
        PROG_NUMBER, VERS_NUMBER, WORKLOAD_IDL,
    )
    from repro.rpc import FaultPlan, SvcRegistry, UdpClient, UdpServer
    from repro.rpcgen.codegen_py import load_python
    from repro.rpcgen.idl_parser import parse_idl

    was_enabled = obs.enabled
    sink = obs.enable(trace_file=trace_file) if trace_file else None
    if not was_enabled:
        obs.enable()
    stubs = load_python(parse_idl(WORKLOAD_IDL), "obs_demo_stubs")
    registry = SvcRegistry(fastpath=True)

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XCHG_PROG_1(registry, Impl())
    args = stubs.intarr(vals=list(range(16)))
    client_plan = FaultPlan(seed=seed, drop=loss, duplicate=0.10)
    server_plan = FaultPlan(seed=seed + 1, drop=loss, duplicate=0.10)
    try:
        with UdpServer(registry, fastpath=True, drc=True,
                       fault_plan=server_plan) as server:
            with UdpClient("127.0.0.1", server.port, PROG_NUMBER,
                           VERS_NUMBER, timeout=30.0, wait=0.005,
                           max_wait=0.25, jitter=0.0, fastpath=True,
                           fault_plan=client_plan) as transport:
                client = stubs.XCHG_PROG_1_client(transport)
                for _ in range(calls):
                    client.SENDRECV(args)
    finally:
        if sink is not None:
            obs.tracer.remove_sink(sink)
        if not was_enabled:
            obs.enabled = False
    return obs.collect()


def _print_snapshot(snapshot, stream=sys.stdout):
    width = max((len(name) for kind in ("counters", "gauges")
                 for name in snapshot[kind]), default=20)
    for kind in ("counters", "gauges"):
        if not snapshot[kind]:
            continue
        stream.write(f"# {kind}\n")
        for name in sorted(snapshot[kind]):
            stream.write(f"{name:<{width}}  {snapshot[kind][name]}\n")
    if snapshot["histograms"]:
        stream.write("# histograms\n")
        for name in sorted(snapshot["histograms"]):
            hist = snapshot["histograms"][name]
            stream.write(
                f"{name:<{width}}  count={hist['count']}"
                f" sum={hist['sum']:.6f}s\n"
            )


def _cmd_dump(args):
    snapshot = run_demo(calls=args.calls, loss=args.loss, seed=args.seed,
                        trace_file=args.trace)
    if args.json:
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(f"# metrics after {args.calls} seeded loopback calls"
              f" at {int(args.loss * 100)}% loss (fastpath + DRC on)")
        _print_snapshot(snapshot)
        if args.trace:
            print(f"# trace written to {args.trace}")
    return 0


def _print_timeline(records, xid, stream=sys.stdout):
    """Nested, time-ordered rendering of every trace touching ``xid``."""
    traces = {r["trace"] for r in records if r.get("xid") == xid}
    picked = [r for r in records if r["trace"] in traces]
    if not picked:
        stream.write(f"no spans with xid={xid}\n")
        return 1
    base = min(r["ts"] for r in picked)
    depth = {}
    for record in sorted(picked, key=lambda r: r["ts"]):
        depth[record["span"]] = (
            depth.get(record.get("parent"), -1) + 1
        )
        indent = "  " * depth[record["span"]]
        extras = " ".join(
            f"{k}={record[k]}" for k in sorted(record)
            if k not in ("name", "span", "parent", "trace", "ts",
                         "dur_us", "tid")
        )
        stream.write(
            f"+{(record['ts'] - base) * 1e3:9.3f}ms "
            f"{indent}{record['name']}"
            f" [{record['dur_us']:.1f}us] {extras}\n"
        )
    return 0


def _cmd_summarize(args):
    records = load_trace(args.trace_file)
    if args.xid is not None:
        return _print_timeline(records, args.xid)
    summary = summarize_spans(records)
    if args.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    print(f"# {len(records)} spans in {args.trace_file}")
    width = max((len(name) for name in summary), default=10)
    print(f"{'span':<{width}}  {'count':>6}  {'total_ms':>9}"
          f"  {'avg_us':>8}  {'max_us':>8}")
    for name, entry in summary.items():
        print(f"{name:<{width}}  {entry['count']:>6}"
              f"  {entry['total_us'] / 1e3:>9.3f}"
              f"  {entry['avg_us']:>8.1f}  {entry['max_us']:>8.1f}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Metrics and trace tooling for the repro RPC stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser(
        "dump", help="run a seeded lossy loopback demo, dump the metrics"
    )
    dump.add_argument("--calls", type=int, default=DEMO_CALLS)
    dump.add_argument("--loss", type=float, default=DEMO_LOSS)
    dump.add_argument("--seed", type=int, default=DEMO_SEED)
    dump.add_argument("--json", action="store_true",
                      help="emit the raw registry.collect() JSON")
    dump.add_argument("--trace", metavar="FILE",
                      help="also write the demo's span trace (JSON-lines)")
    dump.set_defaults(func=_cmd_dump)

    summarize = sub.add_parser(
        "summarize", help="summarize a JSON-lines trace file"
    )
    summarize.add_argument("trace_file")
    summarize.add_argument("--xid", type=int, default=None,
                           help="print the nested timeline of this xid")
    summarize.add_argument("--json", action="store_true")
    summarize.set_defaults(func=_cmd_summarize)

    args = parser.parse_args(argv)
    return args.func(args)
