"""Per-call trace spans and their sinks.

A :class:`Span` is one timed region of a call — ``client.encode``,
``server.handler`` — with a monotonic start timestamp, a duration,
and free-form structured fields (xid, proc, tier, byte counts...).
Spans nest: ``span.child("client.send")`` records the parent id, and
every span carries the id of its root (the ``trace`` field), so the
spans of one RPC call can be regrouped from an interleaved stream.

Spans are emitted to :class:`TraceSink`\\ s **when they end**, as one
flat JSON-able dict each; :class:`JsonLinesSink` writes them as
JSON-lines (the ``RPCTrace`` file format, one span object per line),
:class:`MemorySink` keeps them in a list for tests and in-process
summaries.  The full span schema is documented field by field in
``docs/OBSERVABILITY.md``.

Exception safety: ``Span`` is a context manager whose ``__exit__``
always ends the span, recording ``outcome="error"`` and the exception
type when the block raised; instrumented code that cannot use ``with``
calls :meth:`Span.end` from a ``finally`` (ending twice is a no-op,
so belt-and-braces call sites are safe).
"""

import itertools
import json
import threading
import time


class Span:
    """One timed, structured region; emitted to sinks on ``end()``."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "trace_id",
                 "fields", "ts", "dur_s", "_ended")

    def __init__(self, tracer, name, parent=None, **fields):
        self._tracer = tracer
        self.name = name
        self.span_id = tracer.next_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.trace_id = parent.trace_id if parent is not None else self.span_id
        self.fields = fields
        self.ts = time.monotonic()
        self.dur_s = None
        self._ended = False

    def child(self, name, **fields):
        """Start a nested span."""
        return Span(self._tracer, name, parent=self, **fields)

    def add(self, **fields):
        """Attach fields discovered after the span started (e.g. the
        xid of a request that had to be decoded first)."""
        self.fields.update(fields)
        return self

    def end(self, **fields):
        """Close the span and emit it; idempotent."""
        if self._ended:
            return self
        self._ended = True
        self.dur_s = time.monotonic() - self.ts
        if fields:
            self.fields.update(fields)
        self._tracer.emit(self)
        return self

    def to_record(self):
        record = {
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
            "ts": self.ts,
            "dur_us": round(self.dur_s * 1e6, 3) if self.dur_s is not None
            else None,
            "tid": threading.get_ident(),
        }
        record.update(self.fields)
        return record

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None and "outcome" not in self.fields:
            self.end(outcome="error", error=exc_type.__name__)
        else:
            self.end()
        return False

    def __repr__(self):
        return (f"Span({self.name}, span={self.span_id},"
                f" trace={self.trace_id}, fields={self.fields})")


class TraceSink:
    """Interface: receives one flat span record dict per ended span."""

    def emit(self, record):
        raise NotImplementedError

    def close(self):
        pass


class MemorySink(TraceSink):
    """Collects span records in a list (tests, in-process summaries)."""

    def __init__(self):
        self.records = []
        self._lock = threading.Lock()

    def emit(self, record):
        with self._lock:
            self.records.append(record)

    def clear(self):
        with self._lock:
            self.records.clear()

    def __len__(self):
        with self._lock:
            return len(self.records)


class JsonLinesSink(TraceSink):
    """Writes one compact JSON object per line (the RPCTrace format).

    Accepts a path (opened append, closed by :meth:`close`) or an open
    file-like object (left open — the caller owns it).
    """

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
            self.path = getattr(path_or_file, "name", None)
        else:
            self._file = open(path_or_file, "a", encoding="utf-8")
            self._owns = True
            self.path = path_or_file
        self._lock = threading.Lock()

    def emit(self, record):
        line = json.dumps(record, separators=(",", ":"), sort_keys=True,
                          default=str)
        with self._lock:
            self._file.write(line + "\n")

    def close(self):
        with self._lock:
            try:
                self._file.flush()
            except ValueError:
                return  # already closed
            if self._owns:
                self._file.close()


class Tracer:
    """Hands out spans and fans ended spans out to the sinks.

    With no sinks attached the tracer is inactive and ``start``
    returns None — instrumented code checks for that, so
    metrics-only operation pays no span construction cost.
    """

    def __init__(self):
        self.sinks = []
        self._ids = itertools.count(1)

    @property
    def active(self):
        return bool(self.sinks)

    def next_id(self):
        return next(self._ids)

    def add_sink(self, sink):
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        if sink in self.sinks:
            self.sinks.remove(sink)
        sink.close()

    def clear_sinks(self):
        for sink in self.sinks:
            sink.close()
        self.sinks = []

    def start(self, name, **fields):
        """A new root span, or None when tracing is inactive."""
        if not self.sinks:
            return None
        return Span(self, name, **fields)

    def emit(self, span):
        record = span.to_record()
        for sink in self.sinks:
            sink.emit(record)


def load_trace(path):
    """Read a JSON-lines trace file back into a list of span dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_spans(records):
    """Per-name aggregates of an iterable of span records.

    Returns ``{name: {count, total_us, avg_us, max_us}}`` sorted by
    total time descending — the "where did the time go" view used by
    the fault bench's per-phase summary and the CLI.
    """
    by_name = {}
    for record in records:
        dur = record.get("dur_us") or 0.0
        entry = by_name.setdefault(
            record.get("name", "?"),
            {"count": 0, "total_us": 0.0, "max_us": 0.0},
        )
        entry["count"] += 1
        entry["total_us"] += dur
        entry["max_us"] = max(entry["max_us"], dur)
    for entry in by_name.values():
        entry["total_us"] = round(entry["total_us"], 3)
        entry["avg_us"] = round(entry["total_us"] / entry["count"], 3)
        entry["max_us"] = round(entry["max_us"], 3)
    return dict(sorted(by_name.items(),
                       key=lambda item: -item[1]["total_us"]))
