"""Network link models.

A :class:`Link` charges fixed per-message latency (driver + NIC +
propagation) plus serialization time at the nominal bandwidth.  The
paper's two links are both "100 Mb/s", but the 1993-era Fore ESA-200
ATM adapter has far higher per-message latency than the 1997 Fast
Ethernet NIC — which is why the paper's IPX round trips start so much
higher (Table 2).
"""


class Link:
    """Point-to-point link with per-message latency + serialization."""

    def __init__(self, name, latency_s, bandwidth_bps, per_byte_overhead=0.0):
        self.name = name
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        #: extra seconds per payload byte (SAR / checksum overheads)
        self.per_byte_overhead = per_byte_overhead

    def transfer_time(self, size_bytes):
        """One-way time for a message of ``size_bytes``."""
        serialization = size_bytes * 8 / self.bandwidth_bps
        return self.latency_s + serialization + (
            size_bytes * self.per_byte_overhead
        )

    def __repr__(self):
        return (
            f"Link({self.name!r}, {self.latency_s * 1e6:.0f}us,"
            f" {self.bandwidth_bps / 1e6:.0f}Mb/s)"
        )
