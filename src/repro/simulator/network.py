"""Network link models.

A :class:`Link` charges fixed per-message latency (driver + NIC +
propagation) plus serialization time at the nominal bandwidth.  The
paper's two links are both "100 Mb/s", but the 1993-era Fore ESA-200
ATM adapter has far higher per-message latency than the 1997 Fast
Ethernet NIC — which is why the paper's IPX round trips start so much
higher (Table 2).
"""


class Link:
    """Point-to-point link with per-message latency + serialization."""

    def __init__(self, name, latency_s, bandwidth_bps, per_byte_overhead=0.0):
        self.name = name
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        #: extra seconds per payload byte (SAR / checksum overheads)
        self.per_byte_overhead = per_byte_overhead

    def transfer_time(self, size_bytes):
        """One-way time for a message of ``size_bytes``."""
        serialization = size_bytes * 8 / self.bandwidth_bps
        return self.latency_s + serialization + (
            size_bytes * self.per_byte_overhead
        )

    def __repr__(self):
        return (
            f"Link({self.name!r}, {self.latency_s * 1e6:.0f}us,"
            f" {self.bandwidth_bps / 1e6:.0f}Mb/s)"
        )


class FaultyLink(Link):
    """A :class:`Link` driven by a seeded fault plan.

    The same :class:`~repro.rpc.faults.FaultPlan` that wraps live
    sockets (:class:`~repro.rpc.faults.FaultySocket`) also drives the
    simulator: each :meth:`transfer_time` consumes one plan decision
    per transmission attempt and charges the retransmission discipline
    for drops — a dropped message costs the sender a full
    ``retrans_wait_s`` receive window before the resend, exactly like
    :class:`~repro.rpc.clnt_udp.UdpClient`'s backoff loop (exponential
    growth, capped at ``max_wait_s``).  Delays charge ``plan.delay_s``;
    duplicates and reorders cost the wire nothing extra at this level
    of abstraction but are counted in the plan's stats.
    """

    def __init__(self, link, plan, retrans_wait_s=0.5, backoff=2.0,
                 max_wait_s=None):
        super().__init__(
            f"faulty:{link.name}", link.latency_s, link.bandwidth_bps,
            link.per_byte_overhead,
        )
        self.link = link
        self.plan = plan
        self.retrans_wait_s = retrans_wait_s
        self.backoff = backoff
        self.max_wait_s = (max_wait_s if max_wait_s is not None
                           else 8 * retrans_wait_s)
        #: messages delivered / transmission attempts consumed
        self.delivered = 0
        self.attempts = 0

    def transfer_time(self, size_bytes):
        """One-way time for a message, retransmissions included."""
        base = self.link.transfer_time(size_bytes)
        total = 0.0
        window = self.retrans_wait_s
        while True:
            self.attempts += 1
            decision = self.plan.decide()
            if "delay" in decision:
                self.plan.note("delay")
                total += self.plan.delay_s
            for kind in ("duplicate", "reorder", "corrupt", "truncate"):
                if kind in decision:
                    self.plan.note(kind)
            if "drop" in decision:
                # The sender burns a full receive window, backs off,
                # and retransmits.
                self.plan.note("drop")
                total += window
                window = min(window * self.backoff, self.max_wait_s)
                continue
            self.delivered += 1
            return total + base

    def expected_transfer_time(self, size_bytes):
        """Closed-form expectation (no plan state consumed): the clean
        transfer plus the mean number of drops charged one initial
        receive window each (backoff growth ignored — a lower bound)."""
        p_drop = self.plan.rates["drop"]
        base = self.link.transfer_time(size_bytes)
        expected_drops = p_drop / (1.0 - p_drop) if p_drop < 1.0 else (
            float("inf")
        )
        return (base + expected_drops * self.retrans_wait_s
                + self.plan.rates["delay"] * self.plan.delay_s)
