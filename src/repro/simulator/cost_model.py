"""Per-event base cycle costs.

The interpreter emits one IFETCH per evaluated AST node, which tracks
the dynamic instruction count of compiled C closely enough for shape
reproduction; the other kinds add the extra latency of their operation
class on 1990s in-order hardware.
"""

from repro.minic import cost


def base_costs(
    ifetch=1.0,
    alu=0.0,
    mul=3.0,
    div=18.0,
    branch=1.0,
    call=4.0,
    ret=2.0,
    load=1.0,
    store=1.0,
    byteswap=0.0,
):
    """Build a cost table; kinds absent here cost 1 cycle."""
    return {
        cost.IFETCH: ifetch,
        cost.ALU: alu,
        cost.MUL: mul,
        cost.DIV: div,
        cost.BRANCH: branch,
        cost.CALL: call,
        cost.RET: ret,
        cost.LOAD: load,
        cost.STORE: store,
        cost.BYTESWAP: byteswap,
        cost.NET_SEND: 0.0,
        cost.NET_RECV: 0.0,
    }
