"""Platform timing simulator for the paper's two 1997 testbeds.

The MiniC interpreter emits an instruction/memory event trace
(:mod:`repro.minic.cost`); this package replays such traces against
calibrated machine models — a 40 MHz Sun IPX 4/50 (SunOS, 64 KB unified
write-through cache, 100 Mb/s ATM) and a 166 MHz Pentium (Linux,
8 KB+8 KB L1, 256 KB L2, 100 Mb/s Fast Ethernet) — to regenerate the
paper's Tables 1–4 and Figure 6.

The models are calibrated to reproduce the *shape* of the paper's
results (who wins, by what factor, where the crossovers are), not exact
microseconds; the calibration constants and their rationale live in
:mod:`repro.simulator.platforms`.
"""

from repro.simulator.caches import DirectMappedCache
from repro.simulator.machine import Machine, TimeBreakdown
from repro.simulator.network import Link
from repro.simulator.platforms import (
    atm_link,
    fast_ethernet_link,
    ipx_sunos,
    pc_linux,
)
from repro.simulator.roundtrip import RoundTripModel

__all__ = [
    "DirectMappedCache",
    "Link",
    "Machine",
    "TimeBreakdown",
    "RoundTripModel",
    "atm_link",
    "fast_ethernet_link",
    "ipx_sunos",
    "pc_linux",
]
