"""Round-trip composition: client compute + link + server compute.

The paper's Table 2 measures the elapsed time of a complete RPC (client
marshal, send, server decode+dispatch+encode, reply, client decode,
plus the ``bzero`` input-buffer initialization on both sides)."""

from repro.minic import cost
from repro.minic.cost import Trace


def with_bzero_prologue(trace, size, addr=0x7000_0000):
    """Prepend the server's receive-buffer ``bzero`` to a trace (the
    client-side bzero is already in the generated clntudp path)."""
    combined = Trace()
    combined.events.append((cost.STORE, 0, addr, size))
    combined.events.extend(trace.events)
    return combined


class RoundTripModel:
    """Composes one full RPC from component traces.

    ``client_machine`` and ``server_machine`` should be distinct
    instances (separate caches) of the same platform model; ``link`` is
    the platform's NIC model.
    """

    def __init__(self, client_machine, server_machine, link):
        self.client_machine = client_machine
        self.server_machine = server_machine
        self.link = link

    def total_seconds(self, client_trace, server_trace, request_bytes,
                      reply_bytes, warmup_runs=1):
        client = self.client_machine.steady_state_time(
            client_trace, warmup_runs
        )
        server = self.server_machine.steady_state_time(
            server_trace, warmup_runs
        )
        wire = self.link.transfer_time(request_bytes) + (
            self.link.transfer_time(reply_bytes)
        )
        return client.seconds + server.seconds + wire

    def breakdown(self, client_trace, server_trace, request_bytes,
                  reply_bytes, warmup_runs=1):
        client = self.client_machine.steady_state_time(
            client_trace, warmup_runs
        )
        server = self.server_machine.steady_state_time(
            server_trace, warmup_runs
        )
        request_time = self.link.transfer_time(request_bytes)
        reply_time = self.link.transfer_time(reply_bytes)
        return {
            "client_s": client.seconds,
            "server_s": server.seconds,
            "request_wire_s": request_time,
            "reply_wire_s": reply_time,
            "total_s": client.seconds + server.seconds + request_time
            + reply_time,
        }
