"""Cache models.

A :class:`DirectMappedCache` tracks tags only (contents don't matter for
timing).  Caches chain: a miss in L1 consults ``next_level`` (another
cache) or pays ``miss_penalty`` cycles (memory).  Bulk accesses (bzero,
memcpy, datagram receive) touch every line in their range.
"""

from repro.errors import SimulatorError


class DirectMappedCache:
    """A direct-mapped cache with single-cycle hits by default."""

    def __init__(self, size, line_size=32, hit_cycles=0, miss_penalty=10,
                 next_level=None, name="cache"):
        if size % line_size:
            raise SimulatorError("cache size must be a multiple of the line")
        self.size = size
        self.line_size = line_size
        self.hit_cycles = hit_cycles
        self.miss_penalty = miss_penalty
        self.next_level = next_level
        self.name = name
        self.lines = size // line_size
        self.tags = [None] * self.lines
        self.hits = 0
        self.misses = 0

    def reset(self):
        self.tags = [None] * self.lines
        self.hits = 0
        self.misses = 0
        if self.next_level is not None:
            self.next_level.reset()

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
        if self.next_level is not None:
            self.next_level.reset_stats()

    def access_line(self, line_addr):
        """One line-granular access; returns cycles."""
        index = line_addr % self.lines
        if self.tags[index] == line_addr:
            self.hits += 1
            return self.hit_cycles
        self.misses += 1
        self.tags[index] = line_addr
        if self.next_level is not None:
            return self.hit_cycles + self.miss_penalty + (
                self.next_level.access_line(line_addr)
            )
        return self.hit_cycles + self.miss_penalty

    def access(self, addr, size=4):
        """An access covering [addr, addr+size); returns cycles."""
        if size <= 0:
            size = 1
        first = addr // self.line_size
        last = (addr + size - 1) // self.line_size
        cycles = 0
        for line_addr in range(first, last + 1):
            cycles += self.access_line(line_addr)
        return cycles

    def stats(self):
        result = {
            f"{self.name}_hits": self.hits,
            f"{self.name}_misses": self.misses,
        }
        if self.next_level is not None:
            result.update(self.next_level.stats())
        return result
