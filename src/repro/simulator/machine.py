"""Machine models: replay MiniC cost traces into cycles and seconds."""

from dataclasses import dataclass, field

from repro.minic import cost


@dataclass
class TimeBreakdown:
    """The result of replaying one trace on one machine."""

    seconds: float
    cycles: float
    instr_cycles: float
    icache_cycles: float
    dcache_cycles: float
    store_through_cycles: float
    net_send_bytes: int
    net_recv_bytes: int
    cache_stats: dict = field(default_factory=dict)

    def ms(self):
        return self.seconds * 1e3

    def us(self):
        return self.seconds * 1e6


class Machine:
    """A calibrated CPU + memory hierarchy.

    ``costs`` maps event kinds (:mod:`repro.minic.cost`) to base cycle
    counts; data accesses additionally consult the D-cache, instruction
    events the I-cache (the two may be the same object to model a
    unified cache, as on the Sun IPX).  ``store_through_cycles`` charges
    every store the write-through penalty of the IPX's cache.
    ``fixed_overhead_s`` models per-measurement constant costs (call
    setup, timer read) observed in the paper's numbers.
    """

    def __init__(
        self,
        name,
        clock_hz,
        costs,
        icache,
        dcache,
        write_drain_cycles=0.0,
        fixed_overhead_s=0.0,
        nic=None,
    ):
        self.name = name
        self.clock_hz = clock_hz
        self.costs = costs
        self.icache = icache
        self.dcache = dcache
        #: write-through store model: a one-deep write buffer that takes
        #: this many cycles per 4-byte word to drain to memory.  Dense
        #: store sequences (the specialized marshaling loop) stall on
        #: it; sparse ones (the generic micro-layers) hide it — the
        #: memory-boundedness the paper observes on the Sun IPX.
        self.write_drain_cycles = write_drain_cycles
        self.fixed_overhead_s = fixed_overhead_s
        self.nic = nic

    def reset(self):
        self.icache.reset()
        if self.dcache is not self.icache:
            self.dcache.reset()

    def replay(self, trace):
        """Replay one trace with the current cache state."""
        costs = self.costs
        icache = self.icache
        dcache = self.dcache
        drain = self.write_drain_cycles
        cycle = 0.0
        instr_cycles = 0.0
        icache_cycles = 0.0
        dcache_cycles = 0.0
        store_stall = 0.0
        write_buffer_free_at = 0.0
        net_send = net_recv = 0
        for kind, code_addr, mem_addr, size in trace.events:
            base = costs.get(kind, 1.0)
            instr_cycles += base
            cycle += base
            if kind == cost.IFETCH:
                if code_addr:
                    penalty = icache.access(code_addr, 4)
                    icache_cycles += penalty
                    cycle += penalty
            elif kind == cost.LOAD:
                units = max(1, (size or 4) // 4)
                if units > 1:
                    # Bulk copies (memcpy sources) cost a load per word.
                    extra = (units - 1) * costs.get(cost.LOAD, 1.0)
                    instr_cycles += extra
                    cycle += extra
                if mem_addr:
                    penalty = dcache.access(mem_addr, size or 4)
                    dcache_cycles += penalty
                    cycle += penalty
            elif kind == cost.STORE or kind == cost.NET_RECV:
                units = max(1, (size or 4) // 4)
                if kind == cost.NET_RECV:
                    net_recv += size
                if units > 1:
                    # Bulk fills (bzero, datagram landing) cost a store
                    # per word even on write-back caches.
                    extra = (units - 1) * costs.get(cost.STORE, 1.0)
                    instr_cycles += extra
                    cycle += extra
                if mem_addr:
                    penalty = dcache.access(mem_addr, size or 4)
                    dcache_cycles += penalty
                    cycle += penalty
                if drain:
                    if cycle < write_buffer_free_at:
                        stall = write_buffer_free_at - cycle
                        store_stall += stall
                        cycle += stall
                    write_buffer_free_at = cycle + drain * units
            elif kind == cost.NET_SEND:
                net_send += size
        return TimeBreakdown(
            seconds=cycle / self.clock_hz + self.fixed_overhead_s,
            cycles=cycle,
            instr_cycles=instr_cycles,
            icache_cycles=icache_cycles,
            dcache_cycles=dcache_cycles,
            store_through_cycles=store_stall,
            net_send_bytes=net_send,
            net_recv_bytes=net_recv,
            cache_stats={
                **self.icache.stats(),
                **(
                    self.dcache.stats()
                    if self.dcache is not self.icache
                    else {}
                ),
            },
        )

    def steady_state_time(self, trace, warmup_runs=1):
        """Steady-state replay: warm the caches with ``warmup_runs``
        passes, then measure one pass — modelling the paper's
        mean-of-10000-iterations benchmarks."""
        self.reset()
        for _ in range(warmup_runs):
            self.replay(trace)
        self.icache.reset_stats()
        if self.dcache is not self.icache:
            self.dcache.reset_stats()
        return self.replay(trace)
