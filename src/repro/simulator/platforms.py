"""Calibrated models of the paper's two measurement platforms.

Calibration philosophy: the *structure* of each model follows the real
hardware —

* **Sun IPX 4/50** (SunOS 4.1.4): 40 MHz SPARC, a 64 KB direct-mapped
  *unified write-through* cache, slow DRAM.  The write-through cache is
  why the paper's IPX marshaling becomes memory-bound as arrays grow
  (its §5 "program execution time is dominated by memory accesses"),
  and the unified cache is why the fully-unrolled specialized code
  *loses* ground at 2000 elements: ~100 KB of straight-line code
  streams through a 64 KB cache.
* **166 MHz Pentium MMX** (Linux): split 16 KB L1 I/D caches backed by
  a 256 KB L2.  Unrolled code overflows L1 but stays L2-resident, so
  the specialized marshaling speedup keeps climbing ("the speedup curve
  only bends"), and a 250-element re-rolled chunk fits L1 again
  (Table 4).

The scalar constants (clock, penalties, per-call fixed overheads, NIC
latencies) are then fitted so the generic/specialized times land near
the paper's Tables 1–2.  Exact microseconds are not the goal — shape
is; EXPERIMENTS.md records measured-vs-paper for every cell.
"""

from repro.simulator.caches import DirectMappedCache
from repro.simulator.cost_model import base_costs
from repro.simulator.machine import Machine
from repro.simulator.network import Link


def ipx_sunos():
    """Sun IPX 4/50, SunOS 4.1.4 (40 MHz SPARC, 64 KB unified cache)."""
    unified = DirectMappedCache(
        size=64 * 1024, line_size=32, hit_cycles=0, miss_penalty=14,
        name="l1",
    )
    return Machine(
        name="IPX/SunOS",
        clock_hz=40e6,
        costs=base_costs(
            ifetch=0.55,
            call=4.0,
            ret=2.0,
            branch=1.2,
            load=1.0,
            store=1.0,
            byteswap=0.0,  # big-endian SPARC: htonl is the identity macro
        ),
        icache=unified,
        dcache=unified,
        write_drain_cycles=6.0,  # write-through cache, one-deep buffer
        fixed_overhead_s=4e-6,
        nic=atm_link(),
    )


def pc_linux():
    """166 MHz Pentium MMX, Linux (16K/16K L1, 256K L2)."""
    l2 = DirectMappedCache(
        size=256 * 1024, line_size=32, hit_cycles=0, miss_penalty=30,
        name="l2",
    )
    l1i = DirectMappedCache(
        size=16 * 1024, line_size=32, hit_cycles=0, miss_penalty=3,
        next_level=l2, name="l1i",
    )
    l1d = DirectMappedCache(
        size=16 * 1024, line_size=32, hit_cycles=0, miss_penalty=3,
        next_level=l2, name="l1d",
    )
    return Machine(
        name="PC/Linux",
        clock_hz=166e6,
        costs=base_costs(
            ifetch=0.60,
            call=4.0,
            ret=2.0,
            branch=1.3,
            load=1.0,
            store=1.0,
            byteswap=1.0,  # little-endian x86: bswap on every long
        ),
        icache=l1i,
        dcache=l1d,
        write_drain_cycles=0.0,  # write-back L1
        fixed_overhead_s=57e-6,
        nic=fast_ethernet_link(),
    )


def atm_link():
    """100 Mb/s ATM (Fore ESA-200, 1993): high per-message latency from
    the AAL5 segmentation/reassembly done largely in the driver, and
    cell-tax on the payload."""
    return Link(
        name="ATM-100",
        latency_s=600e-6,
        bandwidth_bps=100e6,
        per_byte_overhead=0.4e-6,
    )


def fast_ethernet_link():
    """100 Mb/s Fast Ethernet (1997 PCI NIC): low latency, low tax."""
    return Link(
        name="FastEthernet-100",
        latency_s=200e-6,
        bandwidth_bps=100e6,
        per_byte_overhead=0.2e-6,
    )


PLATFORMS = {
    "ipx": ipx_sunos,
    "pc": pc_linux,
}
