"""Wire-size computation for the expected-length invariants.

The paper computes ``expected_inlen`` "with a dummy encoding-call to the
generic encoding/decoding function" (§6.2).  This module does the same
arithmetic directly from the IDL: the XDR encoding of the MiniC-subset
types is fully determined by the declared shapes plus the assumed
bounded-array lengths.
"""

from repro.errors import IdlError
from repro.rpcgen import idl_ast as idl

#: RPC call header: xid, mtype, rpcvers, prog, vers, proc + two null
#: auth areas (flavor+length each) = 10 XDR units.
CALL_HEADER_BYTES = 10 * 4

#: Accepted SUCCESS reply header: xid, mtype, reply_stat, verf flavor,
#: verf length, accept_stat = 6 XDR units.
REPLY_HEADER_BYTES = 6 * 4


def struct_encoded_size(interface, struct, lens):
    """Encoded byte size of ``struct`` given bounded-array lengths.

    ``lens`` maps bounded-array field name to its assumed element count.
    """
    total = 0
    for field in struct.fields:
        resolved = interface.resolve(field.type)
        if isinstance(resolved, idl.Prim):
            if resolved.name in ("int", "u_int", "bool"):
                total += 4
            elif resolved.name in ("hyper", "u_hyper", "double"):
                total += 8
            elif resolved.name == "float":
                total += 4
            else:
                raise IdlError(f"unsized primitive {resolved.name!r}")
        elif isinstance(resolved, idl.FixedArray):
            total += 4 * resolved.size
        elif isinstance(resolved, idl.VarArray):
            if field.name not in lens:
                raise IdlError(
                    f"no assumed length for bounded array"
                    f" {struct.name}.{field.name}"
                )
            total += 4 + 4 * lens[field.name]
        elif isinstance(resolved, idl.Named):
            nested = interface.struct(resolved.name)
            total += struct_encoded_size(interface, nested, {})
        else:
            raise IdlError(f"unsized type {resolved!r}")
    return total


def request_size(interface, arg_struct, lens):
    """Total call-message size for an argument struct."""
    return CALL_HEADER_BYTES + struct_encoded_size(interface, arg_struct,
                                                   lens)


def reply_size(interface, ret_struct, lens):
    """Total success-reply size for a result struct."""
    return REPLY_HEADER_BYTES + struct_encoded_size(interface, ret_struct,
                                                    lens)


def message_sizes(interface, arg_struct, ret_struct, arg_lens, res_lens):
    """``(request_size, reply_size)`` for one procedure's invariants.

    This pair is what the runtime fast path installs as its exact-fit
    pooled-buffer sizes (in place of the 8800-byte default) when a
    specialization is attached to a client.
    """
    return (
        request_size(interface, arg_struct, arg_lens),
        reply_size(interface, ret_struct, res_lens),
    )
