"""End-to-end specialization pipeline.

Chains the stages of the paper's experiment: a ``.x`` interface is
compiled to MiniC stubs (:mod:`repro.rpcgen.codegen_minic`), specialized
by Tempo (:mod:`repro.tempo`) against the declared invariants (program
number, procedure, operation, buffer sizes, array lengths), and the
residual program is compiled to Python (:mod:`repro.minic.compile_py`).
The resulting marshalers plug into the live RPC stack
(:mod:`repro.rpc`), replacing the generic XDR micro-layers.
"""

from repro.specialized.cache import SpecializationCache, content_key
from repro.specialized.online import (
    DispatchProfiler,
    OnlineClientCodec,
    OnlinePolicy,
    OnlineServerRoute,
    OnlineSpecializer,
)
from repro.specialized.pipeline import (
    ClientSpecialization,
    ResidualCodec,
    ServerSpecialization,
    SpecializationPipeline,
)

__all__ = [
    "ClientSpecialization",
    "content_key",
    "DispatchProfiler",
    "OnlineClientCodec",
    "OnlinePolicy",
    "OnlineServerRoute",
    "OnlineSpecializer",
    "ResidualCodec",
    "ServerSpecialization",
    "SpecializationCache",
    "SpecializationPipeline",
]
