"""Runtime glue between Python-land values and compiled residual code.

Compiled residual programs (from :mod:`repro.minic.compile_py`) operate
on :mod:`repro.minic.pyruntime` values: generated struct classes, plain
lists for arrays, :class:`~repro.minic.pyruntime.PyBuffer` cursors.
These converters move data between those and the Python stub structs
(or dict/attribute-style values) the application uses.
"""

import threading

from repro.errors import IdlError
from repro.minic import pyruntime as rt
from repro.rpcgen import idl_ast as idl


def _get(value, name):
    if isinstance(value, dict):
        return value[name]
    return getattr(value, name)


def to_compiled(interface, struct_def, module, value):
    """Build a compiled-module struct instance from a Python value."""
    obj = module.new_struct(struct_def.name)
    for field in struct_def.fields:
        resolved = interface.resolve(field.type)
        if isinstance(resolved, idl.Prim):
            setattr(obj, field.name, int(_get(value, field.name)))
        elif isinstance(resolved, idl.FixedArray):
            items = list(_get(value, field.name))
            if len(items) != resolved.size:
                raise IdlError(
                    f"{struct_def.name}.{field.name}: expected"
                    f" {resolved.size} items, got {len(items)}"
                )
            getattr(obj, field.name)[:] = [int(i) for i in items]
        elif isinstance(resolved, idl.VarArray):
            items = list(_get(value, field.name))
            if len(items) > resolved.bound:
                raise IdlError(
                    f"{struct_def.name}.{field.name}: {len(items)} items"
                    f" exceed bound {resolved.bound}"
                )
            setattr(obj, f"{field.name}_len", len(items))
            backing = getattr(obj, field.name)
            backing[:len(items)] = [int(i) for i in items]
        elif isinstance(resolved, idl.Named):
            nested_def = interface.struct(resolved.name)
            nested = to_compiled(
                interface, nested_def, module, _get(value, field.name)
            )
            setattr(obj, field.name, nested)
        else:
            raise IdlError(f"unsupported field type {resolved!r}")
    return obj


def from_compiled(interface, struct_def, obj, factory=None):
    """Extract a plain-dict (or ``factory``-built) value from a compiled
    struct instance."""
    result = {}
    for field in struct_def.fields:
        resolved = interface.resolve(field.type)
        if isinstance(resolved, idl.Prim):
            result[field.name] = getattr(obj, field.name)
        elif isinstance(resolved, idl.FixedArray):
            result[field.name] = list(getattr(obj, field.name))
        elif isinstance(resolved, idl.VarArray):
            length = getattr(obj, f"{field.name}_len")
            result[field.name] = list(getattr(obj, field.name)[:length])
        elif isinstance(resolved, idl.Named):
            nested_def = interface.struct(resolved.name)
            result[field.name] = from_compiled(
                interface, nested_def, getattr(obj, field.name)
            )
        else:
            raise IdlError(f"unsupported field type {resolved!r}")
    if factory is not None:
        return factory(**result)
    return result


def fresh_buffer(size):
    """A new :class:`~repro.minic.pyruntime.PyBuffer`.

    ``size`` may also be bytes-like (including a ``memoryview`` over a
    transport receive buffer): the content is copied in, since compiled
    residual code needs the mutable byte-addressed PyBuffer view.
    """
    return rt.PyBuffer(size)


def buffer_cursor(buffer, offset=0):
    return rt.BufPtr(buffer, offset, 1, True)


class ScratchBuffers:
    """A bounded free-list of equal-size PyBuffer scratch buffers.

    The specialized server otherwise allocates a ``bufsize`` output
    buffer per dispatched datagram; steady-state traffic through this
    pool reuses the same one or two.  Residual marshalers write
    sequentially from offset 0 and report an output length, so buffers
    are reused without re-zeroing.
    """

    __slots__ = ("size", "limit", "_free", "_lock")

    def __init__(self, size, limit=4):
        self.size = size
        self.limit = limit
        self._free = []
        self._lock = threading.Lock()

    def acquire(self):
        with self._lock:
            if self._free:
                return self._free.pop()
        return rt.PyBuffer(self.size)

    def release(self, buffer):
        if buffer is None or len(buffer) != self.size:
            return
        with self._lock:
            if len(self._free) < self.limit:
                self._free.append(buffer)
