"""The IDL -> MiniC -> Tempo -> Python marshaler pipeline.

This ties the whole experiment together for live use:

1. ``rpcgen`` compiles the ``.x`` interface to MiniC stubs built on the
   Sun RPC micro-layers;
2. Tempo specializes the client marshal/receive paths (and optionally
   the server dispatch path) to the declared invariants — program and
   procedure numbers, buffer sizes, the XDR operation, and the assumed
   bounded-array lengths (the paper's ``expected_inlen`` rewrite);
3. the residual MiniC is compiled to Python and wrapped in codecs that
   plug into :class:`repro.rpc.client.RpcClient` /
   :class:`repro.rpc.svc_udp.UdpServer`.

Replies that do not match the expected shape (wrong length, stale xid,
error status) fall back to the generic decode path, mirroring the
residual ``else`` branches of the paper's §6.2 rewrite.

Every residual codec passes through the equivalence verifier
(:mod:`repro.analysis.verify`) before it installs — symbolic execution
against the generic codec over the declared size-guard domain.  The
gate is on by default; ``verify=False`` (or ``REPRO_SPEC_VERIFY=off``,
which wins over the code knob) disables it.  A codec that fails
verification raises :class:`~repro.errors.VerificationError` when
freshly built, and is rebuilt from Tempo when revived from the disk
cache.
"""

import os
import struct

from repro import obs as _obs
from repro.errors import IdlError, XdrError
from repro.minic.compile_py import compile_program
from repro.minic.parser import parse_program
from repro.minic.typecheck import typecheck_program
from repro.rpc.message import decode_reply_header, raise_for_reply
from repro.rpcgen import idl_ast as idl
from repro.rpcgen.codegen_minic import MiniCGenerator, generate_minic
from repro.rpcgen.codegen_py import load_python
from repro.specialized import runtime as sr
from repro.specialized.cache import SpecializationCache, content_key
from repro.specialized.sizes import message_sizes, reply_size, request_size
from repro.tempo import Dyn, DynPtr, Known, PtrTo, StructOf, specialize
from repro.xdr import XdrMemStream, XdrOp


class ResidualCodec:
    """Slim, picklable stand-in for a
    :class:`~repro.tempo.driver.SpecializationResult` — just the pieces
    the runtime wrappers consume.  This is what the disk tier of the
    specialization cache stores."""

    __slots__ = ("program", "entry_name", "residual_params")

    def __init__(self, program, entry_name, residual_params):
        self.program = program
        self.entry_name = entry_name
        self.residual_params = residual_params

    @classmethod
    def from_result(cls, result):
        if isinstance(result, cls):
            return result
        return cls(result.program, result.entry_name,
                   result.residual_params)


class ClientSpecialization:
    """Compiled specialized client codecs for one procedure."""

    def __init__(self, pipeline, proc, arg_struct, ret_struct, arg_lens,
                 res_lens, bufsize, marshal_result, recv_result):
        self.pipeline = pipeline
        self.proc = proc
        self.arg_struct = arg_struct
        self.ret_struct = ret_struct
        self.bufsize = bufsize
        self.expected_request, self.expected_reply = message_sizes(
            pipeline.interface, arg_struct, ret_struct, arg_lens, res_lens
        )
        self.marshal_result = marshal_result
        self.recv_result = recv_result
        self._marshal_module = compile_program(marshal_result.program)
        self._recv_module = compile_program(recv_result.program)
        self._marshal_params = [n for _t, n in marshal_result.residual_params]
        self._recv_params = [n for _t, n in recv_result.residual_params]
        self._marshal_entry = marshal_result.entry_name
        self._recv_entry = recv_result.entry_name
        self._stub_ret_class = getattr(pipeline.stubs, ret_struct.name)
        self._generic_ret_filter = getattr(
            pipeline.stubs, f"xdr_{ret_struct.name}"
        )
        self._arg_lens = arg_lens
        self._res_lens = res_lens

    # -- codec entry points ---------------------------------------------

    def build_request(self, xid, args):
        """Serialize a complete call message with the residual marshaler."""
        module = self._marshal_module
        buffer = sr.fresh_buffer(self.bufsize)
        clnt = module.new_struct("CLIENT")
        clnt.cl_prog = self.pipeline.prog_number
        clnt.cl_vers = self.pipeline.vers_number
        arg_obj = sr.to_compiled(
            self.pipeline.interface, self.arg_struct, module, args
        )
        values = {
            "clnt": clnt,
            "xid": xid & 0xFFFFFFFF,
            "argsp": arg_obj,
            "outbuf": sr.buffer_cursor(buffer),
            "outsize": self.bufsize,
        }
        for field, length in self._arg_lens.items():
            values[f"expected_{field}_len"] = length
        outlen = module.call(
            self._marshal_entry,
            *[values[name] for name in self._marshal_params],
        )
        if outlen == 0:
            raise XdrError(
                f"specialized marshaler failed for proc {self.proc.name}"
            )
        return bytes(buffer.data[:outlen])

    def parse_reply(self, data, xid):
        """Decode a reply; falls back to the generic path off the fast
        shape.  Returns (matched, value) like RpcClient.parse_reply."""
        if len(data) == self.expected_reply:
            module = self._recv_module
            buffer = sr.fresh_buffer(data)
            res_obj = module.new_struct(self.ret_struct.name)
            values = {
                "inbuf": sr.buffer_cursor(buffer),
                "inlen": len(data),
                "xid": xid & 0xFFFFFFFF,
                "resp": res_obj,
            }
            for field, length in self._res_lens.items():
                values[f"expected_{field}_len"] = length
            ok = module.call(
                self._recv_entry,
                *[values[name] for name in self._recv_params],
            )
            if ok:
                return True, sr.from_compiled(
                    self.pipeline.interface,
                    self.ret_struct,
                    res_obj,
                    factory=self._stub_ret_class,
                )
        # Generic fallback: classify stale xids and protocol errors.
        stream = XdrMemStream(data, XdrOp.DECODE)
        reply = decode_reply_header(stream)
        if reply.xid != (xid & 0xFFFFFFFF):
            return False, None
        raise_for_reply(reply)
        return True, self._generic_ret_filter(stream, None)

    def install(self, client):
        """Attach these codecs to an RpcClient for this procedure.

        On a fast-path client this also narrows the buffer pools to the
        exact expected request/reply sizes (the paper's §6 exact-size
        buffers) instead of the 8800-byte default."""
        client.install_codec(
            self.proc.number, self.build_request, self.parse_reply
        )
        configure = getattr(client, "configure_buffers", None)
        if configure is not None:
            configure(self.expected_request, self.expected_reply)
        return client


class ServerSpecialization:
    """A compiled specialized dispatcher, duck-typed as a registry for
    :class:`~repro.rpc.svc_udp.UdpServer` (it only needs
    ``dispatch_bytes``)."""

    def __init__(self, pipeline, handle_result, bufsize, fallback=None):
        self.pipeline = pipeline
        self.bufsize = bufsize
        self.fallback = fallback
        self.result = handle_result
        self._module = compile_program(handle_result.program)
        self._params = [n for _t, n in handle_result.residual_params]
        self._entry = handle_result.entry_name
        self._out_buffers = sr.ScratchBuffers(bufsize)
        self.fast_path_hits = 0
        self.fallback_hits = 0

    def _drc_key(self, data, caller):
        """The fallback registry's DRC key for this request, or None.

        The residual dispatcher re-executes the handler on every
        datagram, so duplicates are filtered here with the same reply
        cache the generic path uses — keeping the specialized and
        generic servers behaviorally equivalent under retransmission.
        """
        drc = getattr(self.fallback, "drc", None)
        if drc is None or caller is None or len(data) < 24:
            return None
        xid, _mtype, _rpcvers, prog, vers, proc = struct.unpack_from(
            ">6I", data, 0
        )
        return drc.key(xid, caller, prog, vers, proc)

    def residual_reply(self, data):
        """Run the residual dispatcher alone: the reply bytes for
        ``data``, or None when the residual program declined (bytes
        that crash it, a reply that does not fit).

        No DRC, drain, quota, or fallback logic — callers compose
        those policies themselves (:meth:`dispatch_bytes` does for the
        offline wrapper; :class:`repro.specialized.online
        .OnlineServerRoute` does for hot-swapped routes)."""
        in_buffer = sr.fresh_buffer(data)
        out_buffer = self._out_buffers.acquire()
        try:
            values = {
                "inbuf": sr.buffer_cursor(in_buffer),
                "inlen": len(data),
                "outbuf": sr.buffer_cursor(out_buffer),
                "outsize": self.bufsize,
            }
            try:
                outlen = self._module.call(
                    self._entry, *[values[name] for name in self._params]
                )
            # repro: disable=overbroad-except -- a faulting residual must fall back to the generic dispatcher
            except Exception:
                outlen = 0
            if outlen:
                self.fast_path_hits += 1
                return bytes(out_buffer.data[:outlen])
            return None
        finally:
            self._out_buffers.release(out_buffer)

    def dispatch_bytes(self, data, caller=None, received_at=None):
        span = None
        if _obs.enabled:
            _obs.registry.counter("rpc.server.requests").inc()
            span = _obs.span(
                "server.dispatch", side="server", tier="specialized",
                bytes=len(data),
                caller=str(caller) if caller is not None else None,
            )
        drc_key = self._drc_key(data, caller)
        if drc_key is not None:
            drc_span = (span.child("server.drc_lookup")
                        if span is not None else None)
            cached = self.fallback.drc.get(drc_key)
            if drc_span is not None:
                drc_span.end(hit=cached is not None)
            if cached is not None:
                if _obs.enabled:
                    _obs.registry.counter("rpc.server.replies",
                                          outcome="drc_replay").inc()
                if span is not None:
                    span.end(outcome="drc_replay")
                return cached
        if getattr(self.fallback, "draining", False):
            # Drain mode applies to the residual fast path too: the
            # generic registry sheds (or answers health) so both tiers
            # refuse new work identically.
            if span is not None:
                span.end(outcome="drained")
            return self.fallback.dispatch_bytes(data, caller=caller,
                                                received_at=received_at)
        if drc_key is not None:
            # Atomic claim before executing (see
            # DuplicateRequestCache.claim): only one worker runs a
            # given xid even when the original and a retransmission
            # are queued together.
            claimed = self.fallback.drc.claim(drc_key)
            if claimed is False:
                if _obs.enabled:
                    _obs.registry.counter("rpc.server.replies",
                                          outcome="dropped").inc()
                if span is not None:
                    span.end(outcome="dropped")
                return None
            if claimed is not True:
                if _obs.enabled:
                    _obs.registry.counter("rpc.server.replies",
                                          outcome="drc_replay").inc()
                if span is not None:
                    span.end(outcome="drc_replay")
                return claimed
        in_buffer = sr.fresh_buffer(data)
        out_buffer = self._out_buffers.acquire()
        try:
            values = {
                "inbuf": sr.buffer_cursor(in_buffer),
                "inlen": len(data),
                "outbuf": sr.buffer_cursor(out_buffer),
                "outsize": self.bufsize,
            }
            handler_span = (span.child("server.handler")
                            if span is not None else None)
            try:
                outlen = self._module.call(
                    self._entry, *[values[name] for name in self._params]
                )
            # repro: disable=overbroad-except -- a faulting residual must fall back to the generic dispatcher
            except Exception:
                # Defensive decode: fuzzed bytes that crash the
                # residual program must not crash dispatch — hand the
                # request to the generic fallback (which answers with
                # a typed RPC error or drops it).
                outlen = 0
                if _obs.enabled:
                    _obs.registry.counter(
                        "rpc.server.decode_defended").inc()
            if handler_span is not None:
                handler_span.end(residual=True)
            if outlen:
                self.fast_path_hits += 1
                reply = bytes(out_buffer.data[:outlen])
                if drc_key is not None:
                    self.fallback.drc.put(drc_key, reply)
                if _obs.enabled:
                    _obs.registry.counter(
                        "rpc.server.specialized_hits").inc()
                    _obs.registry.counter("rpc.server.replies",
                                          outcome="success").inc()
                if span is not None:
                    span.end(outcome="success", reply_bytes=len(reply))
                return reply
        except BaseException as exc:
            if drc_key is not None:
                self.fallback.drc.abandon(drc_key)
            if span is not None:
                span.end(outcome="error", error=type(exc).__name__)
            raise
        finally:
            self._out_buffers.release(out_buffer)
        if drc_key is not None:
            # Hand the claim back before delegating — the fallback
            # registry re-claims atomically, so single execution still
            # holds (a racing duplicate that claims first wins and the
            # fallback drops this one).
            self.fallback.drc.abandon(drc_key)
        if self.fallback is not None:
            self.fallback_hits += 1
            if _obs.enabled:
                _obs.registry.counter(
                    "rpc.server.specialized_fallbacks").inc()
            if span is not None:
                span.end(outcome="fallback")
            return self.fallback.dispatch_bytes(data, caller=caller,
                                                received_at=received_at)
        if _obs.enabled:
            _obs.registry.counter("rpc.server.replies",
                                  outcome="dropped").inc()
        if span is not None:
            span.end(outcome="dropped")
        return None


class SpecializationPipeline:
    """Front door: one pipeline per interface (and program version)."""

    def __init__(self, idl_source, impl_sources=None, options=None,
                 program=None, version=None, cache=None, cache_dir=None,
                 verify=None, verify_unroll_cap=None):
        from repro.rpcgen.idl_parser import parse_idl

        self.interface = parse_idl(idl_source)
        self.impl_sources = impl_sources
        self.options = options
        self.minic_source = generate_minic(self.interface, impl_sources)
        self.program_ast = parse_program(self.minic_source)
        self.typeinfo = typecheck_program(self.program_ast)
        self.stubs = load_python(self.interface, "pipeline_stubs")
        self.idl_program = self._select_program(program)
        self.idl_version = self._select_version(version)
        self._gen = MiniCGenerator(self.interface)
        #: memoized specializations.  The fingerprint covers everything
        #: the residual code is derived from, so editing the IDL (or the
        #: impls, or the specializer options) invalidates by keying.
        if cache is None:
            if cache_dir is None:
                cache_dir = os.environ.get("REPRO_SPEC_CACHE_DIR")
            cache = SpecializationCache(cache_dir=cache_dir)
        self.cache = cache
        #: verification knob: None = default on; the REPRO_SPEC_VERIFY
        #: environment kill switch overrides the code knob either way.
        self.verify = verify
        self.verify_unroll_cap = verify_unroll_cap
        self._fingerprint = content_key(
            idl=idl_source,
            impls=list(impl_sources or []),
            options=repr(options),
            program=program,
            version=version,
        )

    def _select_program(self, name):
        programs = self.interface.programs
        if not programs:
            raise IdlError("interface declares no program")
        if name is None:
            return programs[0]
        for program in programs:
            if program.name == name:
                return program
        raise IdlError(f"no program named {name!r}")

    def _select_version(self, number):
        versions = self.idl_program.versions
        if number is None:
            return versions[0]
        for version in versions:
            if version.number == number:
                return version
        raise IdlError(f"no version {number!r}")

    @property
    def prog_number(self):
        return self.idl_program.number

    @property
    def vers_number(self):
        return self.idl_version.number

    def find_proc(self, name):
        for proc in self.idl_version.procs:
            if proc.name == name:
                return proc
        raise IdlError(f"no procedure named {name!r}")

    # -- the verification gate ---------------------------------------------

    def verify_enabled(self):
        """Whether residual codecs are verified before installing.

        ``REPRO_SPEC_VERIFY`` wins over the constructor knob (so an
        operator can force verification on — or kill it — without a
        code change); otherwise ``verify=None`` means on.
        """
        raw = os.environ.get("REPRO_SPEC_VERIFY", "").strip().lower()
        if raw:
            return raw not in ("0", "no", "off", "false")
        return True if self.verify is None else bool(self.verify)

    def _count_verify(self, kind, findings):
        if not _obs.enabled:
            return
        if findings:
            _obs.registry.counter(
                "rpc.spec.verify.fail", kind=kind,
                reason=findings[0].rule,
            ).inc()
        else:
            _obs.registry.counter("rpc.spec.verify.pass", kind=kind).inc()

    def _client_check(self, spec):
        from repro.analysis.verify import ensure_verified, verify_client_spec

        findings = verify_client_spec(
            self, spec, unroll_cap=self.verify_unroll_cap
        )
        self._count_verify("client", findings)
        ensure_verified(findings, f"client codec {spec.proc.name}")

    def _server_check(self, result, proc, arg_lens, res_lens, bufsize):
        from repro.analysis.verify import (
            ensure_verified,
            verify_server_residual,
        )

        findings = verify_server_residual(
            self, ResidualCodec.from_result(result), proc, arg_lens,
            res_lens, bufsize, unroll_cap=self.verify_unroll_cap,
        )
        self._count_verify("server", findings)
        ensure_verified(findings, f"server dispatcher for {proc.name}")

    def _struct_for(self, type_ref, where):
        resolved = self.interface.resolve(type_ref)
        if isinstance(resolved, idl.Named):
            return self.interface.struct(resolved.name)
        raise IdlError(f"{where}: MiniC pipeline needs struct types")

    def _length_assumptions(self, struct, lens):
        """Normalize/validate the assumed bounded-array lengths."""
        expected = set(self._gen.var_fields(struct))
        lens = dict(lens or {})
        missing = expected - set(lens)
        if missing:
            raise IdlError(
                f"missing assumed lengths for bounded arrays of"
                f" {struct.name}: {sorted(missing)}"
            )
        extra = set(lens) - expected
        if extra:
            raise IdlError(f"unknown bounded arrays: {sorted(extra)}")
        return lens

    # -- client ------------------------------------------------------------

    def specialize_client(self, proc_name, arg_lens=None, res_lens=None,
                          bufsize=8800):
        """Specialize the marshal and receive paths of one procedure.

        ``arg_lens``/``res_lens`` map bounded-array field names to the
        assumed element counts (the invariants of the workload).

        Results are memoized: a repeat call with identical invariants
        is served from the in-memory cache in O(1), and — when a disk
        tier is configured — a fresh process revives the residual
        programs from disk instead of re-running Tempo."""
        proc = self.find_proc(proc_name)
        arg_struct = self._struct_for(proc.arg, proc.name)
        ret_struct = self._struct_for(proc.ret, proc.name)
        arg_lens = self._length_assumptions(arg_struct, arg_lens)
        res_lens = self._length_assumptions(ret_struct, res_lens)
        key = content_key(
            kind="client",
            fingerprint=self._fingerprint,
            proc=proc_name,
            arg_lens=sorted(arg_lens.items()),
            res_lens=sorted(res_lens.items()),
            bufsize=bufsize,
        )
        return self.cache.get(
            key,
            build=lambda: self._specialize_client_uncached(
                proc, arg_struct, ret_struct, arg_lens, res_lens, bufsize
            ),
            dump=lambda spec: (
                ResidualCodec.from_result(spec.marshal_result),
                ResidualCodec.from_result(spec.recv_result),
            ),
            load=lambda payload: ClientSpecialization(
                self, proc, arg_struct, ret_struct, arg_lens, res_lens,
                bufsize, payload[0], payload[1],
            ),
            check=self._client_check if self.verify_enabled() else None,
        )

    def _specialize_client_uncached(self, proc, arg_struct, ret_struct,
                                    arg_lens, res_lens, bufsize):
        lname = proc.name.lower()
        marshal_assumptions = {
            "clnt": PtrTo(
                StructOf(
                    cl_prog=Known(self.prog_number),
                    cl_vers=Known(self.vers_number),
                )
            ),
            "xid": Dyn(),
            "argsp": PtrTo(
                StructOf(
                    {f"{f}_len": Known(n) for f, n in arg_lens.items()}
                )
            ),
            "outbuf": DynPtr(),
            "outsize": Known(bufsize),
        }
        for field, length in arg_lens.items():
            marshal_assumptions[f"expected_{field}_len"] = Known(length)
        marshal_result = specialize(
            self.program_ast,
            f"{lname}_marshal",
            marshal_assumptions,
            options=self.options,
            typeinfo=self.typeinfo,
        )
        expected_reply = reply_size(self.interface, ret_struct, res_lens)
        recv_assumptions = {
            "inbuf": DynPtr(),
            "inlen": Known(expected_reply),
            "xid": Dyn(),
            "resp": PtrTo(StructOf()),
        }
        for field, length in res_lens.items():
            recv_assumptions[f"expected_{field}_len"] = Known(length)
        recv_result = specialize(
            self.program_ast,
            f"{lname}_recv",
            recv_assumptions,
            options=self.options,
            typeinfo=self.typeinfo,
        )
        return ClientSpecialization(
            self, proc, arg_struct, ret_struct, arg_lens, res_lens, bufsize,
            marshal_result, recv_result,
        )

    # -- server -------------------------------------------------------------

    def specialize_server(self, hot_proc, arg_lens=None, res_lens=None,
                          bufsize=8800, fallback=None):
        """Specialize the server dispatch path for the expected workload
        (``hot_proc`` with the given array lengths); other requests take
        the generic residual branch or the optional ``fallback``
        registry."""
        if self.impl_sources is None:
            raise IdlError(
                "server specialization needs MiniC impl_sources for the"
                " procedure bodies"
            )
        proc = self.find_proc(hot_proc)
        arg_struct = self._struct_for(proc.arg, proc.name)
        ret_struct = self._struct_for(proc.ret, proc.name)
        arg_lens = self._length_assumptions(arg_struct, arg_lens)
        res_lens = self._length_assumptions(ret_struct, res_lens)
        key = content_key(
            kind="server",
            fingerprint=self._fingerprint,
            proc=hot_proc,
            arg_lens=sorted(arg_lens.items()),
            res_lens=sorted(res_lens.items()),
            bufsize=bufsize,
        )
        # The residual program is cached; the wrapper is rebuilt per
        # call because it carries per-instance state (dispatch counters,
        # the live ``fallback`` registry).
        check = None
        if self.verify_enabled():
            check = lambda result: self._server_check(  # noqa: E731
                result, proc, arg_lens, res_lens, bufsize
            )
        handle_result = self.cache.get(
            key,
            build=lambda: self._specialize_server_uncached(
                proc, arg_lens, res_lens, bufsize
            ),
            dump=ResidualCodec.from_result,
            load=lambda payload: payload,
            check=check,
        )
        return ServerSpecialization(self, handle_result, bufsize, fallback)

    def _specialize_server_uncached(self, proc, arg_lens, res_lens, bufsize):
        arg_struct = self._struct_for(proc.arg, proc.name)
        expected_request = request_size(self.interface, arg_struct, arg_lens)
        suffix = f"{self.idl_program.name.lower()}_{self.vers_number}"
        assumptions = {
            "inbuf": DynPtr(),
            "inlen": Dyn(),
            "outbuf": DynPtr(),
            "outsize": Known(bufsize),
            "expected_inlen": Known(expected_request),
        }
        for version_proc in self.idl_version.procs:
            vp_name = version_proc.name.lower()
            vp_arg = self._struct_for(version_proc.arg, version_proc.name)
            vp_ret = self._struct_for(version_proc.ret, version_proc.name)
            for field in self._gen.var_fields(vp_arg):
                length = arg_lens.get(field, 0) if version_proc is proc else 0
                assumptions[f"{vp_name}_expected_{field}_len"] = Known(length)
            for field in self._gen.var_fields(vp_ret):
                length = res_lens.get(field, 0) if version_proc is proc else 0
                assumptions[f"{vp_name}_expected_{field}_len_res"] = Known(
                    length
                )
        return specialize(
            self.program_ast,
            f"svc_handle_{suffix}",
            assumptions,
            options=self.options,
            typeinfo=self.typeinfo,
        )
