"""Profile-guided online specialization — the closed loop.

Everything below ties three previously separate mechanisms together:
the live traffic profile (``repro.obs``-style dispatch sampling), the
:class:`~repro.specialized.pipeline.SpecializationPipeline` (Tempo),
and the hot dispatch paths (``SvcRegistry.dispatch_bytes`` on every
server tier, ``RpcClient.install_codec`` on the client):

1. a :class:`DispatchProfiler` samples (prog, vers, proc) call counts
   and observed request/reply size pairs at dispatch;
2. an :class:`OnlinePolicy` decides which procedures are hot *and
   stable* enough to specialize (min call count/rate, a dominant size
   share over a recent window, and the paper's unroll-cap cost bound);
3. an :class:`OnlineSpecializer` background thread runs the pipeline
   for the decided invariants and atomically hot-swaps the residual
   codec into dispatch — an :class:`OnlineServerRoute` on the server
   (one copy-on-write dict publish covers ``svc_udp``/``svc_tcp`` and
   both mux tiers, which all dispatch through the same registry), an
   :class:`OnlineClientCodec` on the client.

Every specialized route carries an **invariant guard**: a message
outside the specialized length set falls back to the generic codec on
that call and records a violation; past a threshold the specializer
*respecializes* with widened bounds (adds the newly dominant length to
the route, up to ``max_sizes``) or — when the size distribution has
shifted with no new dominant length, or the route is already at its
width cap — *demotes* the procedure back to generic and cools down.

The loop is off by default: nothing engages unless an
``OnlineSpecializer`` is constructed and attached (the servers take an
``online_spec=`` argument).  ``REPRO_ONLINE_SPEC=0`` is a global kill
switch that wins over code.
"""

import logging
import os
import struct
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass

from repro import obs as _obs
from repro.errors import VerificationError, XdrError
from repro.rpc.fastpath import ReplyHeaderTemplate
from repro.rpc.message import (
    AcceptStat,
    CallHeader,
    decode_reply_header,
    encode_call_header,
    raise_for_reply,
)
from repro.rpc.server import _TO_GENERIC
from repro.specialized.sizes import reply_size, request_size
from repro.xdr import XdrMemStream, XdrOp

logger = logging.getLogger(__name__)

#: the static words of a v2 call header (msg_type CALL=0, rpcvers=2).
_CALL_V2 = struct.pack(">II", 0, 2)

#: the accepted-SUCCESS reply shape (used to sample only success-reply
#: sizes — error replies say nothing about the result invariants).
_SUCCESS_REPLY = ReplyHeaderTemplate()

#: bound on the distinct sizes a profile/violation tally tracks; sizes
#: beyond it still count toward totals but are not enumerated (a wild
#: distribution never grows unbounded state).
_MAX_TRACKED_SIZES = 32


def env_enabled(default=True):
    """The ``REPRO_ONLINE_SPEC`` kill switch.

    Unset: ``default``.  Set: any falsy spelling (``0``, ``no``,
    ``off``, ``false``, empty) disables the loop globally, anything
    else enables it.  The environment wins over code so an operator
    can switch the loop off without a deploy.
    """
    raw = os.environ.get("REPRO_ONLINE_SPEC")
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "no", "off", "false")


@dataclass
class OnlinePolicy:
    """When to specialize, how wide a route may grow, when to give up.

    The defaults are conservative: a procedure must show a sustained,
    size-stable load before the (seconds-long) Tempo build is spent on
    it, and ``unroll_cap`` refuses element counts past the paper's
    cost-model bound — beyond ~250 elements the unrolled residual
    loses to the generic loop, so specializing there is a pessimization
    (source paper §6, Table 4).
    """

    #: observed calls before a procedure is considered hot.
    min_calls: int = 200
    #: sustained call rate floor in calls/s (0 disables the rate test).
    min_rate_hz: float = 0.0
    #: share of the recent window one size pair must hold to count as
    #: a stable invariant (promotion and respecialization both).
    stable_fraction: float = 0.9
    #: recent-sample window for the stability test.
    window: int = 64
    #: refuse to specialize bounded arrays longer than this (the
    #: paper's partial-unroll cost bound).
    unroll_cap: int = 250
    #: guard misses between reviews of an installed route.
    violation_threshold: int = 32
    #: distinct specialized lengths one route may carry before a new
    #: stable length demotes instead of widening.
    max_sizes: int = 4
    #: back-off after a demotion or a refused build before the same
    #: procedure is reconsidered.
    cooldown_s: float = 5.0


class ProcProfile:
    """Per-(prog, vers, proc) traffic sample."""

    __slots__ = ("calls", "first_ts", "last_ts", "recent", "pairs")

    def __init__(self, window, now):
        self.calls = 0
        self.first_ts = now
        self.last_ts = now
        #: recent (request_bytes, success_reply_bytes|None) pairs.
        self.recent = deque(maxlen=window)
        #: all-time tally of the same pairs (bounded).
        self.pairs = {}

    def rate(self):
        """Observed calls/s (inf while the window spans no time)."""
        elapsed = self.last_ts - self.first_ts
        if elapsed <= 0.0:
            return float("inf")
        return self.calls / elapsed


class DispatchProfiler:
    """Samples registry dispatch: call counts and message-size pairs.

    Installed via ``SvcRegistry.install_profiler``; the registry calls
    :meth:`record` with the raw request and the raw reply after every
    generically-dispatched message, so the sample covers exactly the
    traffic that is *not* yet specialized.  Parsing is three slice
    compares and one ``struct.unpack_from`` — cheap enough to leave on.
    """

    def __init__(self, window=64, clock=time.monotonic):
        self.window = window
        self.clock = clock
        self._profiles = {}

    def record(self, data, reply):
        if len(data) < 24 or data[4:12] != _CALL_V2:
            return
        prog, vers, proc = struct.unpack_from(">3I", data, 12)
        key = (prog, vers, proc)
        profile = self._profiles.get(key)
        if profile is None:
            profile = self._profiles.setdefault(
                key, ProcProfile(self.window, self.clock())
            )
        profile.calls += 1
        profile.last_ts = self.clock()
        reply_bytes = (len(reply) if reply is not None
                       and _SUCCESS_REPLY.matches(reply) else None)
        pair = (len(data), reply_bytes)
        profile.recent.append(pair)
        pairs = profile.pairs
        if pair in pairs or len(pairs) < _MAX_TRACKED_SIZES:
            pairs[pair] = pairs.get(pair, 0) + 1
        if _obs.enabled:
            _obs.registry.counter("rpc.spec.online.observed",
                                  side="server").inc()

    def snapshot(self):
        """The live profiles, keyed by (prog, vers, proc)."""
        return dict(self._profiles)

    def reset(self, key):
        """Forget one procedure's sample (after a demotion, so a
        repromotion needs fresh evidence of stability)."""
        self._profiles.pop(key, None)


def _dominant(samples):
    """``(value, share)`` of the most common element, or (None, 0.0)."""
    if not samples:
        return None, 0.0
    counts = Counter(samples)
    value, count = counts.most_common(1)[0]
    return value, count / sum(counts.values())


def _dominant_of_counts(counts):
    """Like :func:`_dominant` for an already-tallied {value: count}."""
    if not counts:
        return None, 0.0
    value = max(counts, key=counts.get)
    return value, counts[value] / sum(counts.values())


class OnlineServerRoute:
    """One hot procedure's residual dispatch, with the invariant guard.

    Holds a map of *exact request sizes* to compiled
    :class:`~repro.specialized.pipeline.ServerSpecialization` residuals
    (one per specialized length — "widened bounds" means more entries).
    A request whose size is not in the map is an invariant violation:
    it is counted and handed back to the generic dispatcher, which
    answers it correctly on that call (the guard never guesses).

    Semantics match the staged/generic paths exactly: drain mode and
    quota shedding behave identically, and the DRC claim protocol
    (begin -> execute -> put / abandon) runs with the same keys, so
    at-most-once holds across a mid-traffic hot swap.
    """

    _ERR_TAIL = ReplyHeaderTemplate(stat=AcceptStat.SYSTEM_ERR).prefix[4:]

    def __init__(self, registry, prog, vers, proc):
        self.registry = registry
        self.prog = prog
        self.vers = vers
        self.proc = proc
        #: expected request bytes -> ServerSpecialization (copy-on-write)
        self._specs = {}
        self.hits = 0
        self.violations = 0
        self._violation_sizes = {}

    @property
    def sizes(self):
        """The specialized request sizes, ascending."""
        return sorted(self._specs)

    def add_size(self, request_bytes, spec):
        """Widen the guard: publish a new size -> residual binding."""
        specs = dict(self._specs)
        specs[request_bytes] = spec
        self._specs = specs

    def take_violation_sizes(self):
        """Drain the per-size violation tally (review time)."""
        sizes, self._violation_sizes = self._violation_sizes, {}
        return sizes

    def _violation(self, nbytes):
        self.violations += 1
        sizes = self._violation_sizes
        if nbytes in sizes or len(sizes) < _MAX_TRACKED_SIZES:
            sizes[nbytes] = sizes.get(nbytes, 0) + 1
        if _obs.enabled:
            _obs.registry.counter("rpc.spec.online.violations",
                                  side="server").inc()
        return _TO_GENERIC

    def _count(self, outcome):
        """Request/outcome counters for a route-answered request (the
        generic dispatcher was bypassed, so it cannot count this one)."""
        if _obs.enabled:
            _obs.registry.counter("rpc.server.requests").inc()
            _obs.registry.counter("rpc.server.replies",
                                  outcome=outcome).inc()

    def __call__(self, data, caller):
        registry = self.registry
        if registry.draining:
            return _TO_GENERIC
        spec = self._specs.get(len(data))
        if spec is None:
            return self._violation(len(data))
        xid_bytes = bytes(data[0:4])
        drc = registry.drc
        drc_key = None
        if drc is not None and caller is not None:
            drc_key = (int.from_bytes(xid_bytes, "big"), caller,
                       self.prog, self.vers, self.proc)
            verdict = drc.begin(drc_key)
            if verdict is False:
                self._count("dropped")
                return None  # original still executing: drop
            if verdict is not True:
                self._count("drc_replay")
                return verdict  # replay the recorded reply
        if registry._over_quota(caller, self.prog, self.vers):
            if drc_key is not None:
                drc.abandon(drc_key)
            registry.sheds += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.server.sheds",
                                      reason="quota").inc()
            self._count("shed")
            return xid_bytes + self._ERR_TAIL
        span = None
        if _obs.enabled:
            _obs.registry.counter("rpc.server.requests").inc()
            span = _obs.span(
                "server.dispatch", side="server", tier="online",
                bytes=len(data), prog=self.prog, proc=self.proc,
                caller=str(caller) if caller is not None else None,
            )
        reply = spec.residual_reply(data)
        if reply is None:
            # The residual program declined (bytes that crash it): the
            # generic dispatcher owns the request.  Release the claim
            # so its own begin/claim protocol takes over; note this
            # request was already counted above, so the generic path's
            # own count makes the totals off by one — acceptable for a
            # defended-garbage path that normal traffic never takes.
            if drc_key is not None:
                drc.abandon(drc_key)
            if span is not None:
                span.end(outcome="fallback")
            return self._violation(len(data))
        registry.handlers_invoked += 1
        self.hits += 1
        if drc_key is not None:
            drc.put(drc_key, reply)
        if _obs.enabled:
            _obs.registry.counter("rpc.spec.online.hits",
                                  side="server").inc()
            _obs.registry.counter("rpc.server.replies",
                                  outcome="success").inc()
        if span is not None:
            span.end(outcome="success", reply_bytes=len(reply))
        return reply


class OnlineClientCodec:
    """Whole-message client codec that profiles, then hot-swaps.

    Installed by :meth:`OnlineSpecializer.attach_client` via
    ``RpcClient.install_codec``.  Until a specialization is built it is
    a byte-identical generic encoder/decoder that samples argument
    lengths and success-reply sizes; after promotion it routes calls
    whose argument length is specialized through the residual codecs
    and everything else through the generic path (one violation each).
    """

    def __init__(self, specializer, client, proc_name):
        pipeline = specializer.pipeline
        self.client = client
        self.proc_name = proc_name
        self.proc = pipeline.find_proc(proc_name)
        self.arg_struct = pipeline._struct_for(self.proc.arg, proc_name)
        self.ret_struct = pipeline._struct_for(self.proc.ret, proc_name)
        self._arg_fields = pipeline._gen.var_fields(self.arg_struct)
        self._arg_filter = getattr(pipeline.stubs,
                                   f"xdr_{self.arg_struct.name}")
        self._ret_filter = getattr(pipeline.stubs,
                                   f"xdr_{self.ret_struct.name}")
        self._clock = specializer.clock
        self.calls = 0
        self.hits = 0
        self.violations = 0
        self._violation_lens = {}
        self.first_ts = None
        self.last_ts = None
        window = specializer.policy.window
        #: recent argument element counts (None = unprofilable args).
        self.recent = deque(maxlen=window)
        #: recent success-reply byte sizes.
        self.reply_recent = deque(maxlen=window)
        #: arg element count -> ClientSpecialization (copy-on-write).
        self._specs = {}
        #: expected reply bytes -> the same specs, for parse routing.
        self._by_reply = {}

    @property
    def lens(self):
        """The specialized argument element counts, ascending."""
        return sorted(self._specs)

    def arg_count(self, args):
        """The bounded-array element count of ``args`` (0 when the
        struct has no bounded arrays, None when unprofilable)."""
        if not self._arg_fields:
            return 0
        if len(self._arg_fields) > 1:
            return None
        value = getattr(args, self._arg_fields[0], None)
        try:
            return len(value)
        except TypeError:
            return None

    def add_spec(self, n, spec):
        specs = dict(self._specs)
        specs[n] = spec
        self._specs = specs
        by_reply = dict(self._by_reply)
        by_reply[spec.expected_reply] = spec
        self._by_reply = by_reply

    def clear_specs(self):
        self._specs = {}
        self._by_reply = {}

    def reset_profile(self):
        self.calls = 0
        self.first_ts = None
        self.last_ts = None
        self.recent.clear()
        self.reply_recent.clear()

    def take_violation_lens(self):
        lens, self._violation_lens = self._violation_lens, {}
        return lens

    def _violation(self, n):
        self.violations += 1
        lens = self._violation_lens
        if n in lens or len(lens) < _MAX_TRACKED_SIZES:
            lens[n] = lens.get(n, 0) + 1
        if _obs.enabled:
            _obs.registry.counter("rpc.spec.online.violations",
                                  side="client").inc()

    # -- the codec entry points -----------------------------------------

    def build_request(self, xid, args):
        now = self._clock()
        if self.first_ts is None:
            self.first_ts = now
        self.last_ts = now
        self.calls += 1
        n = self.arg_count(args)
        if n is not None:
            self.recent.append(n)
        if _obs.enabled:
            _obs.registry.counter("rpc.spec.online.observed",
                                  side="client").inc()
        specs = self._specs
        if specs:
            spec = specs.get(n)
            if spec is not None:
                try:
                    out = spec.build_request(xid, args)
                except XdrError:
                    out = None
                if out is not None:
                    self.hits += 1
                    if _obs.enabled:
                        _obs.registry.counter("rpc.spec.online.hits",
                                              side="client").inc()
                    return out
            self._violation(n)
        return self._generic_request(xid, args)

    def _generic_request(self, xid, args):
        """The byte-identical generic encoding (never recurses into
        ``build_call`` — this codec *is* the installed codec)."""
        client = self.client
        stream = XdrMemStream(bytearray(client.bufsize), XdrOp.ENCODE)
        header = CallHeader(xid, client.prog, client.vers,
                            self.proc.number, client.cred, client.verf)
        encode_call_header(stream, header)
        self._arg_filter(stream, args)
        return stream.data()

    def parse_reply(self, data, xid):
        if _SUCCESS_REPLY.matches(data):
            self.reply_recent.append(len(data))
        spec = self._by_reply.get(len(data))
        if spec is not None:
            # ClientSpecialization.parse_reply falls back generically
            # itself on any shape mismatch, so this never wrong-decodes.
            return spec.parse_reply(data, xid)
        stream = XdrMemStream(data, XdrOp.DECODE)
        reply = decode_reply_header(stream)
        if reply.xid != (xid & 0xFFFFFFFF):
            return False, None
        raise_for_reply(reply)
        return True, self._ret_filter(stream, None)


@dataclass
class _RouteState:
    """Specializer-side bookkeeping for one attachment target."""

    route: object = None
    cooldown_until: float = 0.0
    reviewed_violations: int = 0


class OnlineSpecializer:
    """The background loop: watch profiles, build, hot-swap, guard.

    Construct one per :class:`SpecializationPipeline` (one interface),
    attach any number of server registries and clients, then either
    :meth:`start` the background thread or drive :meth:`poll_once`
    yourself (tests and the bench do, for determinism).  The servers'
    ``online_spec=`` argument calls ``attach_server`` +
    ``ensure_started`` for you; the specializer's lifetime belongs to
    whoever constructed it (``stop()`` or use it as a context manager).

    Builds go through the pipeline's :class:`SpecializationCache`, so
    with a disk tier configured (``cache_dir=``/``REPRO_SPEC_CACHE_DIR``)
    an auto-specialization survives restarts: the next process's
    promotion revives the residual code from disk instead of re-running
    Tempo.
    """

    def __init__(self, pipeline, policy=None, interval_s=0.05,
                 bufsize=8800, clock=time.monotonic, enabled=None):
        self.pipeline = pipeline
        self.policy = policy or OnlinePolicy()
        self.interval_s = interval_s
        self.bufsize = bufsize
        self.clock = clock
        if os.environ.get("REPRO_ONLINE_SPEC") is not None:
            self.enabled = env_enabled()
        else:
            self.enabled = True if enabled is None else bool(enabled)
        self._servers = []   # (registry, profiler)
        self._clients = []   # OnlineClientCodec
        self._states = {}
        self._lock = threading.RLock()
        self._stop_event = threading.Event()
        self._thread = None
        self.promotions = 0
        self.respecializations = 0
        self.demotions = 0
        self.skips = 0
        self.builds = 0
        self.last_build_s = 0.0
        self._active = {"server": 0, "client": 0}

    # -- attachment ------------------------------------------------------

    def attach_server(self, registry):
        """Profile ``registry`` and manage online routes on it.  The
        registry is shared by whatever transports serve it, so one
        attach covers UDP, TCP, and both mux tiers at once.  Returns
        the installed profiler (None when disabled)."""
        if not self.enabled:
            return None
        profiler = DispatchProfiler(window=self.policy.window,
                                    clock=self.clock)
        registry.install_profiler(profiler)
        with self._lock:
            self._servers.append((registry, profiler))
        return profiler

    def attach_client(self, client, proc_name):
        """Install a profiling/hot-swapping codec for one procedure on
        ``client``.  Returns the codec (None when disabled)."""
        if not self.enabled:
            return None
        codec = OnlineClientCodec(self, client, proc_name)
        client.install_codec(codec.proc.number, codec.build_request,
                             codec.parse_reply)
        with self._lock:
            self._clients.append(codec)
        return codec

    # -- lifecycle -------------------------------------------------------

    def start(self):
        """Run the decide/build/swap loop in a daemon thread."""
        if not self.enabled or self._thread is not None:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="online-spec", daemon=True)
        self._thread.start()
        return self

    #: servers call this from ``online_spec=`` so several servers can
    #: share one specializer without racing start().
    ensure_started = start

    @property
    def running(self):
        return self._thread is not None

    def stop(self):
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False

    def _loop(self):
        while not self._stop_event.wait(self.interval_s):
            try:
                self.poll_once()
            # repro: disable=overbroad-except -- the background poller must outlive any single failed pass
            except Exception:
                logger.exception("online specialization pass failed")

    # -- the decision pass ----------------------------------------------

    def poll_once(self):
        """One decide/build/swap pass over every attachment.  The
        background loop calls this on ``interval_s``; tests and the
        bench call it directly for deterministic convergence."""
        if not self.enabled:
            return
        with self._lock:
            for registry, profiler in self._servers:
                for key, profile in profiler.snapshot().items():
                    self._consider_server(registry, profiler, key, profile)
            for codec in self._clients:
                self._consider_client(codec)

    def _match_proc(self, prog, vers, proc_number):
        pipeline = self.pipeline
        if (prog != pipeline.prog_number
                or vers != pipeline.vers_number):
            return None
        for proc in pipeline.idl_version.procs:
            if proc.number == proc_number:
                return proc
        return None

    def _lens_for(self, struct, nbytes, message_size):
        """Invert an observed message size to the bounded-array element
        count it implies, or None when no single binding covers it
        (several bounded arrays split one size ambiguously)."""
        fields = self.pipeline._gen.var_fields(struct)
        floor = message_size(self.pipeline.interface, struct,
                             {f: 0 for f in fields})
        if not fields:
            return {} if nbytes == floor else None
        if len(fields) > 1:
            return None
        extra = nbytes - floor
        if extra < 0 or extra % 4:
            return None
        return {fields[0]: extra // 4}

    def _state(self, kind, ident):
        state = self._states.get((kind, ident))
        if state is None:
            state = _RouteState()
            self._states[(kind, ident)] = state
        return state

    def _counted(self, what, side):
        setattr(self, what, getattr(self, what) + 1)
        if _obs.enabled:
            _obs.registry.counter(f"rpc.spec.online.{what}",
                                  side=side).inc()

    def _swap_count(self, side, delta):
        self._active[side] += delta
        if _obs.enabled:
            _obs.registry.gauge("rpc.spec.online.active",
                                side=side).set(self._active[side])

    def _skip(self, reason, state):
        self.skips += 1
        state.cooldown_until = self.clock() + self.policy.cooldown_s
        if _obs.enabled:
            _obs.registry.counter("rpc.spec.online.skips",
                                  reason=reason).inc()

    def _build(self, state, builder, lens_list):
        cap = self.policy.unroll_cap
        if any(n > cap for lens in lens_list for n in lens.values()):
            self._skip("unroll_cap", state)
            return None
        started = self.clock()
        try:
            spec = builder()
        except VerificationError as exc:
            # The equivalence verifier rejected the residual codec:
            # never promote it; the generic path keeps serving.
            logger.warning("online specialization rejected by the"
                           " residual verifier: %s", exc)
            self._skip("verify_failed", state)
            return None
        # repro: disable=overbroad-except -- a failed build is skipped and counted; the generic path keeps serving
        except Exception:
            logger.exception("online specialization build failed")
            self._skip("build_error", state)
            return None
        self.builds += 1
        self.last_build_s = self.clock() - started
        if _obs.enabled:
            _obs.registry.histogram("rpc.spec.online.build_s").observe(
                self.last_build_s)
        return spec

    # -- server side -----------------------------------------------------

    def _build_server(self, state, proc, req_bytes, rep_bytes):
        pipeline = self.pipeline
        arg_struct = pipeline._struct_for(proc.arg, proc.name)
        ret_struct = pipeline._struct_for(proc.ret, proc.name)
        arg_lens = self._lens_for(arg_struct, req_bytes, request_size)
        res_lens = self._lens_for(ret_struct, rep_bytes, reply_size)
        if arg_lens is None or res_lens is None:
            self._skip("unsupported", state)
            return None
        return self._build(
            state,
            lambda: pipeline.specialize_server(
                proc.name, arg_lens=arg_lens, res_lens=res_lens,
                bufsize=self.bufsize,
            ),
            (arg_lens, res_lens),
        )

    def _reply_bytes_for(self, profile, req_bytes):
        """The dominant success-reply size seen with ``req_bytes``
        requests, or None."""
        best, best_count = None, 0
        for (req, rep), count in profile.pairs.items():
            if req == req_bytes and rep is not None and count > best_count:
                best, best_count = rep, count
        return best

    def _consider_server(self, registry, profiler, key, profile):
        prog, vers, proc_number = key
        policy = self.policy
        state = self._state("server", (id(registry), key))
        now = self.clock()
        if now < state.cooldown_until:
            return
        if state.route is None:
            proc = self._match_proc(prog, vers, proc_number)
            if proc is None:
                return  # another program (health, portmap, ...)
            if profile.calls < policy.min_calls:
                return
            if policy.min_rate_hz and profile.rate() < policy.min_rate_hz:
                return
            pair, share = _dominant(profile.recent)
            if pair is None or share < policy.stable_fraction:
                return
            req_bytes, rep_bytes = pair
            if rep_bytes is None:
                return  # the dominant shape is not a success reply
            spec = self._build_server(state, proc, req_bytes, rep_bytes)
            if spec is None:
                return
            route = OnlineServerRoute(registry, prog, vers, proc_number)
            route.add_size(req_bytes, spec)
            registry.install_online_route(prog, vers, proc_number, route)
            state.route = route
            state.reviewed_violations = 0
            self._counted("promotions", "server")
            self._swap_count("server", +1)
            return
        route = state.route
        fresh = route.violations - state.reviewed_violations
        if fresh < policy.violation_threshold:
            return
        state.reviewed_violations = route.violations
        sizes = route.take_violation_sizes()
        size, share = _dominant_of_counts(sizes)
        if (size is not None and share >= policy.stable_fraction
                and len(route.sizes) < policy.max_sizes):
            proc = self._match_proc(prog, vers, proc_number)
            rep_bytes = self._reply_bytes_for(profile, size)
            if proc is not None and rep_bytes is not None:
                spec = self._build_server(state, proc, size, rep_bytes)
                if spec is not None:
                    # Widen the guard in place: the new length joins
                    # the route's accepted set atomically.
                    route.add_size(size, spec)
                    self._counted("respecializations", "server")
                    return
            if now < state.cooldown_until:
                return  # the build was refused; keep the route as-is
        # No stable new length (the distribution shifted), or the
        # route is as wide as policy allows: demote to generic.
        registry.remove_online_route(prog, vers, proc_number)
        profiler.reset(key)
        state.route = None
        state.reviewed_violations = 0
        state.cooldown_until = now + policy.cooldown_s
        self._counted("demotions", "server")
        self._swap_count("server", -1)

    # -- client side -----------------------------------------------------

    def _build_client(self, state, codec, n, rep_bytes):
        pipeline = self.pipeline
        if codec._arg_fields and len(codec._arg_fields) == 1:
            arg_lens = {codec._arg_fields[0]: n}
        elif not codec._arg_fields:
            arg_lens = {}
        else:
            self._skip("unsupported", state)
            return None
        res_lens = self._lens_for(codec.ret_struct, rep_bytes, reply_size)
        if res_lens is None:
            self._skip("unsupported", state)
            return None
        return self._build(
            state,
            lambda: pipeline.specialize_client(
                codec.proc_name, arg_lens=arg_lens, res_lens=res_lens,
                bufsize=self.bufsize,
            ),
            (arg_lens, res_lens),
        )

    def _consider_client(self, codec):
        policy = self.policy
        state = self._state("client", id(codec))
        now = self.clock()
        if now < state.cooldown_until:
            return
        if not codec._specs:
            if codec.calls < policy.min_calls:
                return
            if policy.min_rate_hz:
                elapsed = (codec.last_ts or 0) - (codec.first_ts or 0)
                if elapsed <= 0 or codec.calls / elapsed < policy.min_rate_hz:
                    return
            n, share = _dominant(codec.recent)
            if n is None or share < policy.stable_fraction:
                return
            rep_bytes, rep_share = _dominant(codec.reply_recent)
            if rep_bytes is None or rep_share < policy.stable_fraction:
                return
            spec = self._build_client(state, codec, n, rep_bytes)
            if spec is None:
                return
            codec.add_spec(n, spec)
            state.reviewed_violations = 0
            self._counted("promotions", "client")
            self._swap_count("client", +1)
            return
        fresh = codec.violations - state.reviewed_violations
        if fresh < policy.violation_threshold:
            return
        state.reviewed_violations = codec.violations
        lens = codec.take_violation_lens()
        n, share = _dominant_of_counts(lens)
        if (n is not None and share >= policy.stable_fraction
                and len(codec.lens) < policy.max_sizes):
            rep_bytes, rep_share = _dominant(codec.reply_recent)
            if rep_bytes is not None and rep_share >= policy.stable_fraction:
                spec = self._build_client(state, codec, n, rep_bytes)
                if spec is not None:
                    codec.add_spec(n, spec)
                    self._counted("respecializations", "client")
                    return
            if now < state.cooldown_until:
                return
        codec.clear_specs()
        codec.reset_profile()
        state.reviewed_violations = 0
        state.cooldown_until = now + policy.cooldown_s
        self._counted("demotions", "client")
        self._swap_count("client", -1)
