"""Memoized specialization — amortize Tempo to (at most) once per key.

Running the full pipeline — BTA, polyvariant specialization,
post-processing, residual compilation — costs seconds; the paper (and
the online-specialization follow-ups) amortize it by specializing once
per set of invariants and reusing the residual code for every call.
:class:`SpecializationCache` is that amortization for the live stack:

* an in-memory LRU maps a *content key* to the ready-to-install
  specialization object, so repeated ``specialize_client`` /
  ``specialize_server`` calls with identical invariants are O(1);
* an optional on-disk store persists the residual
  :class:`~repro.tempo.driver.SpecializationResult` payloads (pickled)
  under the same key, so a fresh process skips Tempo entirely and only
  re-compiles the residual program.

The content key hashes everything the residual code depends on: the
IDL source, the implementation sources, the specializer options, the
procedure, the binding-time invariants (array lengths, buffer size).
Change any of them — e.g. edit the ``.x`` file — and the key changes,
invalidating stale entries by construction.
"""

import hashlib
import json
import os
import pickle
from collections import OrderedDict

from repro import obs as _obs
from repro.errors import VerificationError

#: bump when the cached payload layout changes.  The format version is
#: both part of the file name (old entries are never looked up again)
#: and stamped *inside* each entry (an entry whose stamp disagrees —
#: e.g. copied or symlinked across cache generations, or written by a
#: future format under a colliding name — is treated as a miss rather
#: than loaded as stale residual code).
CACHE_FORMAT = 2


def content_key(**parts):
    """A stable hex digest of arbitrary JSON-able key parts.

    Non-JSON values are folded in via ``repr`` — good enough for the
    option objects used here, whose reprs expose their settings.
    """
    blob = json.dumps(parts, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SpecializationCache:
    """LRU of built specializations with an optional disk tier.

    ``get(key, build, dump, load, check)``:

    * memory hit — return the cached object;
    * disk hit — unpickle the payload, revive it with ``load``,
      promote to memory;
    * miss — call ``build()``, cache the object, and (when a disk tier
      is configured and ``dump`` is given) persist ``dump(object)``.

    ``check`` is the verification gate: a callable that raises
    :class:`~repro.errors.VerificationError` on an unacceptable value.
    A freshly built value that fails the check is **never installed**
    (the error propagates).  A disk-revived value that fails is treated
    as a cache miss and rebuilt — a tampered or stale payload cannot
    smuggle unverified residual code into the process.  In-memory hits
    are not re-checked: they were checked when they entered.

    ``dump``/``load`` exist because the built objects hold live
    compiled modules and pipeline references that should not be
    pickled; the payload is the picklable residue (the
    SpecializationResults) from which ``load`` rebuilds the object.
    """

    def __init__(self, capacity=64, cache_dir=None):
        self.capacity = capacity
        self.cache_dir = cache_dir
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    # -- the lookup ------------------------------------------------------

    def get(self, key, build, dump=None, load=None, check=None):
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            if _obs.enabled:
                _obs.registry.counter("spec.cache.hits").inc()
            self._entries.move_to_end(key)
            return entry
        if load is not None:
            payload = self._disk_read(key)
            if payload is not None:
                value = load(payload)
                if check is not None:
                    try:
                        check(value)
                    except VerificationError:
                        # A revived payload that fails verification is
                        # a miss: fall through and rebuild from Tempo
                        # (the rebuild is checked below).
                        value = None
                if value is not None:
                    self.disk_hits += 1
                    if _obs.enabled:
                        _obs.registry.counter("spec.cache.disk_hits").inc()
                    self._remember(key, value)
                    return value
        self.misses += 1
        if _obs.enabled:
            _obs.registry.counter("spec.cache.misses").inc()
        value = build()
        if check is not None:
            check(value)
        self._remember(key, value)
        if dump is not None:
            self._disk_write(key, dump(value))
        return value

    def clear(self):
        self._entries.clear()

    def _remember(self, key, value):
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- the disk tier ---------------------------------------------------

    def _path(self, key):
        return os.path.join(self.cache_dir, f"spec-v{CACHE_FORMAT}-{key}.pkl")

    def _disk_read(self, key):
        if not self.cache_dir:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError):
            # Missing, truncated, or stale-format entries are misses.
            return None
        # Schema guard: entries are {"format": CACHE_FORMAT, "payload":
        # ...}; anything else (pre-v2 raw payloads, a mismatched stamp)
        # is a miss — never revive residual code across format changes.
        if (not isinstance(entry, dict)
                or entry.get("format") != CACHE_FORMAT):
            return None
        return entry.get("payload")

    def _disk_write(self, key, payload):
        if not self.cache_dir:
            return
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            path = self._path(key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                pickle.dump({"format": CACHE_FORMAT, "payload": payload},
                            handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache dir never fails the pipeline.
            pass
