"""Static-analysis toolbox for the repro stack.

Two passes share one finding/reporting core
(:mod:`repro.analysis.findings`):

* :mod:`repro.analysis.verify` — the residual-code equivalence
  verifier: symbolic execution of Tempo-generated residual codecs
  against the generic codecs they specialize, gating installation in
  the specialization pipeline;
* :mod:`repro.analysis.lint` — the concurrency/discipline linter: an
  AST rule framework over ``src/repro`` (lock-order cycles, blocking
  calls under locks, unguarded obs on hot paths, overbroad excepts,
  the REPRO_* knob-table contract).

Run both from the command line::

    python -m repro.analysis all --json report.json
"""

from repro.analysis.findings import Finding, Report  # noqa: F401
from repro.analysis.verify import (  # noqa: F401
    ensure_verified,
    verify_client_spec,
    verify_server_residual,
)
