"""Shared finding / reporting core for the ``repro.analysis`` passes.

Both passes — the residual-code equivalence verifier and the
concurrency-discipline linter — report through the same machinery:

* a :class:`Finding` names a rule, a location, and a message;
* findings can be **suppressed** in-source with a pragma comment that
  must carry a reason string::

      except Exception:  # repro: disable=overbroad-except -- last-line worker containment

  A pragma suppresses matching findings on its own line or the line
  directly below it (so a pragma can sit above a multi-line statement).
  ``disable=all`` suppresses every rule.  A pragma without a reason is
  itself a finding (``pragma-no-reason``) — an exception to a
  discipline must say why it is one;
* :class:`Report` renders either human-readable text or machine
  readable JSON and computes the exit code: non-zero iff any
  non-suppressed finding remains.
"""

import io
import json
import re
from dataclasses import asdict, dataclass, field

#: ``# repro: disable=rule-a,rule-b -- reason text``
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*disable=([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(.*?))?\s*$"
)


@dataclass
class Finding:
    """One problem (or suppressed would-be problem) at a location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    suppressed: bool = False
    suppress_reason: str = ""
    context: dict = field(default_factory=dict)

    def location(self):
        return f"{self.path}:{self.line}"

    def render(self):
        mark = " [suppressed: %s]" % self.suppress_reason \
            if self.suppressed else ""
        return f"{self.location()}: {self.rule}: {self.message}{mark}"


@dataclass
class Pragma:
    """A parsed suppression pragma."""

    path: str
    line: int
    rules: tuple
    reason: str

    def matches(self, finding):
        if finding.path != self.path:
            return False
        if finding.line not in (self.line, self.line + 1):
            return False
        return "all" in self.rules or finding.rule in self.rules


def scan_pragmas(path, source):
    """All suppression pragmas in ``source`` (one file's text)."""
    pragmas = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            r.strip() for r in match.group(1).split(",") if r.strip()
        )
        reason = (match.group(2) or "").strip()
        pragmas.append(Pragma(path, lineno, rules, reason))
    return pragmas


def apply_pragmas(findings, pragmas):
    """Mark suppressed findings; emit findings for reasonless pragmas.

    Returns the combined finding list (suppressions applied in place,
    plus one ``pragma-no-reason`` finding per pragma lacking a reason).
    """
    out = list(findings)
    for finding in findings:
        for pragma in pragmas:
            if pragma.matches(finding) and pragma.reason:
                finding.suppressed = True
                finding.suppress_reason = pragma.reason
                break
    for pragma in pragmas:
        if not pragma.reason:
            out.append(Finding(
                rule="pragma-no-reason",
                path=pragma.path,
                line=pragma.line,
                message=(
                    "suppression pragma must carry a reason:"
                    " '# repro: disable=<rule> -- <why>'"
                ),
            ))
    return out


class Report:
    """Aggregates findings from one or more passes and renders them."""

    def __init__(self):
        self.findings = []
        self.passes = {}

    def extend(self, pass_name, findings, stats=None):
        self.findings.extend(findings)
        entry = self.passes.setdefault(
            pass_name, {"findings": 0, "suppressed": 0}
        )
        entry["findings"] += sum(1 for f in findings if not f.suppressed)
        entry["suppressed"] += sum(1 for f in findings if f.suppressed)
        if stats:
            entry.update(stats)

    @property
    def active(self):
        return [f for f in self.findings if not f.suppressed]

    @property
    def exit_code(self):
        return 1 if self.active else 0

    def to_json(self):
        return {
            "passes": self.passes,
            "counts": {
                "active": len(self.active),
                "suppressed": len(self.findings) - len(self.active),
            },
            "findings": [asdict(f) for f in self.findings],
        }

    def render_text(self, verbose=False):
        out = io.StringIO()
        for finding in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule)
        ):
            if finding.suppressed and not verbose:
                continue
            out.write(finding.render() + "\n")
        active = len(self.active)
        suppressed = len(self.findings) - active
        for name, stats in self.passes.items():
            detail = ", ".join(
                f"{k}={v}" for k, v in stats.items() if k not in (
                    "findings", "suppressed")
            )
            out.write(f"[{name}] {stats['findings']} finding(s),"
                      f" {stats['suppressed']} suppressed"
                      + (f" ({detail})" if detail else "") + "\n")
        out.write(
            f"{active} active finding(s), {suppressed} suppressed\n"
            if active else
            f"OK — no active findings ({suppressed} suppressed)\n"
        )
        return out.getvalue()

    def write_json(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
