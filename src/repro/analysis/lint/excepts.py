"""``bare-except`` / ``overbroad-except``: no silent swallowing.

A bare ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit`` —
in a server loop that turns Ctrl-C into an infinite retry.  It is
flagged everywhere under ``src/repro``.

``except Exception`` (or ``BaseException``) is flagged only in the
transports and the specialization engine, where a worker thread that
swallows everything hides real faults behind a generic fallback.  A
handler that *re-raises* (contains a ``raise``) is fine — it narrows
or annotates rather than swallows.  Intentional catch-alls (e.g. a
dispatcher that must convert any servant crash into a SYSTEM_ERR
reply) carry a ``# repro: disable=overbroad-except -- reason`` pragma.
"""

import ast as pyast

from repro.analysis.findings import Finding

BROAD_NAMES = {"Exception", "BaseException"}
BROAD_SCOPE = ("repro/rpc/", "repro/specialized/")


def _broad_name(type_node):
    """The broad exception name caught by *type_node*, or None."""
    nodes = (type_node.elts if isinstance(type_node, pyast.Tuple)
             else [type_node])
    for node in nodes:
        if isinstance(node, pyast.Name) and node.id in BROAD_NAMES:
            return node.id
    return None


def check(modules):
    findings = []
    for module in modules:
        in_scope = module.package_rel.startswith(BROAD_SCOPE)
        for node in pyast.walk(module.tree):
            if not isinstance(node, pyast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(Finding(
                    rule="bare-except",
                    path=module.rel,
                    line=node.lineno,
                    message="bare except: catches KeyboardInterrupt and "
                            "SystemExit; name the exceptions",
                ))
                continue
            if not in_scope:
                continue
            name = _broad_name(node.type)
            if name is None:
                continue
            reraises = any(isinstance(sub, pyast.Raise)
                           for sub in pyast.walk(node))
            if reraises:
                continue
            findings.append(Finding(
                rule="overbroad-except",
                path=module.rel,
                line=node.lineno,
                message=(f"except {name} in a transport/engine module "
                         f"swallows without re-raising; narrow it or "
                         f"add a reasoned pragma"),
            ))
    return findings
