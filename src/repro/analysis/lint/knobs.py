"""``knob-contract``: every ``REPRO_*`` env knob documented, and only
real knobs documented.

Migrated from ``tools/check_links.py`` (which now checks links only).
Three directions, so a knob can neither ship undocumented nor outlive
its removal in the docs:

* every ``REPRO_*`` token mentioned in any markdown doc must have a
  table row in docs/OPERATIONS.md;
* every table row must correspond to a knob something under
  ``src/``, ``tools/``, ``tests/`` or ``.github/`` actually reads;
* every knob the source reads must have a table row.
"""

import re
from pathlib import Path

from repro.analysis.findings import Finding

#: complete knob tokens only — a prose prefix like ``REPRO_CHAOS_*``
#: (trailing underscore) names a family, not a knob
KNOB_RE = re.compile(r"\bREPRO_[A-Z0-9_]*[A-Z0-9]\b")
#: a documented knob: an OPERATIONS.md table row whose first cell is
#: the backticked variable name
KNOB_ROW_RE = re.compile(r"^\|\s*`(REPRO_[A-Z0-9_]+)`")
#: where knobs are read/set by code
KNOB_SOURCE_DIRS = ("src", "tools", ".github", "tests")
KNOB_SOURCE_SUFFIXES = {".py", ".yml", ".yaml", ".sh"}
DOC_FILES = ("README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md")


def _doc_paths(root):
    paths = [root / name for name in DOC_FILES if (root / name).exists()]
    paths.extend(sorted((root / "docs").glob("*.md")))
    return paths


def _first_mention(path, knob):
    """1-indexed line of the first occurrence of *knob* in *path*."""
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8", errors="ignore").splitlines(),
            start=1):
        if re.search(rf"\b{re.escape(knob)}\b", line):
            return lineno
    return 0


def source_knobs(root):
    """``knob -> (rel path, line)`` for every REPRO_* token read by code."""
    knobs = {}
    for name in KNOB_SOURCE_DIRS:
        base = root / name
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in KNOB_SOURCE_SUFFIXES or not path.is_file():
                continue
            text = path.read_text(encoding="utf-8", errors="ignore")
            for lineno, line in enumerate(text.splitlines(), start=1):
                for knob in KNOB_RE.findall(line):
                    knobs.setdefault(
                        knob, (path.relative_to(root).as_posix(), lineno))
    return knobs


def check(modules, repo_root):
    root = Path(repo_root)
    findings = []
    operations = root / "docs" / "OPERATIONS.md"
    if not operations.exists():
        return [Finding(rule="knob-contract", path="docs/OPERATIONS.md",
                        line=0, message="knob table file does not exist")]
    rows = {}
    for lineno, line in enumerate(
            operations.read_text(encoding="utf-8").splitlines(), start=1):
        match = KNOB_ROW_RE.match(line)
        if match:
            rows.setdefault(match.group(1), lineno)
    mentioned = {}
    for path in _doc_paths(root):
        rel = path.relative_to(root).as_posix()
        for knob in KNOB_RE.findall(path.read_text(encoding="utf-8")):
            mentioned.setdefault(knob, (rel, _first_mention(path, knob)))
    in_source = source_knobs(root)

    for knob in sorted(set(mentioned) - set(rows)):
        rel, line = mentioned[knob]
        findings.append(Finding(
            rule="knob-contract", path=rel, line=line,
            message=(f"{knob} is mentioned here but has no table row in"
                     " docs/OPERATIONS.md"),
            context={"knob": knob, "direction": "undocumented-mention"}))
    for knob in sorted(set(rows) - set(in_source)):
        findings.append(Finding(
            rule="knob-contract", path="docs/OPERATIONS.md",
            line=rows[knob],
            message=(f"{knob} is documented but nothing under"
                     " src/tools/tests/.github reads it"),
            context={"knob": knob, "direction": "stale-row"}))
    for knob in sorted(set(in_source) - set(rows)):
        rel, line = in_source[knob]
        findings.append(Finding(
            rule="knob-contract", path=rel, line=line,
            message=(f"{knob} is read here but has no table row in"
                     " docs/OPERATIONS.md"),
            context={"knob": knob, "direction": "undocumented-read"}))
    return findings
