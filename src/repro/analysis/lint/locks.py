"""Lock-acquisition graph: ordering cycles and blocking calls under lock.

The graph is built statically from the Python AST:

* a **lock** is any ``self.x = threading.Lock()`` / ``RLock()`` /
  ``Condition()`` / ``Semaphore()`` attribute assignment (identified
  class-level, ``ClassName.attr``, since every instance shares the
  discipline) or a module-level ``x = threading.Lock()``;
* ``with self.x:`` nesting adds an edge *outer → inner*;
* a call made while holding a lock inherits the callee's (transitive)
  acquisitions as edges — computed as a fixpoint over the intra-package
  call graph, where calls resolve by name (``self.m()`` → same class,
  ``self.attr.m()`` → the attribute's constructor-assigned class,
  ``f()`` → same module).

A cycle in the resulting graph is a potential ABBA deadlock
(``lock-order-cycle``).  Separately, any socket send/recv/accept/
connect, ``time.sleep``, ``os.fsync``, or ``subprocess.*`` call made
while a lock is held is reported as ``blocking-under-lock``
(``Condition.wait`` is exempt: it releases the lock while waiting).

Name-based call resolution is a heuristic: calls through locals,
callbacks, or threads are invisible, so a clean report is *evidence*
of discipline, not proof.  Findings, on the other hand, point at real
code paths and deserve a fix or a reasoned pragma.
"""

import ast as pyast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.analysis.findings import Finding

LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                  "BoundedSemaphore"}

#: methods that park the calling thread on the network or the clock.
BLOCKING_ATTRS = {"send", "sendall", "sendto", "recv", "recvfrom",
                  "recv_into", "accept", "connect"}


@dataclass
class ClassInfo:
    name: str
    module: object
    methods: dict = field(default_factory=dict)       # name -> FunctionDef
    lock_attrs: dict = field(default_factory=dict)    # attr -> lineno
    attr_classes: dict = field(default_factory=dict)  # attr -> class name


@dataclass
class FuncInfo:
    fid: tuple            # (ClassName, meth) or (module rel, func)
    module: object
    cls: object           # ClassInfo or None
    node: object
    acquisitions: list = field(default_factory=list)  # (held, lock, line)
    calls: list = field(default_factory=list)         # (held, callee fid|None, node)
    blocking: list = field(default_factory=list)      # (held, label, line)
    direct_locks: set = field(default_factory=set)


def _module_base(module):
    return PurePosixPath(module.rel).stem


def _is_factory(call):
    func = call.func
    name = None
    if isinstance(func, pyast.Attribute):
        name = func.attr
    elif isinstance(func, pyast.Name):
        name = func.id
    return name in LOCK_FACTORIES


def _collect_classes(modules):
    classes = {}
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, pyast.ClassDef):
                info = ClassInfo(name=node.name, module=module)
                for item in node.body:
                    if isinstance(item, (pyast.FunctionDef,
                                         pyast.AsyncFunctionDef)):
                        info.methods[item.name] = item
                classes[node.name] = info
    # second pass: lock attributes and attribute-class bindings (needs
    # the full class registry to resolve constructor types).
    for info in classes.values():
        for meth in info.methods.values():
            for stmt in pyast.walk(meth):
                if not isinstance(stmt, pyast.Assign):
                    continue
                if not isinstance(stmt.value, pyast.Call):
                    continue
                for target in stmt.targets:
                    if (isinstance(target, pyast.Attribute)
                            and isinstance(target.value, pyast.Name)
                            and target.value.id == "self"):
                        if _is_factory(stmt.value):
                            info.lock_attrs.setdefault(target.attr,
                                                       stmt.lineno)
                        else:
                            ctor = stmt.value.func
                            cname = (ctor.attr if isinstance(
                                ctor, pyast.Attribute) else getattr(
                                    ctor, "id", None))
                            if cname in classes:
                                info.attr_classes[target.attr] = cname
    return classes


def _collect_module_locks(modules):
    locks = {}
    for module in modules:
        names = {}
        for node in module.tree.body:
            if (isinstance(node, pyast.Assign)
                    and isinstance(node.value, pyast.Call)
                    and _is_factory(node.value)):
                for target in node.targets:
                    if isinstance(target, pyast.Name):
                        names[target.id] = node.lineno
        if names:
            locks[module.rel] = names
    return locks


class _Walker:
    """One pass over a function body, tracking the held-lock stack."""

    def __init__(self, func, classes, module_locks):
        self.func = func
        self.classes = classes
        self.module_locks = module_locks

    def resolve_lock(self, expr):
        cls = self.func.cls
        if isinstance(expr, pyast.Attribute):
            base = expr.value
            if isinstance(base, pyast.Name) and base.id == "self" and cls:
                if expr.attr in cls.lock_attrs:
                    return f"{cls.name}.{expr.attr}"
            if (isinstance(base, pyast.Attribute)
                    and isinstance(base.value, pyast.Name)
                    and base.value.id == "self" and cls):
                cname = cls.attr_classes.get(base.attr)
                if cname and expr.attr in self.classes[cname].lock_attrs:
                    return f"{cname}.{expr.attr}"
        if isinstance(expr, pyast.Name):
            names = self.module_locks.get(self.func.module.rel, {})
            if expr.id in names:
                return f"{_module_base(self.func.module)}.{expr.id}"
        return None

    def resolve_call(self, func_expr):
        cls = self.func.cls
        if isinstance(func_expr, pyast.Attribute):
            base = func_expr.value
            if isinstance(base, pyast.Name) and base.id == "self" and cls:
                if func_expr.attr in cls.methods:
                    return (cls.name, func_expr.attr)
            if (isinstance(base, pyast.Attribute)
                    and isinstance(base.value, pyast.Name)
                    and base.value.id == "self" and cls):
                cname = cls.attr_classes.get(base.attr)
                if cname and func_expr.attr in self.classes[cname].methods:
                    return (cname, func_expr.attr)
        if isinstance(func_expr, pyast.Name):
            # same-module function (methods never resolve by bare name).
            fid = (self.func.module.rel, func_expr.id)
            return fid
        return None

    def blocking_label(self, call):
        func = call.func
        if isinstance(func, pyast.Attribute):
            base = func.value
            if isinstance(base, pyast.Name):
                if base.id == "time" and func.attr == "sleep":
                    return "time.sleep"
                if base.id == "os" and func.attr == "fsync":
                    return "os.fsync"
                if base.id == "subprocess":
                    return f"subprocess.{func.attr}"
            if func.attr in BLOCKING_ATTRS:
                return f".{func.attr}"
        return None

    def walk(self):
        for stmt in self.func.node.body:
            self._visit(stmt, ())

    def _visit(self, node, held):
        if isinstance(node, (pyast.With, pyast.AsyncWith)):
            pushed = []
            for item in node.items:
                self._visit(item.context_expr, held)
                lock = self.resolve_lock(item.context_expr)
                if lock is not None:
                    self.func.acquisitions.append(
                        (held, lock, item.context_expr.lineno))
                    self.func.direct_locks.add(lock)
                    pushed.append(lock)
            inner = held + tuple(pushed)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef,
                             pyast.Lambda, pyast.ClassDef)):
            # nested definitions run later, under whatever locks their
            # *caller* holds — not ours.  Analyzed on their own pass.
            return
        if isinstance(node, pyast.Call):
            lock = self.resolve_lock(getattr(node.func, "value", None)) \
                if (isinstance(node.func, pyast.Attribute)
                    and node.func.attr == "acquire") else None
            if lock is not None:
                self.func.acquisitions.append((held, lock, node.lineno))
                self.func.direct_locks.add(lock)
            callee = self.resolve_call(node.func)
            self.func.calls.append((held, callee, node))
            if held:
                label = self.blocking_label(node)
                # Condition.wait releases the lock while parked.
                if label and node.func.attr != "wait":
                    self.func.blocking.append((held, label, node.lineno))
        for child in pyast.iter_child_nodes(node):
            self._visit(child, held)


def _collect_functions(modules, classes, module_locks):
    funcs = {}
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
                fid = (module.rel, node.name)
                funcs[fid] = FuncInfo(fid=fid, module=module, cls=None,
                                      node=node)
    for info in classes.values():
        for name, node in info.methods.items():
            fid = (info.name, name)
            funcs[fid] = FuncInfo(fid=fid, module=info.module, cls=info,
                                  node=node)
    for func in funcs.values():
        _Walker(func, classes, module_locks).walk()
    return funcs


def _acquire_closure(funcs):
    closure = {fid: set(f.direct_locks) for fid, f in funcs.items()}
    changed = True
    while changed:
        changed = False
        for fid, func in funcs.items():
            acc = closure[fid]
            before = len(acc)
            for _held, callee, _node in func.calls:
                if callee in closure:
                    acc |= closure[callee]
            if len(acc) != before:
                changed = True
    return closure


def _find_cycles(edges):
    """Return one representative cycle (node list) per strongly
    connected component with more than one lock."""
    adj = {}
    for src, dst in edges:
        adj.setdefault(src, set()).add(dst)
        adj.setdefault(dst, set())
    seen_components = []
    cycles = []
    for start in sorted(adj):
        stack = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adj.get(node, ())):
                if nxt == start and len(path) > 1:
                    component = frozenset(path)
                    if component not in seen_components:
                        seen_components.append(component)
                        cycles.append(path + [start])
                elif nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, path + [nxt]))
    return cycles


def check(modules):
    classes = _collect_classes(modules)
    module_locks = _collect_module_locks(modules)
    funcs = _collect_functions(modules, classes, module_locks)
    closure = _acquire_closure(funcs)

    findings = []
    edges = {}  # (src, dst) -> (rel, line, note)
    for func in funcs.values():
        for held, lock, line in func.acquisitions:
            for outer in held:
                if outer != lock:
                    edges.setdefault((outer, lock),
                                     (func.module.rel, line, ""))
        for held, callee, node in func.calls:
            if not held or callee not in closure:
                continue
            for inner in closure[callee]:
                for outer in held:
                    if outer != inner:
                        note = f" via call to {callee[-1]}()"
                        edges.setdefault((outer, inner),
                                         (func.module.rel, node.lineno,
                                          note))
        for held, label, line in func.blocking:
            findings.append(Finding(
                rule="blocking-under-lock",
                path=func.module.rel,
                line=line,
                message=(f"{label} called while holding "
                         f"{', '.join(held)}"),
                context={"locks": list(held), "call": label},
            ))

    for cycle in _find_cycles(set(edges)):
        first = edges[(cycle[0], cycle[1])]
        findings.append(Finding(
            rule="lock-order-cycle",
            path=first[0],
            line=first[1],
            message=("lock-order cycle: " + " -> ".join(cycle)
                     + first[2]),
            context={"cycle": cycle},
        ))
    return findings
