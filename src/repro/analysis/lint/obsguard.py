"""``obs-unguarded``: hot-path observability must be gated on ``enabled``.

The observability registry is disabled by default and the hot paths
(the RPC transports and the specialization engine) rely on the
``if _obs.enabled:`` gate to make instrumentation free when off —
an unguarded ``_obs.registry.counter(...).inc()`` pays dict lookups
and label formatting on every call even with obs disabled.

A call is *guarded* when it is (transitively) dominated by an
``enabled`` test: an ``if _obs.enabled:`` block, an
``_obs.enabled and ...`` conjunction, a guarded ternary, or an early
``if not _obs.enabled: return``.  Private helper functions whose every
intra-package call site is itself guarded count as guarded too — the
gate is hoisted to the caller (e.g. a ``_count_reply`` helper invoked
only from inside ``if _obs.enabled:`` blocks).
"""

import ast as pyast

from repro.analysis.findings import Finding

#: only these subtrees are per-call hot paths worth the gate.
HOT_PREFIXES = ("repro/rpc/", "repro/specialized/", "repro/xdr/")


def _alias(module):
    for node in module.tree.body:
        if isinstance(node, pyast.ImportFrom) and node.module == "repro":
            for name in node.names:
                if name.name == "obs":
                    return name.asname or "obs"
        if isinstance(node, pyast.Import):
            for name in node.names:
                if name.name == "repro.obs":
                    return name.asname or None
    return None


def _chain_root(expr):
    while isinstance(expr, pyast.Attribute):
        expr = expr.value
    return expr.id if isinstance(expr, pyast.Name) else None


def _is_enabled_test(expr, alias):
    """True when *expr* contains an ``<alias>.enabled`` access."""
    for node in pyast.walk(expr):
        if (isinstance(node, pyast.Attribute) and node.attr == "enabled"
                and _chain_root(node) == alias):
            return True
    return False


def _terminates(body):
    return bool(body) and isinstance(body[-1], (pyast.Return, pyast.Raise,
                                                pyast.Continue, pyast.Break))


class _FuncScan:
    """Collect obs calls (with guardedness) and all call sites."""

    def __init__(self, alias):
        self.alias = alias
        self.obs_calls = []    # (lineno, guarded)
        self.call_sites = []   # (simple callee name, guarded, lineno)

    def block(self, stmts, guarded):
        g = guarded
        for stmt in stmts:
            self.stmt(stmt, g)
            # `if not _obs.enabled: return` guards the rest of the block.
            if (isinstance(stmt, pyast.If) and not stmt.orelse
                    and isinstance(stmt.test, pyast.UnaryOp)
                    and isinstance(stmt.test.op, pyast.Not)
                    and _is_enabled_test(stmt.test.operand, self.alias)
                    and _terminates(stmt.body)):
                g = True

    def stmt(self, node, guarded):
        if isinstance(node, pyast.If):
            self.expr(node.test, guarded)
            body_guard = guarded or _is_enabled_test(node.test, self.alias)
            self.block(node.body, body_guard)
            self.block(node.orelse, guarded)
            return
        if isinstance(node, (pyast.For, pyast.AsyncFor)):
            self.expr(node.iter, guarded)
            self.block(node.body, guarded)
            self.block(node.orelse, guarded)
            return
        if isinstance(node, pyast.While):
            self.expr(node.test, guarded)
            self.block(node.body, guarded)
            self.block(node.orelse, guarded)
            return
        if isinstance(node, (pyast.With, pyast.AsyncWith)):
            for item in node.items:
                self.expr(item.context_expr, guarded)
            self.block(node.body, guarded)
            return
        if isinstance(node, pyast.Try):
            self.block(node.body, guarded)
            for handler in node.handlers:
                self.block(handler.body, guarded)
            self.block(node.orelse, guarded)
            self.block(node.finalbody, guarded)
            return
        if isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef,
                             pyast.ClassDef)):
            return  # nested scopes are scanned on their own
        for child in pyast.iter_child_nodes(node):
            if isinstance(child, pyast.expr):
                self.expr(child, guarded)
            elif isinstance(child, pyast.stmt):
                self.stmt(child, guarded)

    def expr(self, node, guarded):
        if isinstance(node, pyast.BoolOp) and isinstance(node.op, pyast.And):
            g = guarded
            for value in node.values:
                self.expr(value, g)
                if _is_enabled_test(value, self.alias):
                    g = True
            return
        if isinstance(node, pyast.IfExp):
            self.expr(node.test, guarded)
            body_guard = guarded or _is_enabled_test(node.test, self.alias)
            self.expr(node.body, body_guard)
            self.expr(node.orelse, guarded)
            return
        if isinstance(node, pyast.Call):
            if _chain_root(node.func) == self.alias:
                self.obs_calls.append((node.lineno, guarded))
            name = None
            if isinstance(node.func, pyast.Name):
                name = node.func.id
            elif isinstance(node.func, pyast.Attribute):
                name = node.func.attr
            if name:
                self.call_sites.append((name, node.lineno, guarded))
        if isinstance(node, pyast.Lambda):
            self.expr(node.body, guarded)
            return
        for child in pyast.iter_child_nodes(node):
            if isinstance(child, (pyast.expr, pyast.keyword)):
                self.expr(child.value if isinstance(child, pyast.keyword)
                          else child, guarded)


def _functions(tree):
    """Yield every (async) function definition, including methods."""
    for node in pyast.walk(tree):
        if isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
            yield node


def check(modules):
    hot = [m for m in modules
           if m.package_rel.startswith(HOT_PREFIXES)]
    # func name -> list of (module, lineno, guarded) unguarded obs calls
    offenders = {}
    # callee simple name -> list of guarded flags across all hot modules
    sites = {}
    for module in hot:
        alias = _alias(module)
        if alias is None:
            continue
        for func in _functions(module.tree):
            scan = _FuncScan(alias)
            scan.block(func.body, False)
            for name, _line, guarded in scan.call_sites:
                sites.setdefault(name, []).append(guarded)
            for lineno, guarded in scan.obs_calls:
                if not guarded:
                    offenders.setdefault(func.name, []).append(
                        (module, lineno))
    findings = []
    for name, calls in offenders.items():
        callers = sites.get(name, [])
        if callers and all(callers):
            # every known call site is itself inside an enabled guard:
            # the gate is hoisted to the caller.
            continue
        for module, lineno in calls:
            findings.append(Finding(
                rule="obs-unguarded",
                path=module.rel,
                line=lineno,
                message=(f"obs call in {name}() is not gated on "
                         f"obs.enabled (and not every call site is)"),
                context={"function": name},
            ))
    return findings
