"""Concurrency/discipline linter over the ``repro`` source tree.

The verifier (:mod:`repro.analysis.verify`) proves residual *output*
correct; this package checks the *process-level* disciplines that the
concurrent stack depends on and that no unit test exercises reliably:

* ``lock-order-cycle`` — the lock-acquisition graph (built from
  ``with self._lock:`` nesting plus calls made while a lock is held)
  must be acyclic, or two threads can deadlock;
* ``blocking-under-lock`` — no socket send/recv/accept/connect,
  ``time.sleep``, ``os.fsync`` or subprocess call while holding a
  lock: one slow peer would stall every thread behind the lock;
* ``obs-unguarded`` — hot-path observability calls must be gated on
  ``_obs.enabled`` so the disabled-by-default registry costs nothing;
* ``bare-except`` / ``overbroad-except`` — transports may not swallow
  arbitrary exceptions (``KeyboardInterrupt`` included) silently;
* ``knob-contract`` — every ``REPRO_*`` environment knob read by the
  source must be documented in docs/OPERATIONS.md and vice versa
  (absorbed from ``tools/check_links.py``).

Findings are suppressed per-line with
``# repro: disable=<rule> -- <reason>`` pragmas
(:mod:`repro.analysis.findings`).
"""

import ast as pyast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import apply_pragmas, scan_pragmas


@dataclass
class Module:
    """A parsed source module plus everything the rules need."""

    path: Path          # absolute path on disk
    rel: str            # repo-relative posix path ("src/repro/rpc/mux.py")
    source: str
    tree: pyast.Module
    pragmas: list = field(default_factory=list)

    @property
    def package_rel(self):
        """Path relative to ``src/`` ("repro/rpc/mux.py")."""
        prefix = "src/"
        return self.rel[len(prefix):] if self.rel.startswith(prefix) else self.rel


def load_modules(repo_root, subdir="src/repro"):
    """Parse every ``.py`` file under *subdir* into :class:`Module`."""
    root = Path(repo_root)
    modules = []
    for path in sorted((root / subdir).rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        tree = pyast.parse(source, filename=rel)
        modules.append(Module(path=path, rel=rel, source=source, tree=tree,
                              pragmas=scan_pragmas(rel, source)))
    return modules


def run_lint(repo_root, subdir="src/repro"):
    """Run every rule; return ``(findings, stats)`` after pragmas."""
    from repro.analysis.lint import excepts, knobs, locks, obsguard

    modules = load_modules(repo_root, subdir)
    findings = []
    findings += locks.check(modules)
    findings += obsguard.check(modules)
    findings += excepts.check(modules)
    findings += knobs.check(modules, repo_root)
    pragmas = [p for m in modules for p in m.pragmas]
    findings = apply_pragmas(findings, pragmas)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    stats = {
        "modules": len(modules),
        "pragmas": len(pragmas),
        "active": sum(1 for f in findings if not f.suppressed),
    }
    return findings, stats
