"""Residual-code equivalence verifier (analysis pass 1).

The specialization pipeline's whole bet — the paper's bet — is that
the Tempo-generated residual codec is semantically equivalent to the
generic Sun RPC stub it replaces.  Since PR 8 residual codecs are
auto-promoted from live traffic, so this module provides the
independent check: before a specialization installs, its residual MiniC
program is **symbolically executed** against the generic MiniC program
it was specialized from, over the codec's declared size-guard domain.

What is proved (per codec, on the declared domain):

* **byte equivalence** — the residual marshaler emits exactly the
  bytes the generic marshaler emits, for *every* argument assignment
  with the assumed array lengths (argument words are free 32-bit
  symbols); the residual receive/dispatch path decodes to exactly the
  generic result;
* **bounds safety** — every buffer and array access in the residual
  run is in bounds (the interpreter's bounds checks run during the
  symbolic execution), and every byte of the produced message was
  actually written (no uninitialized-byte leaks);
* **guard-domain conformance** — the sizes the specialization declares
  (`expected_request`/`expected_reply`, the ``expected_inlen`` rewrite)
  equal the wire arithmetic recomputed from the IDL and the assumed
  lengths, so a guard cannot silently widen past the profiled domain;
* **unroll-cap conformance** — no assumed length exceeds the unroll
  cap when one is in force;
* **hostile-input behavior** — concrete probes (wrong message type,
  stale xid, corrupted or out-of-range length words) confirm the
  residual path never *accepts* an input the generic path rejects.
  The residual may always **decline** (return 0); the runtime then
  falls back to the generic path, so declining is safe — accepting
  with different bytes is the bug class this pass exists to catch.

Soundness caveats (also in docs/ANALYSIS.md): equality of symbolic
values is decided by structural identity, so a residual program that
is equivalent but *algebraically rearranged* is reported as
undecidable — the verifier fails closed, never open.  Data-dependent
control flow in a residual codec is likewise reported, not guessed at.
"""

import itertools

from repro.analysis.findings import Finding
from repro.analysis.symexec import (
    SymbolicInterpreter,
    Undecidable,
    is_sym,
    render,
    sym,
    values_equal,
)
from repro.errors import InterpError, ReproError, VerificationError
from repro.minic import types as ct
from repro.minic import values as rv
from repro.rpcgen import idl_ast as idl
from repro.specialized.sizes import (
    CALL_HEADER_BYTES,
    REPLY_HEADER_BYTES,
    reply_size,
    request_size,
)

#: deterministic filler for concrete probe payload words.
_PROBE_FILL = 0x1357


def _finding(rule, entry, message, **context):
    return Finding(
        rule=rule,
        path=f"residual:{entry}",
        line=0,
        message=message,
        context=context,
    )


def ensure_verified(findings, what):
    """Raise :class:`VerificationError` when any finding is present."""
    if findings:
        detail = "; ".join(f"[{f.rule}] {f.message}" for f in findings[:3])
        more = f" (+{len(findings) - 3} more)" if len(findings) > 3 else ""
        raise VerificationError(
            f"residual verification failed for {what}: {detail}{more}"
        )


# -- symbolic message templates ------------------------------------------


def _encode_struct_words(interface, struct, lens, prefix, words):
    """Append the XDR encoding of ``struct`` (one entry per 4-byte
    word, symbolic for data, concrete for length words) to ``words``.
    Mirrors :func:`repro.specialized.sizes.struct_encoded_size`."""
    for field in struct.fields:
        resolved = interface.resolve(field.type)
        name = f"{prefix}.{field.name}"
        if isinstance(resolved, idl.Prim):
            words.append(sym(name))
        elif isinstance(resolved, idl.FixedArray):
            words.extend(sym(f"{name}[{i}]") for i in range(resolved.size))
        elif isinstance(resolved, idl.VarArray):
            count = lens[field.name]
            words.append(count)
            words.extend(sym(f"{name}[{i}]") for i in range(count))
        elif isinstance(resolved, idl.Named):
            nested = interface.struct(resolved.name)
            _encode_struct_words(interface, nested, {}, name, words)
        else:
            raise ReproError(f"unsized type in verifier: {resolved!r}")
    return words


def _var_len_word_offsets(interface, struct, lens, base):
    """Byte offsets (and bounds) of every bounded-array length word in
    the encoded form of ``struct`` — the corruption targets for the
    hostile-input probes.  Returns [(field_name, offset, bound, count)].
    """
    out = []
    offset = base
    for field in struct.fields:
        resolved = interface.resolve(field.type)
        if isinstance(resolved, idl.Prim):
            offset += 4
        elif isinstance(resolved, idl.FixedArray):
            offset += 4 * resolved.size
        elif isinstance(resolved, idl.VarArray):
            out.append((field.name, offset, resolved.bound,
                        lens[field.name]))
            offset += 4 + 4 * lens[field.name]
        elif isinstance(resolved, idl.Named):
            nested = interface.struct(resolved.name)
            nested_words = _encode_struct_words(interface, nested, {},
                                                "x", [])
            offset += 4 * len(nested_words)
    return out


def _concrete_words(words):
    """Replace the symbolic words of a template with deterministic
    concrete values, keeping concrete words (status, lengths) as-is."""
    counter = itertools.count(1)
    return [
        (w if not is_sym(w) else (_PROBE_FILL + next(counter)) & 0xFFFFFFFF)
        for w in words
    ]


def _words_to_buffer(interp, words, name):
    buffer = interp.make_sym_buffer(4 * len(words), name=name)
    for index, word in enumerate(words):
        buffer.store_u32(4 * index, word)
    return buffer


# -- symbolic struct instances -------------------------------------------


def _fill_symbolic(struct_val, var_fields, lens, prefix):
    """Make every data field of a MiniC struct instance a fresh symbol;
    bounded-array length fields get their assumed (concrete) length."""
    for fname, ftype in struct_val.stype.fields:
        cell = struct_val.field(fname)
        name = f"{prefix}.{fname}"
        if isinstance(ftype, ct.ArrayType):
            array = cell.value
            for index in range(len(array)):
                array.elem(index).value = sym(f"{name}[{index}]")
        elif isinstance(ftype, ct.StructType):
            _fill_symbolic(cell.value, (), {}, name)
        elif fname.endswith("_len") and fname[:-4] in var_fields:
            cell.value = lens[fname[:-4]]
        else:
            cell.value = sym(name)


def _struct_mismatches(entry, prefix, left, right, findings):
    """Structural comparison of two decoded struct instances."""
    for fname, ftype in left.stype.fields:
        name = f"{prefix}.{fname}"
        cell_l, cell_r = left.field(fname), right.field(fname)
        if isinstance(ftype, ct.StructType):
            _struct_mismatches(entry, name, cell_l.value, cell_r.value,
                               findings)
        elif isinstance(ftype, ct.ArrayType):
            arr_l, arr_r = cell_l.value, cell_r.value
            for index in range(len(arr_l)):
                vl = arr_l.elem(index).value
                vr = arr_r.elem(index).value
                if not values_equal(vl, vr):
                    findings.append(_finding(
                        "residual-divergence", entry,
                        f"decoded {name}[{index}] diverges:"
                        f" generic={render(vl)} residual={render(vr)}",
                    ))
                    return
        elif not values_equal(cell_l.value, cell_r.value):
            findings.append(_finding(
                "residual-divergence", entry,
                f"decoded {name} diverges:"
                f" generic={render(cell_l.value)}"
                f" residual={render(cell_r.value)}",
            ))
            return


def _compare_buffers(entry, what, generic_buf, residual_buf, length,
                     findings):
    generic_bytes = generic_buf.sym_bytes()
    residual_bytes = residual_buf.sym_bytes()
    if not residual_buf.covered(length):
        hole = next(
            i for i in range(length) if not residual_buf.written[i]
        )
        findings.append(_finding(
            "residual-uninitialized", entry,
            f"{what}: residual output byte {hole} of {length} was never"
            " written",
        ))
        return
    for index in range(length):
        if not values_equal(generic_bytes[index], residual_bytes[index]):
            findings.append(_finding(
                "residual-divergence", entry,
                f"{what}: output byte {index} diverges:"
                f" generic={render(generic_bytes[index])}"
                f" residual={render(residual_bytes[index])}",
            ))
            return


# -- running one entry ----------------------------------------------------


class _Run:
    """Outcome of one symbolic/concrete execution of a codec entry."""

    __slots__ = ("status", "value", "error", "out", "resp")

    def __init__(self, status, value=None, error=None, out=None, resp=None):
        self.status = status  # "ok" | "error" | "undecidable"
        self.value = value
        self.error = error
        self.out = out
        self.resp = resp


def _generic_params(program, entry):
    return [param.name for param in program.func(entry).params]


def _residual_params(result):
    return [name for _ctype, name in result.residual_params]


class _Harness:
    """Builds matched input worlds for the generic and residual
    programs of one codec and runs both."""

    def __init__(self, pipeline, result, generic_entry):
        self.pipeline = pipeline
        self.result = result
        self.generic_entry = generic_entry
        self.generic_program = pipeline.program_ast
        self.generic_typeinfo = pipeline.typeinfo
        self.generic_names = _generic_params(
            self.generic_program, generic_entry
        )
        self.residual_names = _residual_params(result)

    def run_pair(self, make_values):
        """``make_values(interp)`` builds the world for one program
        (fresh buffers/structs, shared symbol names); returns the two
        :class:`_Run` outcomes (generic, residual)."""
        generic_interp = SymbolicInterpreter(
            self.generic_program, typeinfo=self.generic_typeinfo
        )
        values, out, resp = make_values(generic_interp)
        generic = _run_with(generic_interp, self.generic_entry,
                            self.generic_names, values, out, resp)
        residual_interp = SymbolicInterpreter(self.result.program)
        values, out, resp = make_values(residual_interp)
        residual = _run_with(residual_interp, self.result.entry_name,
                             self.residual_names, values, out, resp)
        return generic, residual


def _run_with(interp, entry, param_names, values, out, resp):
    try:
        result = interp.call(
            entry, [values[name] for name in param_names]
        )
    except Undecidable as exc:
        return _Run("undecidable", error=exc)
    except InterpError as exc:
        return _Run("error", error=exc)
    except KeyError as exc:
        return _Run("error", error=exc)
    return _Run("ok", value=result, out=out, resp=resp)


# -- the client verifier --------------------------------------------------


def verify_client_spec(pipeline, spec, unroll_cap=None):
    """Verify one :class:`ClientSpecialization`.  Returns findings
    (empty list == verified)."""
    findings = []
    interface = pipeline.interface
    arg_lens, res_lens = spec._arg_lens, spec._res_lens
    marshal_entry = spec.marshal_result.entry_name
    recv_entry = spec.recv_result.entry_name

    # Guard-domain conformance: the declared fast-path sizes must equal
    # the wire arithmetic recomputed here, independently of the spec.
    want_request = request_size(interface, spec.arg_struct, arg_lens)
    want_reply = reply_size(interface, spec.ret_struct, res_lens)
    if spec.expected_request != want_request:
        findings.append(_finding(
            "guard-domain", marshal_entry,
            f"declared request guard {spec.expected_request} !="
            f" computed {want_request}",
        ))
    if spec.expected_reply != want_reply:
        findings.append(_finding(
            "guard-domain", recv_entry,
            f"declared reply guard {spec.expected_reply} !="
            f" computed {want_reply}",
        ))
    if findings:
        return findings

    findings.extend(_check_unroll(
        marshal_entry, (arg_lens, res_lens), unroll_cap
    ))
    if findings:
        return findings

    findings.extend(_verify_marshal(pipeline, spec, want_request))
    findings.extend(_verify_recv(pipeline, spec, want_reply))
    return findings


def _check_unroll(entry, lens_list, unroll_cap):
    if unroll_cap is None:
        return []
    for lens in lens_list:
        for field, count in lens.items():
            if count > unroll_cap:
                return [_finding(
                    "unroll-cap", entry,
                    f"assumed length {field}={count} exceeds the unroll"
                    f" cap {unroll_cap}",
                )]
    return []


def _verify_marshal(pipeline, spec, want_request):
    findings = []
    harness = _Harness(
        pipeline, spec.marshal_result,
        f"{spec.proc.name.lower()}_marshal",
    )
    var_fields = tuple(pipeline._gen.var_fields(spec.arg_struct))
    entry = spec.marshal_result.entry_name
    xid = sym("xid")

    def make_values(interp):
        out = interp.make_sym_buffer(spec.bufsize, name="out")
        clnt = interp.make_struct("CLIENT")
        clnt.field("cl_prog").value = pipeline.prog_number
        clnt.field("cl_vers").value = pipeline.vers_number
        args = interp.make_struct(spec.arg_struct.name)
        _fill_symbolic(args, var_fields, spec._arg_lens, "arg")
        values = {
            "clnt": interp.ptr_to(clnt),
            "xid": xid,
            "argsp": interp.ptr_to(args),
            "outbuf": rv.BufPtr(out, 0, 1, True),
            "outsize": spec.bufsize,
        }
        for field, length in spec._arg_lens.items():
            values[f"expected_{field}_len"] = length
        return values, out, None

    generic, residual = harness.run_pair(make_values)
    if generic.status != "ok" or is_sym(generic.value):
        findings.append(_finding(
            "verify-internal", entry,
            f"generic marshal oracle failed: {generic.error or generic.value!r}",
        ))
        return findings
    if residual.status == "undecidable":
        findings.append(_finding(
            "residual-undecidable", entry,
            f"marshal has data-dependent control flow the verifier cannot"
            f" decide: {residual.error}",
        ))
        return findings
    if residual.status == "error":
        findings.append(_finding(
            "residual-bounds", entry,
            f"marshal faulted on the declared domain: {residual.error}",
        ))
        return findings
    if is_sym(residual.value):
        findings.append(_finding(
            "residual-divergence", entry,
            f"marshal output length is data-dependent:"
            f" {render(residual.value)}",
        ))
        return findings
    if residual.value == 0:
        findings.append(_finding(
            "residual-domain-reject", entry,
            "marshal declines its own declared domain (returns 0)",
        ))
        return findings
    if residual.value != generic.value or generic.value != want_request:
        findings.append(_finding(
            "residual-divergence", entry,
            f"marshal length diverges: generic={generic.value}"
            f" residual={residual.value} declared={want_request}",
        ))
        return findings
    _compare_buffers(entry, "marshal", generic.out, residual.out,
                     want_request, findings)
    return findings


def _reply_template(pipeline, spec, xid):
    words = [xid, 1, 0, 0, 0, 0]  # xid, REPLY, MSG_ACCEPTED, null verf,
    #                               SUCCESS — six header words
    _encode_struct_words(pipeline.interface, spec.ret_struct,
                         spec._res_lens, "res", words)
    return words


def _verify_recv(pipeline, spec, want_reply):
    findings = []
    harness = _Harness(
        pipeline, spec.recv_result, f"{spec.proc.name.lower()}_recv"
    )
    entry = spec.recv_result.entry_name
    xid = sym("xid")
    words = _reply_template(pipeline, spec, xid)
    if 4 * len(words) != want_reply:
        findings.append(_finding(
            "verify-internal", entry,
            f"reply template is {4 * len(words)} bytes, expected"
            f" {want_reply}",
        ))
        return findings

    def make_values(interp, template=words):
        buf = _words_to_buffer(interp, template, "in")
        resp = interp.make_struct(spec.ret_struct.name)
        values = {
            "inbuf": rv.BufPtr(buf, 0, 1, True),
            "inlen": want_reply,
            "xid": template[0],
            "resp": interp.ptr_to(resp),
        }
        for field, length in spec._res_lens.items():
            values[f"expected_{field}_len"] = length
        return values, buf, resp

    generic, residual = harness.run_pair(make_values)
    if generic.status != "ok" or generic.value != 1:
        findings.append(_finding(
            "verify-internal", entry,
            f"generic recv oracle rejected the in-domain reply:"
            f" {generic.error or generic.value!r}",
        ))
        return findings
    if residual.status == "undecidable":
        findings.append(_finding(
            "residual-undecidable", entry,
            f"recv has data-dependent control flow the verifier cannot"
            f" decide: {residual.error}",
        ))
        return findings
    if residual.status == "error":
        findings.append(_finding(
            "residual-bounds", entry,
            f"recv faulted on the declared domain: {residual.error}",
        ))
        return findings
    if residual.value != 1:
        findings.append(_finding(
            "residual-domain-reject", entry,
            "recv declines its own declared domain (returns 0)",
        ))
        return findings
    _struct_mismatches(entry, "res", generic.resp, residual.resp, findings)
    if findings:
        return findings

    # Hostile-input probes: concrete corrupted replies.  The residual
    # may decline anything; it must never accept what generic rejects,
    # and when both accept the decode must agree.
    for label, probe_words, probe_xid in _recv_probes(pipeline, spec,
                                                      words):
        def make_probe(interp, template=probe_words, pxid=probe_xid):
            buf = _words_to_buffer(interp, template, "in")
            resp = interp.make_struct(spec.ret_struct.name)
            values = {
                "inbuf": rv.BufPtr(buf, 0, 1, True),
                "inlen": want_reply,
                "xid": pxid,
                "resp": interp.ptr_to(resp),
            }
            for field, length in spec._res_lens.items():
                values[f"expected_{field}_len"] = length
            return values, buf, resp

        generic, residual = harness.run_pair(make_probe)
        if residual.status in ("error", "undecidable"):
            findings.append(_finding(
                "residual-bounds", entry,
                f"recv faulted on hostile input ({label}):"
                f" {residual.error}",
                probe=label,
            ))
            return findings
        if residual.value == 1:
            if generic.status != "ok" or generic.value != 1:
                findings.append(_finding(
                    "residual-accepts-bad-input", entry,
                    f"recv accepts a reply the generic decoder rejects"
                    f" ({label})",
                    probe=label,
                ))
                return findings
            _struct_mismatches(entry, f"res[{label}]", generic.resp,
                               residual.resp, findings)
            if findings:
                return findings
    return findings


def _recv_probes(pipeline, spec, template):
    """(label, words, xid) triples of corrupted concrete replies."""
    base = _concrete_words(template)
    xid = 0x7F03AB01
    base[0] = xid
    probes = [
        ("in-domain", list(base), xid),
        ("wrong-mtype", _patched(base, 1, 0), xid),
        ("denied-reply", _patched(base, 2, 1), xid),
        ("garbage-args-stat", _patched(base, 5, 4), xid),
        ("stale-xid", list(base), (xid + 1) & 0xFFFFFFFF),
    ]
    len_words = _var_len_word_offsets(
        pipeline.interface, spec.ret_struct, spec._res_lens,
        REPLY_HEADER_BYTES,
    )
    for field, offset, bound, count in len_words:
        index = offset // 4
        probes.append((
            f"len-{field}-over-bound", _patched(base, index, bound + 1),
            xid,
        ))
        probes.append((
            f"len-{field}-negative", _patched(base, index, 0xFFFFFFFF),
            xid,
        ))
        if count > 0:
            probes.append((
                f"len-{field}-short", _patched(base, index, count - 1),
                xid,
            ))
    return probes


def _patched(words, index, value):
    out = list(words)
    out[index] = value
    return out


# -- the server verifier --------------------------------------------------


def verify_server_residual(pipeline, result, proc, arg_lens, res_lens,
                           bufsize, unroll_cap=None):
    """Verify one residual server dispatcher.  Returns findings.

    Server semantics differ from the client in one way: the runtime
    wrapper treats *any* residual exception as a decline and falls back
    to the generic registry, so a residual fault on hostile input is
    safe — only accepting with bytes that diverge from the generic
    dispatcher is an error.  On the declared domain the residual must
    still answer (no decline) with the generic bytes.
    """
    findings = []
    interface = pipeline.interface
    arg_struct = pipeline._struct_for(proc.arg, proc.name)
    entry = result.entry_name
    findings.extend(_check_unroll(entry, (arg_lens, res_lens), unroll_cap))
    if findings:
        return findings
    want_request = request_size(interface, arg_struct, arg_lens)

    suffix = f"{pipeline.idl_program.name.lower()}_{pipeline.vers_number}"
    harness = _Harness(pipeline, result, f"svc_handle_{suffix}")

    xid = sym("xid")
    words = [
        xid, 0, 2, pipeline.prog_number, pipeline.vers_number,
        proc.number, 0, 0, 0, 0,
    ]
    _encode_struct_words(interface, arg_struct, arg_lens, "arg", words)
    if 4 * len(words) != want_request:
        findings.append(_finding(
            "verify-internal", entry,
            f"call template is {4 * len(words)} bytes, expected"
            f" {want_request}",
        ))
        return findings

    expected_lens = _svc_expected_lens(pipeline, proc, arg_lens, res_lens)

    def make_values(interp, template=words):
        buf = _words_to_buffer(interp, template, "in")
        out = interp.make_sym_buffer(bufsize, name="out")
        values = {
            "inbuf": rv.BufPtr(buf, 0, 1, True),
            "inlen": 4 * len(template),
            "outbuf": rv.BufPtr(out, 0, 1, True),
            "outsize": bufsize,
            "expected_inlen": want_request,
        }
        values.update(expected_lens)
        return values, out, None

    generic, residual = harness.run_pair(make_values)
    if generic.status != "ok" or is_sym(generic.value) \
            or generic.value == 0:
        findings.append(_finding(
            "verify-internal", entry,
            f"generic dispatch oracle failed on the in-domain call:"
            f" {generic.error or generic.value!r}",
        ))
        return findings
    if residual.status == "undecidable":
        findings.append(_finding(
            "residual-undecidable", entry,
            f"dispatch has control flow the verifier cannot decide:"
            f" {residual.error}",
        ))
        return findings
    if residual.status == "error":
        findings.append(_finding(
            "residual-bounds", entry,
            f"dispatch faulted on the declared domain: {residual.error}",
        ))
        return findings
    if is_sym(residual.value) or residual.value == 0:
        findings.append(_finding(
            "residual-domain-reject", entry,
            "dispatch declines its own declared domain",
        ))
        return findings
    if residual.value != generic.value:
        findings.append(_finding(
            "residual-divergence", entry,
            f"dispatch reply length diverges: generic={generic.value}"
            f" residual={residual.value}",
        ))
        return findings
    _compare_buffers(entry, "dispatch", generic.out, residual.out,
                     generic.value, findings)
    if findings:
        return findings

    # Hostile probes: residual may decline or fault (the wrapper treats
    # both as fallback) but must not answer with divergent bytes.
    for label, probe in _server_probes(pipeline, arg_struct, arg_lens,
                                       proc, words):
        def make_probe(interp, template=probe):
            buf = _words_to_buffer(interp, template, "in")
            out = interp.make_sym_buffer(bufsize, name="out")
            values = {
                "inbuf": rv.BufPtr(buf, 0, 1, True),
                "inlen": 4 * len(template),
                "outbuf": rv.BufPtr(out, 0, 1, True),
                "outsize": bufsize,
                "expected_inlen": want_request,
            }
            values.update(expected_lens)
            return values, out, None

        generic, residual = harness.run_pair(make_probe)
        if residual.status != "ok" or residual.value == 0:
            continue  # decline/fault -> generic fallback handles it
        if generic.status != "ok" or generic.value != residual.value:
            findings.append(_finding(
                "residual-accepts-bad-input", entry,
                f"dispatch answers a call the generic dispatcher"
                f" handles differently ({label})",
                probe=label,
            ))
            return findings
        _compare_buffers(entry, f"dispatch[{label}]", generic.out,
                         residual.out, generic.value, findings)
        if findings:
            return findings
    return findings


def _svc_expected_lens(pipeline, proc, arg_lens, res_lens):
    """The per-procedure expected-length parameters of the generic
    ``svc_handle`` entry (zero for every procedure but the hot one),
    mirroring the pipeline's server assumptions."""
    values = {}
    for version_proc in pipeline.idl_version.procs:
        vp_name = version_proc.name.lower()
        vp_arg = pipeline._struct_for(version_proc.arg, version_proc.name)
        vp_ret = pipeline._struct_for(version_proc.ret, version_proc.name)
        hot = version_proc.name == proc.name
        for field in pipeline._gen.var_fields(vp_arg):
            length = arg_lens.get(field, 0) if hot else 0
            values[f"{vp_name}_expected_{field}_len"] = length
        for field in pipeline._gen.var_fields(vp_ret):
            length = res_lens.get(field, 0) if hot else 0
            values[f"{vp_name}_expected_{field}_len_res"] = length
    return values


def _server_probes(pipeline, arg_struct, arg_lens, proc, template):
    base = _concrete_words(template)
    base[0] = 0x7F03AB02
    probes = [
        ("in-domain", list(base)),
        ("wrong-mtype", _patched(base, 1, 1)),
        ("wrong-rpcvers", _patched(base, 2, 3)),
        ("wrong-prog", _patched(base, 3, pipeline.prog_number + 1)),
        ("wrong-proc", _patched(base, 5, proc.number + 1)),
    ]
    len_words = _var_len_word_offsets(
        pipeline.interface, arg_struct, arg_lens, CALL_HEADER_BYTES
    )
    for field, offset, bound, count in len_words:
        index = offset // 4
        probes.append((
            f"len-{field}-over-bound", _patched(base, index, bound + 1)
        ))
        probes.append((
            f"len-{field}-negative", _patched(base, index, 0xFFFFFFFF)
        ))
    return probes
