"""Entry point: ``python -m repro.analysis verify|lint|all``."""

import sys

from repro.analysis.cli import main

sys.exit(main())
