"""``python -m repro.analysis verify|lint|all`` — the analysis driver.

* ``verify`` rebuilds the example specializations (quickstart's RMIN,
  parallel_matrix's MULTIPLY) plus a canonical server residual from
  scratch and runs the equivalence verifier over each;
* ``lint`` runs the concurrency/discipline rules over ``src/repro``
  and the knob contract over the docs;
* ``all`` runs both.

Exit status is 0 iff there are zero non-suppressed findings.  Pass
``--json PATH`` to archive the machine-readable report (CI uploads it
as an artifact).
"""

import argparse
import importlib.util
import sys
from pathlib import Path

from repro.analysis.findings import Report


def _repo_root():
    """The repository root: the directory holding ``src/repro``."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "src" / "repro").is_dir():
            return parent
    # installed without a source tree: fall back to the cwd.
    return Path.cwd()


def _example_const(root, script, const):
    """Load a module-level constant from an example script, or None."""
    path = root / "examples" / script
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, const, None)


#: fallback interface when examples/ is not shipped alongside src/.
CANONICAL_IDL = """
const MAXN = 64;

struct intarr {
    int vals<MAXN>;
};

program XFER_PROG {
    version XFER_VERS {
        intarr SENDRECV(intarr) = 1;
    } = 1;
} = 0x20005555;
"""

CANONICAL_IMPL = """
void sendrecv_impl(struct intarr *args, struct intarr *res)
{
    int i;
    res->vals_len = args->vals_len;
    for (i = 0; i < args->vals_len; i++) {
        res->vals[i] = args->vals[i] + 1;
    }
}
"""


def _verify_targets(root):
    """(name, idl, impl, proc, arg_lens, res_lens, server) to verify."""
    targets = []
    rmin = _example_const(root, "quickstart.py", "RMIN_IDL")
    if rmin:
        targets.append(("examples/quickstart.py RMIN", rmin, None,
                        "RMIN", {"vals": 4}, {}, False))
    matvec = _example_const(root, "parallel_matrix.py", "MATVEC_IDL")
    block = _example_const(root, "parallel_matrix.py", "BLOCK") or 250
    if matvec:
        targets.append(("examples/parallel_matrix.py MULTIPLY", matvec,
                        None, "MULTIPLY", {"vals": block},
                        {"vals": block}, False))
    # a freshly built *server* residual, end to end.
    targets.append(("canonical intarr server", CANONICAL_IDL,
                    CANONICAL_IMPL, "SENDRECV", {"vals": 8}, {"vals": 8},
                    True))
    if not targets:
        targets.append(("canonical intarr client", CANONICAL_IDL,
                        CANONICAL_IMPL, "SENDRECV", {"vals": 8},
                        {"vals": 8}, False))
    return targets


def run_verify(report, root):
    from repro.analysis.verify import (verify_client_spec,
                                       verify_server_residual)
    from repro.specialized import SpecializationPipeline

    findings = []
    checked = 0
    for (name, idl, impl, proc, arg_lens, res_lens,
         server) in _verify_targets(root):
        # verification is the point here: build unjudged, judge openly.
        pipeline = SpecializationPipeline(
            idl, impl_sources=[impl] if impl else None, verify=False)
        if server:
            spec = pipeline.specialize_server(proc, arg_lens=arg_lens,
                                              res_lens=res_lens)
            found = verify_server_residual(
                pipeline, spec.result, pipeline.find_proc(proc),
                arg_lens, res_lens, spec.bufsize)
        else:
            spec = pipeline.specialize_client(proc, arg_lens=arg_lens,
                                              res_lens=res_lens)
            found = verify_client_spec(pipeline, spec)
        for finding in found:
            finding.context.setdefault("target", name)
        findings.extend(found)
        checked += 1
        print(f"  verified {name}: "
              f"{'OK' if not found else f'{len(found)} finding(s)'}")
    report.extend("verify", findings, {"targets": checked})


def run_lint(report, root):
    from repro.analysis.lint import run_lint as lint

    findings, stats = lint(root)
    report.extend("lint", findings, stats)
    print(f"  linted {stats['modules']} modules: "
          f"{stats['active']} active finding(s)")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("verify", "lint", "all"),
                        help="which pass(es) to run")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the JSON report here")
    parser.add_argument("--root", metavar="DIR", default=None,
                        help="repository root (default: auto-detect)")
    parser.add_argument("--verbose", action="store_true",
                        help="show suppressed findings too")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve() if args.root else _repo_root()
    report = Report()
    if args.command in ("verify", "all"):
        print("verify: residual-equivalence pass")
        run_verify(report, root)
    if args.command in ("lint", "all"):
        print("lint: concurrency/discipline pass")
        run_lint(report, root)
    print()
    print(report.render_text(verbose=args.verbose))
    if args.json:
        report.write_json(args.json)
        print(f"JSON report written to {args.json}")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
