"""Symbolic execution of MiniC programs, for the equivalence verifier.

This reuses the reference interpreter (:mod:`repro.minic.interp`) and
its value model (:mod:`repro.minic.values`) wholesale: structs, arrays,
pointers, frames, and statement dispatch are inherited unchanged.  What
changes is the *scalar domain* — a value is either a concrete Python
int (interpreted exactly as the reference interpreter does) or a
:class:`SymVal`, an expression tree over named 32-bit unknowns.

The symbolic domain is deliberately small, because residual marshaling
code is deliberately simple: after specialization the codecs are
(mostly) straight-line loads, ``htonl`` byte-swaps, masks, adds, and
byte stores.  The executor:

* folds every operation on concrete operands exactly like the
  reference interpreter (same wrapping, same division semantics);
* builds normalized expression nodes for operations on symbolic
  operands (``x & 0xFFFFFFFF`` folds to ``x``, byte extraction of a
  concrete value folds to the byte, reassembling the four bytes of one
  symbol folds back to the symbol);
* decides branches only when it can do so *soundly*: a comparison of
  structurally identical expressions is decided, everything else
  raises :class:`Undecidable` — the verifier treats that as "cannot
  prove equivalence", never as "equivalent".

Symbolic values are tracked as **unsigned 32-bit residues**: an
expression denotes its value modulo 2**32.  Byte-level output
comparison is insensitive to signedness, so this loses nothing for
equivalence checking, but it means *signed comparisons on symbolic
values are never decided* (they raise :class:`Undecidable`), keeping
the executor sound.
"""

from repro.errors import ReproError
from repro.minic import ast
from repro.minic import types as ct
from repro.minic import values as rv
from repro.minic.interp import Interpreter

MASK32 = 0xFFFFFFFF


class Undecidable(ReproError):
    """A branch (or operation) depends on a symbolic value in a way the
    executor cannot soundly decide."""

    def __init__(self, expr, why="branch depends on symbolic value"):
        super().__init__(f"{why}: {expr!r}")
        self.expr = expr


class SymVal:
    """An immutable symbolic expression over 32-bit unknowns.

    Nodes: ``("var", name)``, ``("bin", op, left, right)``,
    ``("byte", value, shift)`` — ``(value >> shift) & 0xFF`` —
    and ``("cat", parts...)`` — big-endian concatenation of byte
    expressions.  Structural equality is semantic equality (the same
    expression over the same unknowns denotes the same value), which
    is the only direction the verifier relies on.
    """

    __slots__ = ("node", "_hash")

    def __init__(self, node):
        self.node = node
        self._hash = hash(node)

    def __eq__(self, other):
        if isinstance(other, SymVal):
            return self.node == other.node
        return NotImplemented

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"SymVal({render(self)})"

    # ``ct.wrap_int`` (used by the inherited interpreter for parameter
    # passing, declarations, and stores) masks with ``&`` and then
    # tests ``value > mask >> 1`` for the signed adjustment.  ``__and__``
    # keeps the expression; ``__gt__`` returning False skips the signed
    # adjustment — i.e. symbolic values stay unsigned residues.  These
    # two operators exist ONLY to keep ``wrap_int`` working; symbolic
    # arithmetic everywhere else goes through :func:`sym_bin`.
    def __and__(self, other):
        return sym_bin("&", self, other)

    def __rand__(self, other):
        return sym_bin("&", other, self)

    def __gt__(self, other):
        return False

    def __int__(self):
        # Every inherited interpreter path that insists on a concrete
        # value (``int(length)``, pointer arithmetic, …) fails closed.
        raise Undecidable(
            self, "symbolic value where a concrete int is required"
        )


def sym(name):
    """A fresh named 32-bit unknown."""
    return SymVal(("var", name))


def is_sym(value):
    return isinstance(value, SymVal)


def render(value):
    """Human-readable form of a concrete or symbolic value."""
    if not isinstance(value, SymVal):
        return repr(value)
    node = value.node
    if node[0] == "var":
        return node[1]
    if node[0] == "bin":
        return f"({render(node[2])} {node[1]} {render(node[3])})"
    if node[0] == "byte":
        return f"byte({render(node[1])}, {node[2]})"
    if node[0] == "cat":
        return "cat(" + ", ".join(render(p) for p in node[1:]) + ")"
    return repr(node)


def _residue(value):
    """Concrete ints are compared as unsigned 32-bit residues, matching
    the symbolic domain (see module docstring)."""
    if isinstance(value, int):
        return value & MASK32
    return value


def values_equal(left, right):
    """Sound structural equality of two concrete-or-symbolic values.

    ``True`` means provably equal for every assignment of the
    unknowns; ``False`` means *not provably equal* (which the verifier
    reports as inequivalence — it may occasionally be a precision loss,
    never an unsound acceptance)."""
    return _residue(left) == _residue(right)


def sym_bin(op, left, right):
    """Build (and simplify) a binary expression node."""
    if isinstance(left, int) and isinstance(right, int):
        # Concrete operands never reach here from the interpreter (it
        # folds them), but simplification rules recurse through this.
        return Interpreter._int_binary(op, left, right, ct.UNSIGNED)
    if op == "&":
        for a, b in ((left, right), (right, left)):
            if isinstance(b, int):
                mask = b & MASK32
                if mask == MASK32:
                    return _residue(a) if isinstance(a, int) else a
                if mask == 0:
                    return 0
                # (x & m1) & m2 -> x & (m1 & m2)
                if (isinstance(a, SymVal) and a.node[0] == "bin"
                        and a.node[1] == "&"
                        and isinstance(a.node[3], int)):
                    return sym_bin("&", a.node[2], a.node[3] & mask)
    if op in ("+", "-", "|", "^", "<<", ">>") and right == 0:
        return left
    if op in ("+", "|", "^") and left == 0:
        return right
    if op == "*" and 1 in (left, right):
        return left if right == 1 else right
    if op == "*" and 0 in (left, right):
        return 0
    if op == "==" and values_equal(left, right):
        return 1
    if op == "!=" and values_equal(left, right):
        return 0
    return SymVal(("bin", op, _freeze(left), _freeze(right)))


def _freeze(value):
    if isinstance(value, SymVal):
        return value
    if isinstance(value, int):
        return value
    raise Undecidable(value, "non-scalar operand in symbolic expression")


def sym_byte(value, shift):
    """``(value >> shift) & 0xFF`` as an expression."""
    if isinstance(value, int):
        return (value >> shift) & 0xFF
    node = value.node
    if node[0] == "byte" and shift == 0:
        return value
    if node[0] == "bin" and node[1] == "&" and isinstance(node[3], int):
        window = (node[3] >> shift) & 0xFF
        if window == 0xFF:
            return sym_byte(node[2], shift)
        if window == 0:
            return 0
    if node[0] == "cat":
        # byte k of cat(b0..bn-1): big-endian, each part one byte.
        parts = node[1:]
        index = len(parts) - 1 - shift // 8
        if shift % 8 == 0 and 0 <= index < len(parts):
            return parts[index]
    return SymVal(("byte", _freeze(value), shift))


def sym_cat(parts):
    """Reassemble big-endian byte expressions into one value."""
    if all(isinstance(p, int) for p in parts):
        value = 0
        for part in parts:
            value = (value << 8) | (part & 0xFF)
        return value
    # The common reassembly: the N bytes of one expression, in order.
    if len(parts) in (2, 4):
        first = parts[0]
        if isinstance(first, SymVal) and first.node[0] == "byte":
            base, top_shift = first.node[1], first.node[2]
            if top_shift == 8 * (len(parts) - 1) and all(
                isinstance(p, SymVal)
                and p.node == ("byte", base, top_shift - 8 * i)
                for i, p in enumerate(parts)
            ):
                if len(parts) == 4:
                    return base
                return sym_bin("&", base, (1 << (8 * len(parts))) - 1)
    frozen = []
    for part in parts:
        if isinstance(part, SymVal):
            frozen.append(part)
        elif isinstance(part, int):
            frozen.append(part & 0xFF)
        else:
            raise Undecidable(part, "unsupported byte expression")
    return SymVal(("cat", *frozen))


class SymBuffer(rv.Buffer):
    """A byte buffer whose cells are concrete ints *or* byte
    expressions.  Bounds are checked exactly like the concrete
    :class:`~repro.minic.values.Buffer`; a ``written`` bitmap records
    which bytes any store touched (the verifier uses it to prove the
    marshaled output has no uninitialized bytes)."""

    __slots__ = ("written",)

    def __init__(self, size_or_bytes, name="buf"):
        if isinstance(size_or_bytes, int):
            super().__init__(size_or_bytes, name=name)
            self.data = [0] * size_or_bytes
            self.written = bytearray(size_or_bytes)
        else:
            initial = list(size_or_bytes)
            super().__init__(len(initial), name=name)
            self.data = initial
            self.written = bytearray([1] * len(initial))

    def store_int(self, offset, value, size, signed):
        self.check(offset, size)
        if isinstance(value, int):
            value &= (1 << (8 * size)) - 1
            for k in range(size):
                self.data[offset + k] = (value >> (8 * (size - 1 - k))) & 0xFF
        else:
            for k in range(size):
                self.data[offset + k] = sym_byte(value, 8 * (size - 1 - k))
        self.written[offset:offset + size] = bytes([1]) * size

    def load_int(self, offset, size, signed):
        self.check(offset, size)
        parts = self.data[offset:offset + size]
        value = sym_cat(parts)
        if isinstance(value, int) and signed:
            limit = 1 << (8 * size - 1)
            if value >= limit:
                value -= limit << 1
        return value

    def store_u32(self, offset, value):
        self.store_int(offset, value, 4, False)

    def load_u32(self, offset):
        value = self.load_int(offset, 4, False)
        return value

    def fill_zero(self, offset, size):
        self.check(offset, size)
        self.data[offset:offset + size] = [0] * size
        self.written[offset:offset + size] = bytes([1]) * size

    def bytes(self):
        if any(isinstance(b, SymVal) for b in self.data):
            raise Undecidable(self, "buffer holds symbolic bytes")
        return bytes(self.data)

    def sym_bytes(self):
        """The buffer content as a list of int-or-expression bytes."""
        return list(self.data)

    def covered(self, length):
        """True when every byte of ``[0, length)`` was written."""
        return all(self.written[:length])


class SymbolicInterpreter(Interpreter):
    """The reference interpreter lifted to the concrete-or-symbolic
    scalar domain.  Concrete runs behave byte-for-byte like the parent
    class (the parent *is* the concrete path); symbolic operands route
    through :func:`sym_bin`/:class:`SymBuffer`."""

    #: verification runs are bounded much tighter than general
    #: interpretation — residual codecs are small.
    def __init__(self, program, typeinfo=None, max_steps=2_000_000):
        super().__init__(program, typeinfo=typeinfo, max_steps=max_steps)

    def make_sym_buffer(self, size_or_bytes, name="buf"):
        buffer = SymBuffer(size_or_bytes, name=name)
        buffer.addr = self.space.alloc_heap(len(buffer))
        return buffer

    # -- decisions --------------------------------------------------------

    def _truthy(self, value):
        if isinstance(value, SymVal):
            node = value.node
            if node[0] == "bin" and node[1] in ("==", "!=", "<", "<=",
                                                ">", ">="):
                raise Undecidable(value, "comparison on symbolic values")
            raise Undecidable(value)
        return Interpreter._truthy(value)

    # -- operators over the lifted domain --------------------------------

    def _eval_binary(self, node, frame):
        op = node.op
        if op in ("&&", "||"):
            return super()._eval_binary(node, frame)
        left = self.eval(node.left, frame)
        right = self.eval(node.right, frame)
        left_ptr = isinstance(left, rv.Pointer)
        right_ptr = isinstance(right, rv.Pointer)
        if left_ptr or right_ptr:
            return self._pointer_binary(op, left, right)
        result_type = self.typeinfo.expr_types.get(node.uid, ct.INT)
        if is_sym(left) or is_sym(right):
            return sym_bin(op, left, right)
        return self._int_binary(op, int(left), int(right), result_type)

    def _eval_unary(self, node, frame):
        if node.op in ("&", "*"):
            return super()._eval_unary(node, frame)
        operand = self.eval(node.operand, frame)
        if is_sym(operand):
            if node.op == "-":
                return sym_bin("-", 0, operand)
            if node.op == "~":
                return sym_bin("^", operand, MASK32)
            # "!" needs a truth value — _truthy raises Undecidable.
            return 0 if self._truthy(operand) else 1
        result_type = self.typeinfo.expr_types.get(node.uid, ct.INT)
        if node.op == "-":
            return ct.wrap_int(-operand, result_type)
        if node.op == "~":
            return ct.wrap_int(~operand, result_type)
        if node.op == "!":
            return 0 if self._truthy(operand) else 1
        raise ReproError(f"unknown unary {node.op!r}")

    def _eval_cast(self, node, frame):
        value = self.eval(node.operand, frame)
        ctype = node.ctype
        if is_sym(value):
            if ctype.is_integer:
                width = ctype.size()
                if width >= 4:
                    return value
                return sym_bin("&", value, (1 << (8 * width)) - 1)
            raise Undecidable(value, "cast of symbolic value to pointer")
        if isinstance(value, rv.BufPtr) and isinstance(ctype,
                                                       ct.PointerType):
            return value.with_type(ctype)
        if isinstance(value, rv.Pointer):
            return value
        if ctype.is_integer:
            return ct.wrap_int(int(value), ctype)
        return value

    def _eval_assign(self, node, frame):
        location = self.eval_lvalue(node.target, frame)
        value = self.eval(node.value, frame)
        if node.op is not None:
            current = self._load_loc(location, node)
            if isinstance(current, rv.Pointer):
                value = self._pointer_binary(node.op, current, value)
            elif is_sym(current) or is_sym(value):
                value = sym_bin(node.op, current, value)
            else:
                result_type = self.typeinfo.expr_types.get(node.uid, ct.INT)
                value = self._int_binary(
                    node.op, int(current), int(value), result_type
                )
        return self._store_loc(location, value, node)

    def _eval_incdec(self, node, frame):
        location = self.eval_lvalue(node.target, frame)
        current = self._load_loc(location, node)
        if isinstance(current, rv.Pointer):
            updated = current.add(1 if node.op == "++" else -1)
        elif is_sym(current):
            updated = sym_bin("+" if node.op == "++" else "-", current, 1)
        else:
            updated = current + (1 if node.op == "++" else -1)
        self._store_loc(location, updated, node)
        return updated if node.prefix else current

    # -- memory over the lifted domain -----------------------------------

    def _store_loc(self, location, value, node):
        if isinstance(location, rv.BufPtr) and is_sym(value):
            location.buffer.store_int(
                location.offset, value, location.elem_size, location.signed
            )
            return value
        return super()._store_loc(location, value, node)

    def _index_loc(self, node, frame):
        index = self.eval(node.index, frame)
        if is_sym(index):
            raise Undecidable(index, "array index depends on symbolic value")
        base = node.obj
        base_loc = None
        if isinstance(base, (ast.Var, ast.Member)):
            base_loc = self.eval_lvalue(base, frame)
        if base_loc is not None and isinstance(base_loc.value, rv.ArrayVal):
            return base_loc.value.elem(int(index))
        pointer = self.eval(base, frame)
        return self._deref_loc(
            pointer.add(int(index))
            if isinstance(pointer, (rv.CellPtr, rv.BufPtr))
            else pointer,
            node,
        )
