"""RPC message headers (RFC 1057 §8).

The call header is the ten 4-byte units the paper's Figure 1 marshals
before the user arguments: xid, CALL, RPC version 2, program, version,
procedure, then the credential and verifier auth areas.
"""

import enum
from dataclasses import dataclass

from repro.errors import RpcDeniedError, RpcProtocolError
from repro.rpc.auth import NULL_AUTH, OpaqueAuth, xdr_opaque_auth
from repro.xdr import xdr_u_long

RPC_VERSION = 2


class MsgType(enum.IntEnum):
    CALL = 0
    REPLY = 1


class ReplyStat(enum.IntEnum):
    MSG_ACCEPTED = 0
    MSG_DENIED = 1


class AcceptStat(enum.IntEnum):
    SUCCESS = 0
    PROG_UNAVAIL = 1
    PROG_MISMATCH = 2
    PROC_UNAVAIL = 3
    GARBAGE_ARGS = 4
    SYSTEM_ERR = 5


class RejectStat(enum.IntEnum):
    RPC_MISMATCH = 0
    AUTH_ERROR = 1


class AuthStat(enum.IntEnum):
    AUTH_BADCRED = 1
    AUTH_REJECTEDCRED = 2
    AUTH_BADVERF = 3
    AUTH_REJECTEDVERF = 4
    AUTH_TOOWEAK = 5


@dataclass(frozen=True)
class CallHeader:
    """Everything before the procedure arguments in a call message."""

    xid: int
    prog: int
    vers: int
    proc: int
    cred: OpaqueAuth = NULL_AUTH
    verf: OpaqueAuth = NULL_AUTH


@dataclass(frozen=True)
class AcceptedReply:
    xid: int
    verf: OpaqueAuth
    stat: AcceptStat
    #: (low, high) for PROG_MISMATCH, else None
    mismatch: tuple = None


@dataclass(frozen=True)
class DeniedReply:
    xid: int
    stat: RejectStat
    #: (low, high) for RPC_MISMATCH; AuthStat for AUTH_ERROR
    detail: object = None


def encode_call_header(xdrs, header):
    """Marshal a call header into an ENCODE stream."""
    xdr_u_long(xdrs, header.xid)
    xdr_u_long(xdrs, MsgType.CALL)
    xdr_u_long(xdrs, RPC_VERSION)
    xdr_u_long(xdrs, header.prog)
    xdr_u_long(xdrs, header.vers)
    xdr_u_long(xdrs, header.proc)
    xdr_opaque_auth(xdrs, header.cred)
    xdr_opaque_auth(xdrs, header.verf)
    return header


def decode_call_header(xdrs):
    """Unmarshal a call header from a DECODE stream."""
    xid = xdr_u_long(xdrs, None)
    mtype = xdr_u_long(xdrs, None)
    if mtype != MsgType.CALL:
        raise RpcProtocolError(f"expected CALL message, got type {mtype}")
    rpcvers = xdr_u_long(xdrs, None)
    if rpcvers != RPC_VERSION:
        raise RpcProtocolError(f"bad RPC version {rpcvers}")
    prog = xdr_u_long(xdrs, None)
    vers = xdr_u_long(xdrs, None)
    proc = xdr_u_long(xdrs, None)
    cred = xdr_opaque_auth(xdrs, None)
    verf = xdr_opaque_auth(xdrs, None)
    return CallHeader(xid, prog, vers, proc, cred, verf)


def encode_accepted_reply(xdrs, xid, stat, verf=NULL_AUTH, mismatch=None):
    """Marshal an accepted-reply header (results follow for SUCCESS)."""
    xdr_u_long(xdrs, xid)
    xdr_u_long(xdrs, MsgType.REPLY)
    xdr_u_long(xdrs, ReplyStat.MSG_ACCEPTED)
    xdr_opaque_auth(xdrs, verf)
    xdr_u_long(xdrs, stat)
    if stat == AcceptStat.PROG_MISMATCH:
        low, high = mismatch
        xdr_u_long(xdrs, low)
        xdr_u_long(xdrs, high)


def encode_denied_reply(xdrs, xid, stat, detail):
    xdr_u_long(xdrs, xid)
    xdr_u_long(xdrs, MsgType.REPLY)
    xdr_u_long(xdrs, ReplyStat.MSG_DENIED)
    xdr_u_long(xdrs, stat)
    if stat == RejectStat.RPC_MISMATCH:
        low, high = detail
        xdr_u_long(xdrs, low)
        xdr_u_long(xdrs, high)
    else:
        xdr_u_long(xdrs, int(detail))


def decode_reply_header(xdrs):
    """Unmarshal a reply header; returns AcceptedReply or DeniedReply.

    For ``AcceptedReply(stat=SUCCESS)`` the stream is positioned at the
    results.
    """
    xid = xdr_u_long(xdrs, None)
    mtype = xdr_u_long(xdrs, None)
    if mtype != MsgType.REPLY:
        raise RpcProtocolError(f"expected REPLY message, got type {mtype}")
    reply_stat = xdr_u_long(xdrs, None)
    if reply_stat == ReplyStat.MSG_ACCEPTED:
        verf = xdr_opaque_auth(xdrs, None)
        stat = xdr_u_long(xdrs, None)
        try:
            stat = AcceptStat(stat)
        except ValueError:
            raise RpcProtocolError(f"bad accept_stat {stat}") from None
        mismatch = None
        if stat == AcceptStat.PROG_MISMATCH:
            mismatch = (xdr_u_long(xdrs, None), xdr_u_long(xdrs, None))
        return AcceptedReply(xid, verf, stat, mismatch)
    if reply_stat == ReplyStat.MSG_DENIED:
        stat = xdr_u_long(xdrs, None)
        try:
            stat = RejectStat(stat)
        except ValueError:
            raise RpcProtocolError(f"bad reject_stat {stat}") from None
        if stat == RejectStat.RPC_MISMATCH:
            detail = (xdr_u_long(xdrs, None), xdr_u_long(xdrs, None))
        else:
            detail = xdr_u_long(xdrs, None)
            try:
                detail = AuthStat(detail)
            except ValueError:
                raise RpcProtocolError(
                    f"bad auth_stat {detail}"
                ) from None
        return DeniedReply(xid, stat, detail)
    raise RpcProtocolError(f"bad reply_stat {reply_stat}")


def raise_for_reply(reply):
    """Turn a non-SUCCESS reply into the right exception."""
    if isinstance(reply, DeniedReply):
        raise RpcDeniedError(
            f"call denied: {reply.stat.name}, detail={reply.detail!r}"
        )
    if reply.stat != AcceptStat.SUCCESS:
        raise RpcDeniedError(f"call failed: {reply.stat.name}")
    return reply
