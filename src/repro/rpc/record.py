"""TCP record marking (RFC 1057 §10).

RPC over TCP delimits messages with *record marking*: each record is a
sequence of fragments, each prefixed by a 4-byte header whose high bit
flags the last fragment and whose low 31 bits give the fragment length.
"""

import struct

from repro.errors import RpcProtocolError

LAST_FRAGMENT = 0x8000_0000
MAX_FRAGMENT = 0x7FFF_FFFF
#: Sun's default fragment size.
DEFAULT_FRAGMENT_SIZE = 8192


def write_record(sock, payload, fragment_size=DEFAULT_FRAGMENT_SIZE):
    """Send one RPC record, fragmenting as needed."""
    view = memoryview(payload)
    total = len(view)
    if total == 0:
        sock.sendall(struct.pack(">I", LAST_FRAGMENT))
        return
    offset = 0
    while offset < total:
        chunk = view[offset:offset + fragment_size]
        offset += len(chunk)
        header = len(chunk) | (LAST_FRAGMENT if offset >= total else 0)
        sock.sendall(struct.pack(">I", header) + bytes(chunk))


def _read_exact(sock, size):
    chunks = []
    remaining = size
    while remaining:
        data = sock.recv(remaining)
        if not data:
            raise RpcProtocolError("connection closed mid-record")
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks)


def read_record(sock, max_size=1 << 24):
    """Receive one complete RPC record (all fragments)."""
    fragments = []
    total = 0
    while True:
        header = struct.unpack(">I", _read_exact(sock, 4))[0]
        last = bool(header & LAST_FRAGMENT)
        length = header & MAX_FRAGMENT
        total += length
        if total > max_size:
            raise RpcProtocolError(f"record too large: {total} > {max_size}")
        if length:
            fragments.append(_read_exact(sock, length))
        if last:
            return b"".join(fragments)
