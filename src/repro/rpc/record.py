"""TCP record marking (RFC 1057 §10).

RPC over TCP delimits messages with *record marking*: each record is a
sequence of fragments, each prefixed by a 4-byte header whose high bit
flags the last fragment and whose low 31 bits give the fragment length.

Every failure mode of the wire surfaces as a typed
:class:`~repro.errors.RpcError` — a peer that closes mid-record,
resets the connection, or announces an oversized or absurd fragment
raises :class:`~repro.errors.RpcConnectionError` /
:class:`~repro.errors.RpcProtocolError` with context, never a bare
``struct.error`` or ``ConnectionResetError``.
"""

import struct

from repro.errors import RpcConnectionError, RpcProtocolError

LAST_FRAGMENT = 0x8000_0000
MAX_FRAGMENT = 0x7FFF_FFFF
#: Sun's default fragment size.
DEFAULT_FRAGMENT_SIZE = 8192
#: cap on fragments per record — a peer streaming endless zero-length
#: non-last fragments must error out, not spin the reader forever.
MAX_FRAGMENTS = 1 << 16


def write_record(sock, payload, fragment_size=DEFAULT_FRAGMENT_SIZE):
    """Send one RPC record, fragmenting as needed.

    Transport failures (peer reset, broken pipe) raise
    :class:`~repro.errors.RpcConnectionError`.
    """
    view = memoryview(payload)
    total = len(view)
    try:
        if total == 0:
            sock.sendall(struct.pack(">I", LAST_FRAGMENT))
            return
        offset = 0
        while offset < total:
            chunk = view[offset:offset + fragment_size]
            offset += len(chunk)
            header = len(chunk) | (LAST_FRAGMENT if offset >= total else 0)
            sock.sendall(struct.pack(">I", header) + bytes(chunk))
    except (BrokenPipeError, ConnectionResetError, ConnectionAbortedError) \
            as exc:
        raise RpcConnectionError(
            f"connection lost sending record ({total} bytes): {exc}"
        ) from exc


def _read_exact(sock, size, context):
    chunks = []
    remaining = size
    while remaining:
        try:
            data = sock.recv(remaining)
        except (ConnectionResetError, ConnectionAbortedError) as exc:
            raise RpcConnectionError(
                f"connection reset {context}"
                f" ({size - remaining} of {size} bytes read): {exc}"
            ) from exc
        if not data:
            raise RpcConnectionError(
                f"connection closed {context}"
                f" ({size - remaining} of {size} bytes read)"
            )
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks)


class RecordAssembler:
    """Incremental record reassembly for non-blocking streams.

    The blocking :func:`read_record` owns the socket until a record
    completes; an event loop cannot afford that.  Feed whatever bytes
    the socket yielded and collect the records that completed::

        for record in assembler.feed(chunk):
            dispatch(record)

    State (a partial fragment header, a partial fragment, fragments of
    an unfinished record) carries over between ``feed`` calls.  The
    same pathologies :func:`read_record` rejects raise
    :class:`~repro.errors.RpcProtocolError` here: an oversized record
    or an endless non-last fragment chain.
    """

    def __init__(self, max_size=1 << 24):
        self.max_size = max_size
        self._buffer = bytearray()
        self._fragments = []
        self._record_size = 0
        self._fragment_count = 0

    @property
    def pending_bytes(self):
        """Bytes buffered toward an incomplete record."""
        return len(self._buffer) + self._record_size

    def feed(self, data):
        """Absorb ``data``; return the list of records it completed."""
        self._buffer += data
        records = []
        while True:
            if len(self._buffer) < 4:
                return records
            header = struct.unpack_from(">I", self._buffer, 0)[0]
            last = bool(header & LAST_FRAGMENT)
            length = header & MAX_FRAGMENT
            if (length > self.max_size
                    or self._record_size + length > self.max_size):
                raise RpcProtocolError(
                    f"record too large: fragment of {length} bytes,"
                    f" {self._record_size + length} total"
                    f" > {self.max_size}"
                )
            if len(self._buffer) < 4 + length:
                return records
            self._fragment_count += 1
            if self._fragment_count > MAX_FRAGMENTS:
                raise RpcProtocolError(
                    f"record exceeds {MAX_FRAGMENTS} fragments"
                )
            if length:
                self._fragments.append(bytes(self._buffer[4:4 + length]))
                self._record_size += length
            del self._buffer[:4 + length]
            if last:
                records.append(b"".join(self._fragments))
                self._fragments = []
                self._record_size = 0
                self._fragment_count = 0


def read_record(sock, max_size=1 << 24):
    """Receive one complete RPC record (all fragments).

    Raises :class:`~repro.errors.RpcConnectionError` on EOF or reset
    mid-record and :class:`~repro.errors.RpcProtocolError` on a peer
    that announces an oversized record or streams pathological
    fragment chains.
    """
    fragments = []
    total = 0
    count = 0
    while True:
        header = struct.unpack(
            ">I", _read_exact(sock, 4, "reading fragment header")
        )[0]
        last = bool(header & LAST_FRAGMENT)
        length = header & MAX_FRAGMENT
        count += 1
        total += length
        if length > max_size or total > max_size:
            raise RpcProtocolError(
                f"record too large: fragment of {length} bytes,"
                f" {total} total > {max_size}"
            )
        if count > MAX_FRAGMENTS:
            raise RpcProtocolError(
                f"record exceeds {MAX_FRAGMENTS} fragments"
            )
        if length:
            fragments.append(
                _read_exact(sock, length, "mid-record")
            )
        if last:
            return b"".join(fragments)
