"""Runtime fast path: header templates and buffer pools.

The paper's specialized ``clntudp_call`` folds the static parts of the
call header away at specialization time, leaving only the xid store in
the residual code (§5).  This module applies the same staging
discipline to the live Python stack without running Tempo:

* :class:`CallHeaderTemplate` serializes the constant call-header
  prefix — program, version, procedure, credential, verifier — exactly
  once per ``(prog, vers, proc, cred, verf)`` tuple.  Per call, the
  template bytes are copied into the send buffer and the 4-byte xid is
  patched in place, replacing ten-plus trips through the XDR
  micro-layers (``putlong``/``x_handy`` accounting) with one slice
  store and one ``pack_into``.

* :class:`ReplyHeaderTemplate` mirrors it server-side: the accepted
  SUCCESS reply header for a fixed verifier is pre-built and patched
  with the caller's xid.

* :class:`BufferPool` removes the other per-call constant cost: the
  ``bytearray(bufsize)`` allocation.  It is a small LIFO free-list of
  equal-size buffers; steady-state traffic reuses the same one or two
  buffers and allocates nothing.

Everything here is byte-for-byte equivalent to the generic encoders in
:mod:`repro.rpc.message` — the equivalence tests in
``tests/rpc/test_fastpath.py`` pin that down.
"""

import struct
import threading

from repro import obs as _obs
from repro.rpc.auth import MAX_AUTH_BYTES, NULL_AUTH
from repro.rpc.message import (
    AcceptStat,
    CallHeader,
    encode_accepted_reply,
    encode_call_header,
)
from repro.xdr import XdrMemStream, XdrOp

#: worst-case header template: 6 words + two auth areas of
#: flavor + length + 400-byte body each.
_MAX_HEADER_BYTES = 6 * 4 + 2 * (8 + MAX_AUTH_BYTES)


class CallHeaderTemplate:
    """The pre-serialized static prefix of a call message.

    The xid occupies the first four bytes of the template and is left
    zeroed; :meth:`write_into` patches it per call.
    """

    __slots__ = ("prog", "vers", "proc", "prefix", "size")

    def __init__(self, prog, vers, proc, cred=NULL_AUTH, verf=NULL_AUTH):
        self.prog = prog
        self.vers = vers
        self.proc = proc
        stream = XdrMemStream(bytearray(_MAX_HEADER_BYTES), XdrOp.ENCODE)
        encode_call_header(stream, CallHeader(0, prog, vers, proc, cred,
                                              verf))
        self.prefix = stream.data()
        self.size = len(self.prefix)

    def write_into(self, buffer, xid):
        """Copy the template into ``buffer`` and patch the xid.

        Returns the number of bytes written (the body offset).
        """
        size = self.size
        buffer[:size] = self.prefix
        struct.pack_into(">I", buffer, 0, xid & 0xFFFFFFFF)
        return size

    def render(self, xid):
        """A standalone header as a fresh bytearray (tests, one-offs)."""
        buffer = bytearray(self.prefix)
        struct.pack_into(">I", buffer, 0, xid & 0xFFFFFFFF)
        return buffer


class ReplyHeaderTemplate:
    """The pre-serialized accepted-reply header for a fixed verifier."""

    __slots__ = ("stat", "prefix", "size", "_tail")

    def __init__(self, verf=NULL_AUTH, stat=AcceptStat.SUCCESS):
        self.stat = stat
        stream = XdrMemStream(bytearray(_MAX_HEADER_BYTES), XdrOp.ENCODE)
        encode_accepted_reply(stream, 0, stat, verf)
        self.prefix = stream.data()
        self.size = len(self.prefix)
        self._tail = self.prefix[4:]

    def write_into(self, buffer, xid):
        """Copy the template into ``buffer`` and patch the xid."""
        size = self.size
        buffer[:size] = self.prefix
        struct.pack_into(">I", buffer, 0, xid & 0xFFFFFFFF)
        return size

    def matches(self, data):
        """True when ``data`` starts with this header under *any* xid.

        The client-side dual of :meth:`write_into`: instead of decoding
        the reply header field by field through the micro-layers, the
        expected accepted-SUCCESS header is *checked* with one slice
        compare (the body then starts at :attr:`size`).  Any reply that
        does not match — an error, a mismatched verifier — falls back
        to the generic decoder.
        """
        return len(data) >= self.size and data[4:self.size] == self._tail


class BufferPool:
    """A bounded LIFO free-list of equal-size ``bytearray`` buffers.

    ``acquire`` pops a free buffer (or allocates when the list is
    empty); ``release`` returns it.  Buffers of the wrong size — e.g.
    checked out before a pool was resized to an exact-fit message size
    — are silently dropped instead of poisoning the pool.  The
    ``allocations``/``reuses`` counters let tests assert that
    steady-state traffic allocates nothing.
    """

    __slots__ = ("size", "limit", "_free", "_lock", "allocations", "reuses")

    def __init__(self, size, limit=8, prefill=0):
        self.size = size
        self.limit = limit
        self._free = []
        self._lock = threading.Lock()
        self.allocations = 0
        self.reuses = 0
        for _ in range(min(prefill, limit)):
            self._free.append(bytearray(size))

    def acquire(self):
        with self._lock:
            if self._free:
                self.reuses += 1
                buffer = self._free.pop()
            else:
                self.allocations += 1
                buffer = None
        if _obs.enabled:
            name = ("rpc.pool.reuses" if buffer is not None
                    else "rpc.pool.allocations")
            _obs.registry.counter(name).inc()
        return buffer if buffer is not None else bytearray(self.size)

    def release(self, buffer):
        if buffer is None or len(buffer) != self.size:
            return
        with self._lock:
            if len(self._free) < self.limit:
                self._free.append(buffer)

    def __len__(self):
        with self._lock:
            return len(self._free)
