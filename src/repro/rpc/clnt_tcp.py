"""TCP RPC client (``clnttcp_call``): record-marked stream transport."""

import socket

from repro.errors import RpcProtocolError, RpcTimeoutError
from repro.rpc.client import RpcClient
from repro.rpc.record import read_record, write_record


class TcpClient(RpcClient):
    """An RPC client over a persistent TCP connection."""

    def __init__(self, host, port, prog, vers, timeout=25.0, bufsize=1 << 16,
                 **kwargs):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        self.timeout = timeout
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        xid = self.next_xid()
        request = self.build_call(xid, proc, args, xdr_args)
        try:
            write_record(self.sock, request)
            while True:
                data = read_record(self.sock)
                matched, value = self.parse_reply(data, xid, proc, xdr_res)
                if matched:
                    return value
        except socket.timeout as exc:
            raise RpcTimeoutError(
                f"TCP RPC call (prog={self.prog}, proc={proc}) timed out"
            ) from exc
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise RpcProtocolError(f"connection failed: {exc}") from exc

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
