"""TCP RPC client (``clnttcp_call``): record-marked stream transport.

Every wire failure is translated to a typed
:class:`~repro.errors.RpcError`: timeouts raise
:class:`~repro.errors.RpcTimeoutError`, connection loss (reset,
broken pipe, EOF mid-record) raises
:class:`~repro.errors.RpcConnectionError`, and a peer that sends
unframeable garbage raises :class:`~repro.errors.RpcProtocolError` —
callers never see ``struct.error`` or a bare ``OSError``.
"""

import socket
import struct

from repro.errors import (
    RpcConnectionError,
    RpcProtocolError,
    RpcTimeoutError,
)
from repro.rpc.client import RpcClient
from repro.rpc.record import read_record, write_record


class TcpClient(RpcClient):
    """An RPC client over a persistent TCP connection."""

    def __init__(self, host, port, prog, vers, timeout=25.0, bufsize=1 << 16,
                 fastpath=False, fault_plan=None, **kwargs):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        self.timeout = timeout
        try:
            self.sock = socket.create_connection((host, port),
                                                 timeout=timeout)
        except ConnectionRefusedError as exc:
            raise RpcConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        self.sock.settimeout(timeout)
        if fault_plan is not None:
            from repro.rpc.faults import FaultySocket

            self.sock = FaultySocket(self.sock, fault_plan)
        if fastpath:
            self.enable_fastpath()

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        xid = self.next_xid()
        send_buffer = None
        if self.fastpath_enabled and proc not in self._codecs:
            send_buffer, length = self.build_call_pooled(
                xid, proc, args, xdr_args
            )
            request = memoryview(send_buffer)[:length]
        else:
            request = self.build_call(xid, proc, args, xdr_args)
        try:
            write_record(self.sock, request)
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)
                send_buffer = None
            while True:
                data = read_record(self.sock)
                matched, value = self.parse_reply(data, xid, proc, xdr_res)
                if matched:
                    return value
        except socket.timeout as exc:
            raise RpcTimeoutError(
                f"TCP RPC call (prog={self.prog}, proc={proc}) timed out"
            ) from exc
        except struct.error as exc:
            # A corrupted stream can desync any decoder below us; make
            # it a protocol error instead of leaking the struct layer.
            raise RpcProtocolError(
                f"undecodable reply on TCP stream: {exc}"
            ) from exc
        except (BrokenPipeError, ConnectionResetError,
                ConnectionAbortedError) as exc:
            raise RpcConnectionError(f"connection failed: {exc}") from exc
        finally:
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
