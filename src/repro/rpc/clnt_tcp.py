"""TCP RPC client (``clnttcp_call``): record-marked stream transport.

Every wire failure is translated to a typed
:class:`~repro.errors.RpcError`: timeouts raise
:class:`~repro.errors.RpcTimeoutError`, connection loss (reset,
broken pipe, EOF mid-record) raises
:class:`~repro.errors.RpcConnectionError`, and a peer that sends
unframeable garbage raises :class:`~repro.errors.RpcProtocolError` —
callers never see ``struct.error`` or a bare ``OSError``.

With observability enabled (``repro.obs``), each call emits a
``client.call`` span (``transport=tcp``) with ``client.encode`` /
``client.send`` / ``client.wait`` / ``client.decode`` children plus
per-call counters and a latency histogram; stale replies consumed
inside the read loop are counted like the UDP client's.
"""

import socket
import struct
import time

from repro import obs as _obs
from repro.errors import (
    RpcConnectionError,
    RpcDeadlineExceeded,
    RpcProtocolError,
    RpcTimeoutError,
)
from repro.rpc.client import RpcClient
from repro.rpc.record import read_record, write_record
from repro.rpc.resilience import Deadline


class TcpClient(RpcClient):
    """An RPC client over a persistent TCP connection.

    After a :class:`~repro.errors.RpcConnectionError` the client can be
    revived in place with :meth:`reconnect`, which re-establishes the
    connection *and* resets per-call state — pooled fast-path buffers
    are discarded (a half-written request must never be resent from a
    dirty buffer) and no span state survives the failed call, so a
    failed-then-retried call reports exactly one encode span per
    attempt.
    """

    def __init__(self, host, port, prog, vers, timeout=25.0, bufsize=1 << 16,
                 fastpath=False, fault_plan=None, **kwargs):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        self.address = (host, port)
        self.timeout = timeout
        self._fault_plan = fault_plan
        #: calls finished (returned or raised) over the client's lifetime
        self.calls_completed = 0
        #: stale replies discarded over the client's lifetime
        self.stale_replies = 0
        #: successful :meth:`reconnect` calls over the client's lifetime
        self.reconnects = 0
        self.sock = self._connect(timeout)
        if fastpath:
            self.enable_fastpath()

    def _connect(self, timeout):
        """A connected (and fault-wrapped) socket to ``self.address``."""
        host, port = self.address
        try:
            sock = socket.create_connection(self.address, timeout=timeout)
        except socket.timeout as exc:
            raise RpcTimeoutError(
                f"connect to {host}:{port} timed out after {timeout}s"
            ) from exc
        except OSError as exc:
            raise RpcConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        sock.settimeout(self.timeout)
        if self._fault_plan is not None:
            from repro.rpc.faults import FaultySocket

            sock = FaultySocket(sock, self._fault_plan)
        return sock

    def reconnect(self, deadline=None):
        """Re-establish the connection after a connection failure.

        Resets per-call state so the retried call starts clean: the
        old socket (possibly holding a half-written record) is closed,
        and with the fast path on, the buffer pools are rebuilt — a
        buffer that held a partially transmitted request is never
        reused for the retry.  ``deadline`` bounds the connect attempt
        (it draws from the same per-call budget as everything else).
        """
        deadline = Deadline.coerce(deadline)
        timeout = self.timeout
        if deadline is not None:
            timeout = min(timeout, deadline.check("reconnect"))
        try:
            self.sock.close()
        except OSError:
            pass
        try:
            self.sock = self._connect(timeout)
        except RpcTimeoutError:
            if deadline is not None and deadline.expired:
                raise RpcDeadlineExceeded(
                    f"deadline exceeded reconnecting to {self.address}"
                ) from None
            raise
        if self.fastpath_enabled:
            # Discard pooled buffers from the failed connection: a
            # fresh pool guarantees the retry never sends bytes left
            # over from a half-written request.
            send_pool, recv_pool = self._send_pool, self._recv_pool
            self.enable_fastpath(send_size=send_pool.size,
                                 recv_size=recv_pool.size,
                                 pool_limit=send_pool.limit)
        self.reconnects += 1
        return self

    def call(self, proc, args=None, xdr_args=None, xdr_res=None,
             deadline=None):
        """One RPC.  ``deadline`` (a
        :class:`~repro.rpc.resilience.Deadline` or seconds budget) caps
        the whole call — the reply wait is clamped to the remaining
        budget and exhaustion raises
        :class:`~repro.errors.RpcDeadlineExceeded`."""
        deadline = Deadline.coerce(deadline)
        xid = self.next_xid()
        span = None
        if _obs.enabled:
            tier = ("specialized" if proc in self._codecs
                    else "fastpath" if self.fastpath_enabled
                    else "generic")
            _obs.registry.counter("rpc.client.calls", transport="tcp",
                                  tier=tier).inc()
            span = _obs.span("client.call", side="client", transport="tcp",
                             xid=xid, prog=self.prog, vers=self.vers,
                             proc=proc, tier=tier)
        started = time.monotonic() if _obs.enabled else 0.0
        try:
            if deadline is not None:
                # Pre-flight check + clamp the socket to the remaining
                # budget for this call's reads/writes.
                self.sock.settimeout(
                    min(self.timeout, deadline.check(f"proc={proc}"))
                )
            value = self._call_once(xid, proc, args, xdr_args, xdr_res,
                                    span, deadline)
        except BaseException as exc:
            self._finish_call(started, type(exc).__name__)
            if span is not None:
                span.end(outcome="error", error=type(exc).__name__)
            raise
        finally:
            if deadline is not None:
                try:
                    self.sock.settimeout(self.timeout)
                except OSError:
                    pass
        self._finish_call(started, "ok")
        if span is not None:
            span.end(outcome="ok")
        return value

    def _finish_call(self, started, outcome):
        """Single per-call aggregation point (cf. the UDP client's)."""
        self.calls_completed += 1
        if not _obs.enabled:
            return
        registry = _obs.registry
        registry.counter("rpc.client.attempts", transport="tcp").inc()
        if outcome == "RpcDeadlineExceeded":
            registry.counter("rpc.client.deadline_exceeded",
                             transport="tcp").inc()
        elif outcome == "RpcTimeoutError":
            registry.counter("rpc.client.timeouts", transport="tcp").inc()
        elif outcome != "ok":
            registry.counter("rpc.client.errors", transport="tcp",
                             error=outcome).inc()
        registry.histogram("rpc.client.call_latency_s",
                           transport="tcp").observe(
            time.monotonic() - started
        )

    def _call_once(self, xid, proc, args, xdr_args, xdr_res, span=None,
                   deadline=None):
        send_buffer = None
        wait_span = None
        encode_span = (span.child("client.encode")
                       if span is not None else None)
        try:
            if (self.propagate_deadline and deadline is not None
                    and proc not in self._codecs):
                # Deadline propagation: carry the remaining budget in
                # the deadline cred so the server can drop doomed work.
                request = self.build_call_deadline(xid, proc, args,
                                                   xdr_args, deadline)
            elif self.fastpath_enabled and proc not in self._codecs:
                send_buffer, length = self.build_call_pooled(
                    xid, proc, args, xdr_args
                )
                request = memoryview(send_buffer)[:length]
            else:
                request = self.build_call(xid, proc, args, xdr_args)
        except BaseException as exc:
            if encode_span is not None:
                encode_span.end(outcome="error", error=type(exc).__name__)
            raise
        if encode_span is not None:
            encode_span.end(bytes=len(request))
        try:
            send_span = (span.child("client.send", bytes=len(request))
                         if span is not None else None)
            write_record(self.sock, request)
            if send_span is not None:
                send_span.end()
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)
                send_buffer = None
            wait_span = (span.child("client.wait")
                         if span is not None else None)
            while True:
                data = read_record(self.sock)
                if span is not None:
                    decode_span = span.child("client.decode",
                                             bytes=len(data))
                    try:
                        matched, value = self.parse_reply(data, xid, proc,
                                                          xdr_res)
                    except BaseException as exc:
                        decode_span.end(outcome="error",
                                        error=type(exc).__name__)
                        raise
                    decode_span.end(matched=matched)
                else:
                    matched, value = self.parse_reply(data, xid, proc,
                                                      xdr_res)
                if matched:
                    if wait_span is not None:
                        wait_span.end(outcome="reply")
                    return value
                # A reply for an earlier xid on our own stream: count
                # it per-lifetime and keep reading.
                self.stale_replies += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.client.stale_replies",
                                          transport="tcp").inc()
        except socket.timeout as exc:
            if deadline is not None and deadline.expired:
                raise RpcDeadlineExceeded(
                    f"TCP RPC call (prog={self.prog}, proc={proc})"
                    f" exceeded its deadline of {deadline.budget_s}s"
                ) from exc
            raise RpcTimeoutError(
                f"TCP RPC call (prog={self.prog}, proc={proc}) timed out"
            ) from exc
        except struct.error as exc:
            # A corrupted stream can desync any decoder below us; make
            # it a protocol error instead of leaking the struct layer.
            raise RpcProtocolError(
                f"undecodable reply on TCP stream: {exc}"
            ) from exc
        except (BrokenPipeError, ConnectionResetError,
                ConnectionAbortedError) as exc:
            raise RpcConnectionError(f"connection failed: {exc}") from exc
        finally:
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)
            if wait_span is not None:
                # Idempotent: a no-op when the reply path already
                # closed it; closes the span on every error path.
                wait_span.end(outcome="aborted")

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
