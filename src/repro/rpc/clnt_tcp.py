"""TCP RPC client (``clnttcp_call``): record-marked stream transport.

Every wire failure is translated to a typed
:class:`~repro.errors.RpcError`: timeouts raise
:class:`~repro.errors.RpcTimeoutError`, connection loss (reset,
broken pipe, EOF mid-record) raises
:class:`~repro.errors.RpcConnectionError`, and a peer that sends
unframeable garbage raises :class:`~repro.errors.RpcProtocolError` —
callers never see ``struct.error`` or a bare ``OSError``.

With observability enabled (``repro.obs``), each call emits a
``client.call`` span (``transport=tcp``) with ``client.encode`` /
``client.send`` / ``client.wait`` / ``client.decode`` children plus
per-call counters and a latency histogram; stale replies consumed
inside the read loop are counted like the UDP client's.
"""

import socket
import struct
import time

from repro import obs as _obs
from repro.errors import (
    RpcConnectionError,
    RpcProtocolError,
    RpcTimeoutError,
)
from repro.rpc.client import RpcClient
from repro.rpc.record import read_record, write_record


class TcpClient(RpcClient):
    """An RPC client over a persistent TCP connection."""

    def __init__(self, host, port, prog, vers, timeout=25.0, bufsize=1 << 16,
                 fastpath=False, fault_plan=None, **kwargs):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        self.timeout = timeout
        #: calls finished (returned or raised) over the client's lifetime
        self.calls_completed = 0
        #: stale replies discarded over the client's lifetime
        self.stale_replies = 0
        try:
            self.sock = socket.create_connection((host, port),
                                                 timeout=timeout)
        except ConnectionRefusedError as exc:
            raise RpcConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        self.sock.settimeout(timeout)
        if fault_plan is not None:
            from repro.rpc.faults import FaultySocket

            self.sock = FaultySocket(self.sock, fault_plan)
        if fastpath:
            self.enable_fastpath()

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        xid = self.next_xid()
        span = None
        if _obs.enabled:
            tier = ("specialized" if proc in self._codecs
                    else "fastpath" if self.fastpath_enabled
                    else "generic")
            _obs.registry.counter("rpc.client.calls", transport="tcp",
                                  tier=tier).inc()
            span = _obs.span("client.call", side="client", transport="tcp",
                             xid=xid, prog=self.prog, vers=self.vers,
                             proc=proc, tier=tier)
        started = time.monotonic() if _obs.enabled else 0.0
        try:
            value = self._call_once(xid, proc, args, xdr_args, xdr_res,
                                    span)
        except BaseException as exc:
            self._finish_call(started, type(exc).__name__)
            if span is not None:
                span.end(outcome="error", error=type(exc).__name__)
            raise
        self._finish_call(started, "ok")
        if span is not None:
            span.end(outcome="ok")
        return value

    def _finish_call(self, started, outcome):
        """Single per-call aggregation point (cf. the UDP client's)."""
        self.calls_completed += 1
        if not _obs.enabled:
            return
        registry = _obs.registry
        registry.counter("rpc.client.attempts", transport="tcp").inc()
        if outcome == "RpcTimeoutError":
            registry.counter("rpc.client.timeouts", transport="tcp").inc()
        elif outcome != "ok":
            registry.counter("rpc.client.errors", transport="tcp",
                             error=outcome).inc()
        registry.histogram("rpc.client.call_latency_s",
                           transport="tcp").observe(
            time.monotonic() - started
        )

    def _call_once(self, xid, proc, args, xdr_args, xdr_res, span=None):
        send_buffer = None
        wait_span = None
        encode_span = (span.child("client.encode")
                       if span is not None else None)
        try:
            if self.fastpath_enabled and proc not in self._codecs:
                send_buffer, length = self.build_call_pooled(
                    xid, proc, args, xdr_args
                )
                request = memoryview(send_buffer)[:length]
            else:
                request = self.build_call(xid, proc, args, xdr_args)
        except BaseException as exc:
            if encode_span is not None:
                encode_span.end(outcome="error", error=type(exc).__name__)
            raise
        if encode_span is not None:
            encode_span.end(bytes=len(request))
        try:
            send_span = (span.child("client.send", bytes=len(request))
                         if span is not None else None)
            write_record(self.sock, request)
            if send_span is not None:
                send_span.end()
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)
                send_buffer = None
            wait_span = (span.child("client.wait")
                         if span is not None else None)
            while True:
                data = read_record(self.sock)
                if span is not None:
                    decode_span = span.child("client.decode",
                                             bytes=len(data))
                    try:
                        matched, value = self.parse_reply(data, xid, proc,
                                                          xdr_res)
                    except BaseException as exc:
                        decode_span.end(outcome="error",
                                        error=type(exc).__name__)
                        raise
                    decode_span.end(matched=matched)
                else:
                    matched, value = self.parse_reply(data, xid, proc,
                                                      xdr_res)
                if matched:
                    if wait_span is not None:
                        wait_span.end(outcome="reply")
                    return value
                # A reply for an earlier xid on our own stream: count
                # it per-lifetime and keep reading.
                self.stale_replies += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.client.stale_replies",
                                          transport="tcp").inc()
        except socket.timeout as exc:
            raise RpcTimeoutError(
                f"TCP RPC call (prog={self.prog}, proc={proc}) timed out"
            ) from exc
        except struct.error as exc:
            # A corrupted stream can desync any decoder below us; make
            # it a protocol error instead of leaking the struct layer.
            raise RpcProtocolError(
                f"undecodable reply on TCP stream: {exc}"
            ) from exc
        except (BrokenPipeError, ConnectionResetError,
                ConnectionAbortedError) as exc:
            raise RpcConnectionError(f"connection failed: {exc}") from exc
        finally:
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)
            if wait_span is not None:
                # Idempotent: a no-op when the reply path already
                # closed it; closes the span on every error path.
                wait_span.end(outcome="aborted")

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
