"""``repro.rpc.durable`` — the DRC persistence tier.

The duplicate-request cache (:mod:`repro.rpc.drc`) upgrades UDP's
at-least-once delivery toward at-most-once — but only *per server
incarnation*: the cache lives in process memory, so a restart forgets
every answered request and a client retransmitting across the restart
re-executes the handler (the documented at-least-once window of
DESIGN §10.4).  This module closes that window with a write-ahead
journal of the cache:

* :class:`DrcJournal` — an append-only journal of ``(key → raw reply
  bytes)`` records plus a periodically rewritten *compacted snapshot*.
  Every handler-produced reply is appended (via the DRC's ``on_store``
  hook) before the server's reply datagram can be retransmitted-past,
  so a restarted server finds the reply on disk and **replays it
  instead of re-executing the handler**.
* **Crash-safe recovery** — records are length-prefixed and CRC-framed;
  :meth:`DrcJournal.recover_into` replays snapshot + journal into a
  fresh cache, silently dropping a torn tail (a record cut short by a
  crash mid-write).  Recovery never raises on journal damage: whatever
  decodes is replayed, the rest of the file is truncated away, and the
  loss is only a return to the at-least-once window for the dropped
  entries.
* **Fsync policy** (``always`` / ``interval`` / ``off``): every append
  is written *and flushed to the OS* unconditionally, so entries
  survive a process kill (SIGKILL) under every policy; the policy
  decides how often ``fsync`` pushes them to the platter, i.e. what an
  *operating-system* crash can lose.  ``always`` fsyncs per append
  (at-most-once even across an OS crash), ``interval`` fsyncs at most
  every ``fsync_interval_s`` seconds (bounded OS-crash window), and
  ``off`` leaves flushing to the OS entirely.

The transports wire this up from one knob: constructing any server
tier with ``drc_dir=...`` (or exporting ``REPRO_DRC_DIR``) attaches a
journal to the registry's DRC, *recovering first* so the restarted
incarnation starts with its predecessor's replies already cached.
Off by default: without the knob nothing here runs and the delivery
guarantee stays per-incarnation, exactly as before.

Wire format
-----------

Both files (``<name>.journal``, ``<name>.snapshot``) open with an
8-byte header (magic + version) followed by self-delimiting records::

    >I payload_length   >I crc32(payload)   payload

``payload`` encodes one cache entry: the DRC key — xid, the caller
identity (a tagged union: transport ``(host, port)`` tuple, ``str``,
or ``bytes``), prog, vers, proc — followed by the raw reply bytes.
A record whose length prefix is insane, whose payload is cut short,
or whose CRC disagrees ends recovery at the last good offset.
Duplicate keys can appear (a snapshot plus journal appends, or an
overwritten entry); **the last record wins**, matching the in-memory
cache's overwrite semantics.
"""

import io
import os
import struct
import threading
import zlib

from repro import obs as _obs

__all__ = [
    "DrcJournal",
    "FSYNC_POLICIES",
    "attach_journal",
    "decode_entry",
    "encode_entry",
    "journal_dir_from_env",
]

#: accepted values for the fsync policy knob.
FSYNC_POLICIES = ("always", "interval", "off")

#: file headers: 4 magic bytes + >I format version.
_JOURNAL_MAGIC = b"DRCJ"
_SNAPSHOT_MAGIC = b"DRCS"
_FORMAT_VERSION = 1
_HEADER = struct.Struct(">4sI")
#: per-record prefix: payload length + crc32 of the payload.
_RECORD = struct.Struct(">II")
#: sanity cap on one record's payload (a reply can never be near this).
_MAX_PAYLOAD = 1 << 26

#: caller-identity tags inside an encoded entry.
_CALLER_ADDR = 0
_CALLER_STR = 1
_CALLER_BYTES = 2


def journal_dir_from_env():
    """The ``REPRO_DRC_DIR`` knob, or None when durability is off."""
    value = os.environ.get("REPRO_DRC_DIR", "").strip()
    return value or None


# -- entry codec -----------------------------------------------------------

def _encode_caller(caller):
    if (isinstance(caller, tuple) and len(caller) == 2
            and isinstance(caller[1], int)):
        host = str(caller[0]).encode("utf-8")
        return struct.pack(">BH", _CALLER_ADDR, len(host)) + host + \
            struct.pack(">I", caller[1] & 0xFFFFFFFF)
    if isinstance(caller, str):
        blob = caller.encode("utf-8")
        return struct.pack(">BH", _CALLER_STR, len(blob)) + blob
    if isinstance(caller, (bytes, bytearray)):
        blob = bytes(caller)
        return struct.pack(">BH", _CALLER_BYTES, len(blob)) + blob
    raise ValueError(f"unjournalable caller identity: {caller!r}")


def _decode_caller(payload, offset):
    tag, size = struct.unpack_from(">BH", payload, offset)
    offset += 3
    blob = bytes(payload[offset:offset + size])
    if len(blob) != size:
        raise ValueError("caller blob cut short")
    offset += size
    if tag == _CALLER_ADDR:
        (port,) = struct.unpack_from(">I", payload, offset)
        return (blob.decode("utf-8"), port), offset + 4
    if tag == _CALLER_STR:
        return blob.decode("utf-8"), offset
    if tag == _CALLER_BYTES:
        return blob, offset
    raise ValueError(f"unknown caller tag {tag}")


def encode_entry(key, reply):
    """One DRC entry — ``key = (xid, caller, prog, vers, proc)`` plus
    the raw reply — as a record payload.

    The same codec frames journal records, snapshot records, and the
    entries streamed by the replication program
    (:mod:`repro.rpc.fleet`), so a replica's absorbed entry is bit-
    for-bit what recovery would have produced locally.
    """
    xid, caller, prog, vers, proc = key
    return (struct.pack(">I", xid & 0xFFFFFFFF)
            + _encode_caller(caller)
            + struct.pack(">III", prog, vers, proc)
            + (reply if isinstance(reply, bytes) else bytes(reply)))


def decode_entry(payload):
    """Invert :func:`encode_entry`; raises ``ValueError``/
    ``struct.error`` on any malformation (recovery treats that as the
    torn tail)."""
    (xid,) = struct.unpack_from(">I", payload, 0)
    caller, offset = _decode_caller(payload, 4)
    prog, vers, proc = struct.unpack_from(">III", payload, offset)
    offset += 12
    reply = bytes(payload[offset:])
    return (xid, caller, prog, vers, proc), reply


def _frame(payload):
    return _RECORD.pack(len(payload), zlib.crc32(payload)) + payload


def _header_ok(path, magic, size):
    if size < _HEADER.size:
        return False
    try:
        with open(path, "rb") as handle:
            head = handle.read(_HEADER.size)
        file_magic, version = _HEADER.unpack(head)
    except (OSError, struct.error):
        return False
    return file_magic == magic and version == _FORMAT_VERSION


def _read_records(path, magic):
    """Yield ``(payload, good_offset)`` for every intact record.

    Stops — without raising — at the first sign of damage: a missing
    or foreign header, a short prefix, an insane length, a truncated
    payload, or a CRC mismatch.  ``good_offset`` after the last yield
    is where the intact prefix ends (callers truncate there).
    """
    try:
        data = path.read_bytes() if hasattr(path, "read_bytes") else None
    except OSError:
        return
    if data is None:
        return
    if len(data) < _HEADER.size:
        return
    file_magic, version = _HEADER.unpack_from(data, 0)
    if file_magic != magic or version != _FORMAT_VERSION:
        return
    offset = _HEADER.size
    total = len(data)
    while True:
        if offset + _RECORD.size > total:
            return
        length, crc = _RECORD.unpack_from(data, offset)
        if length > _MAX_PAYLOAD:
            return
        start = offset + _RECORD.size
        end = start + length
        if end > total:
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return
        yield payload, end
        offset = end


class DrcJournal:
    """Durable backing for one :class:`~repro.rpc.drc.
    DuplicateRequestCache`.

    ``directory`` holds two files named after ``name``:
    ``<name>.journal`` (the append-only tail) and ``<name>.snapshot``
    (the last compaction).  ``fsync`` is one of
    :data:`FSYNC_POLICIES`; ``compact_every`` journal appends trigger
    a compaction — the cache's current entries are rewritten as a
    fresh snapshot (atomic rename) and the journal is reset to empty.

    All methods are thread-safe: ``on_store`` fires from whatever
    worker thread answered the request.
    """

    def __init__(self, directory, name="drc", fsync=None,
                 fsync_interval_s=0.05, compact_every=4096,
                 clock=None):
        if fsync is None:
            fsync = os.environ.get("REPRO_DRC_FSYNC", "interval")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        import time as _time

        self.directory = str(directory)
        self.name = name
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self.compact_every = compact_every
        self._clock = clock if clock is not None else _time.monotonic
        os.makedirs(self.directory, exist_ok=True)
        self.journal_path = os.path.join(self.directory, f"{name}.journal")
        self.snapshot_path = os.path.join(self.directory, f"{name}.snapshot")
        self._lock = threading.Lock()
        self._file = None
        self._last_sync = self._clock()
        self._appends_since_compact = 0
        self._drc = None
        #: lifetime counters, mirrored into the obs registry
        self.appends = 0
        self.append_errors = 0
        self.fsyncs = 0
        self.compactions = 0
        self.recovered_entries = 0
        self.torn_bytes = 0

    # -- recovery ----------------------------------------------------------

    def _scan(self, path, magic):
        """Intact entries of one file, last-wins, plus the good size."""
        entries = {}
        good = 0
        damaged = False

        class _P:
            @staticmethod
            def read_bytes():
                with open(path, "rb") as handle:
                    return handle.read()

        if not os.path.exists(path):
            return entries, None
        size = os.path.getsize(path)
        for payload, end in _read_records(_P, magic):
            try:
                key, reply = decode_entry(payload)
            except (ValueError, struct.error, UnicodeDecodeError,
                    IndexError):
                damaged = True
                break
            entries[key] = reply
            good = end
        if not entries and good == 0:
            # An intact header with no intact records keeps the header;
            # a damaged or foreign header forfeits the whole file, so
            # truncation resets it and the next append writes a fresh
            # header (appending after a bad one would be unrecoverable).
            good = _HEADER.size if _header_ok(path, magic, size) else 0
        torn = size - good if (good or damaged or size) else 0
        return entries, (good, max(0, torn))

    def recover_into(self, drc):
        """Replay snapshot + journal into ``drc`` (via
        :meth:`~repro.rpc.drc.DuplicateRequestCache.absorb`), truncate
        any torn journal tail, and return a stats dict.

        Never raises on file damage: the intact prefix is what
        recovery yields, and a fully unreadable file yields nothing.
        """
        recovered = {}
        torn_total = 0
        for path, magic in ((self.snapshot_path, _SNAPSHOT_MAGIC),
                            (self.journal_path, _JOURNAL_MAGIC)):
            entries, extent = self._scan(path, magic)
            recovered.update(entries)
            if extent is not None:
                good, torn = extent
                torn_total += torn
                if torn and path == self.journal_path:
                    # Drop the torn suffix so the next append starts
                    # at a record boundary.
                    try:
                        with open(path, "r+b") as handle:
                            handle.truncate(good if good else 0)
                    except OSError:
                        pass
        absorbed = 0
        for key, reply in recovered.items():
            if drc.absorb(key, reply):
                absorbed += 1
        self.recovered_entries += len(recovered)
        self.torn_bytes += torn_total
        if _obs.enabled:
            _obs.registry.counter("rpc.drc.journal.recoveries").inc()
            if recovered:
                _obs.registry.counter(
                    "rpc.drc.journal.recovered_entries").inc(len(recovered))
            if torn_total:
                _obs.registry.counter(
                    "rpc.drc.journal.torn_bytes").inc(torn_total)
        return {
            "entries": len(recovered),
            "absorbed": absorbed,
            "torn_bytes": torn_total,
        }

    # -- appending ---------------------------------------------------------

    def _open_for_append(self):
        """Lock held by caller."""
        if self._file is not None:
            return self._file
        fresh = (not os.path.exists(self.journal_path)
                 or os.path.getsize(self.journal_path) < _HEADER.size)
        self._file = open(self.journal_path, "ab")
        if fresh:
            self._file.truncate(0)
            self._file.write(_HEADER.pack(_JOURNAL_MAGIC, _FORMAT_VERSION))
            self._file.flush()
        return self._file

    def _sync(self, handle, force=False):
        """Lock held by caller: apply the fsync policy."""
        if self.fsync == "off" and not force:
            return
        now = self._clock()
        if (not force and self.fsync == "interval"
                and now - self._last_sync < self.fsync_interval_s):
            return
        try:
            os.fsync(handle.fileno())
        except OSError:
            return
        self._last_sync = now
        self.fsyncs += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.drc.journal.fsyncs").inc()

    def append(self, key, reply):
        """Record one handler-produced reply; never raises (a journal
        failure degrades durability, it must not fail the dispatch
        that already answered the client)."""
        try:
            record = _frame(encode_entry(key, reply))
        except (ValueError, struct.error) as exc:
            self.append_errors += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.drc.journal.errors").inc()
            del exc
            return False
        compact_due = False
        with self._lock:
            try:
                handle = self._open_for_append()
                handle.write(record)
                # Always reach the OS: a SIGKILL'd process loses only
                # what sat in *process* buffers, so flush per append.
                handle.flush()
                self._sync(handle)
            except (OSError, ValueError):
                self.append_errors += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.drc.journal.errors").inc()
                return False
            self.appends += 1
            self._appends_since_compact += 1
            if (self._drc is not None
                    and self._appends_since_compact >= self.compact_every):
                compact_due = True
        if _obs.enabled:
            _obs.registry.counter("rpc.drc.journal.appends").inc()
        if compact_due:
            self.compact()
        return True

    # -- compaction --------------------------------------------------------

    def compact(self, drc=None):
        """Rewrite the snapshot from the cache's current entries and
        reset the journal.

        The snapshot is built in a temp file and renamed into place
        (atomic on POSIX), and is fsynced regardless of policy — a
        compaction that lost both the snapshot and the journal would
        be worse than no compaction.  Returns the snapshot entry
        count, or None when no cache is attached.
        """
        drc = drc if drc is not None else self._drc
        if drc is None:
            return None
        entries = drc.snapshot_entries()
        buffer = io.BytesIO()
        buffer.write(_HEADER.pack(_SNAPSHOT_MAGIC, _FORMAT_VERSION))
        written = 0
        for key, reply in entries:
            try:
                buffer.write(_frame(encode_entry(key, reply)))
            except (ValueError, struct.error):
                continue
            written += 1
        tmp_path = self.snapshot_path + ".tmp"
        with self._lock:
            try:
                with open(tmp_path, "wb") as handle:
                    handle.write(buffer.getvalue())
                    handle.flush()
                    # repro: disable=blocking-under-lock -- compaction must exclude appends while the snapshot+journal swap
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self.snapshot_path)
                # The snapshot now covers everything; restart the
                # journal from its header.
                handle = self._open_for_append()
                handle.truncate(_HEADER.size)
                handle.flush()
                self._sync(handle, force=self.fsync != "off")
            except OSError:
                self.append_errors += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.drc.journal.errors").inc()
                return None
            self._appends_since_compact = 0
            self.compactions += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.drc.journal.compactions").inc()
        return written

    # -- wiring ------------------------------------------------------------

    def attach(self, drc):
        """Hook ``drc.on_store`` so every handler-produced reply is
        journaled; chains any previously installed callback (the
        journal appends first, then the earlier hook runs)."""
        self._drc = drc
        previous = drc.on_store

        def journal_then_previous(key, reply):
            self.append(key, reply)
            if previous is not None:
                previous(key, reply)

        drc.on_store = journal_then_previous
        return self

    def close(self):
        with self._lock:
            if self._file is None:
                return
            try:
                self._file.flush()
                self._sync(self._file, force=self.fsync != "off")
                self._file.close()
            except (OSError, ValueError):
                pass
            self._file = None

    def summary(self):
        with self._lock:
            return {
                "fsync": self.fsync,
                "appends": self.appends,
                "append_errors": self.append_errors,
                "fsyncs": self.fsyncs,
                "compactions": self.compactions,
                "recovered_entries": self.recovered_entries,
                "torn_bytes": self.torn_bytes,
            }

    def __repr__(self):
        return (f"DrcJournal({self.journal_path!r}, fsync={self.fsync},"
                f" appends={self.appends})")


def attach_journal(registry, drc_dir=None, fsync=None, name="drc",
                   compact_every=4096):
    """Attach a journal to a registry's DRC: recover, then hook.

    ``drc_dir`` defaults to the ``REPRO_DRC_DIR`` environment knob;
    when neither is set (the default) this returns None and the DRC
    stays memory-only.  The server transports call this during
    construction, so a restarted server replays its predecessor's
    replies instead of re-executing handlers.
    """
    if drc_dir is None:
        drc_dir = journal_dir_from_env()
    if not drc_dir:
        return None
    drc = getattr(registry, "drc", None)
    if drc is None:
        return None
    existing = getattr(registry, "drc_journal", None)
    if existing is not None:
        # Two transports over one registry (or a restart-in-place)
        # share the journal; a second hook would double-append.
        return existing
    journal = DrcJournal(drc_dir, name=name, fsync=fsync,
                         compact_every=compact_every)
    journal.recovery = journal.recover_into(drc)
    journal.attach(drc)
    registry.drc_journal = journal
    return journal
