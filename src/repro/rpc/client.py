"""Generic RPC client interface.

Transports (:class:`~repro.rpc.clnt_udp.UdpClient`,
:class:`~repro.rpc.clnt_tcp.TcpClient`) share message construction and
reply validation; marshaling is pluggable so the Tempo-specialized
marshalers drop in for the generic XDR micro-layers (the client-side
half of the paper's experiment).

Two message-building disciplines coexist:

* the *generic* path re-encodes the call header through the XDR
  micro-layers and allocates a fresh buffer on every call — the
  unspecialized baseline of the paper;
* the *fast* path (:meth:`RpcClient.enable_fastpath`) stages the
  constant work the way the paper's specializer does: the header is a
  pre-serialized :class:`~repro.rpc.fastpath.CallHeaderTemplate`
  patched with the xid, and buffers come from a
  :class:`~repro.rpc.fastpath.BufferPool` so steady-state calls
  allocate nothing.  Both produce byte-identical wire messages.
"""

import itertools
import os
import struct

from repro.errors import RpcProtocolError, XdrError
from repro.rpc.auth import NULL_AUTH
from repro.rpc.fastpath import (
    BufferPool,
    CallHeaderTemplate,
    ReplyHeaderTemplate,
)
from repro.rpc.message import (
    CallHeader,
    decode_reply_header,
    encode_call_header,
    raise_for_reply,
)
from repro.rpc.overload import make_deadline_cred, propagation_enabled
from repro.xdr import XdrMemStream, XdrOp

#: Sun's UDP transfer-unit default.
UDPMSGSIZE = 8800

#: Smallest buffer the fast path will shrink to: the worst-case header
#: (two 400-byte auth areas) and error/mismatch replies must still fit
#: even when the expected success message is tiny.
MIN_FASTPATH_BUFSIZE = 1024

#: The accepted-SUCCESS reply header with a NULL verifier — the common
#: case; the fast path checks replies against it with one slice compare
#: and leaves everything else to the generic header decoder.
_ACCEPTED_SUCCESS = ReplyHeaderTemplate()


class RpcClient:
    """Base class: message building, reply validation, call plumbing."""

    def __init__(self, prog, vers, cred=NULL_AUTH, verf=NULL_AUTH,
                 bufsize=UDPMSGSIZE, propagate_deadline=None):
        self.prog = prog
        self.vers = vers
        self.cred = cred
        self.verf = verf
        self.bufsize = bufsize
        #: opt-in deadline propagation (REPRO_DEADLINE_PROPAGATION):
        #: calls carrying a Deadline ride their remaining budget in an
        #: opaque cred so servers can drop doomed work.  Off → the cred
        #: stays NULL_AUTH and the wire is byte-identical.
        self.propagate_deadline = propagation_enabled(propagate_deadline)
        start = struct.unpack(">I", os.urandom(4))[0]
        self._xids = itertools.count(start)
        #: optional (encode_fn, decode_fn) overrides per proc number —
        #: body-only marshaling overrides.
        self._marshalers = {}
        #: optional whole-message codecs per proc number — installed by
        #: the specialization pipeline (the residual code marshals the
        #: call header too, as the paper's specialized clntudp_call does).
        self._codecs = {}
        #: fast-path state: per-proc header templates + buffer pools.
        self._templates = {}
        self._send_pool = None
        self._recv_pool = None

    # -- marshaling plug points ------------------------------------------

    def install_marshaler(self, proc, encode_fn=None, decode_fn=None):
        """Override marshaling for ``proc``.

        ``encode_fn(stream, args)`` writes the arguments; ``decode_fn
        (stream)`` reads the results.  Either may be None to keep the
        generic path.
        """
        self._marshalers[proc] = (encode_fn, decode_fn)

    def install_codec(self, proc, build_request, parse_reply):
        """Override the *whole message* for ``proc``.

        ``build_request(xid, args) -> bytes`` serializes the complete
        call message (header included); ``parse_reply(data, xid) ->
        (matched, value)`` validates and decodes a complete reply.
        """
        self._codecs[proc] = (build_request, parse_reply)

    # -- fast path --------------------------------------------------------

    @property
    def fastpath_enabled(self):
        return self._send_pool is not None

    def enable_fastpath(self, send_size=None, recv_size=None, pool_limit=4):
        """Turn on header templates and buffer pooling.

        ``send_size``/``recv_size`` bound the pooled buffers (default:
        ``bufsize``); an installed specialization narrows them to the
        exact expected message sizes via :meth:`configure_buffers`.
        """
        send_size = send_size or self.bufsize
        recv_size = recv_size or self.bufsize
        self._send_pool = BufferPool(send_size, limit=pool_limit, prefill=1)
        self._recv_pool = BufferPool(recv_size, limit=pool_limit, prefill=1)
        return self

    def disable_fastpath(self):
        self._send_pool = None
        self._recv_pool = None
        self._templates.clear()

    def configure_buffers(self, request_size, reply_size):
        """Shrink the pools to exact-fit message sizes (plus headroom
        for error replies) — called when a specialization is installed
        and the wire sizes are known invariants."""
        if not self.fastpath_enabled:
            return
        limit = self._send_pool.limit
        send = max(int(request_size), MIN_FASTPATH_BUFSIZE)
        recv = max(int(reply_size), MIN_FASTPATH_BUFSIZE)
        self._send_pool = BufferPool(send, limit=limit, prefill=1)
        self._recv_pool = BufferPool(recv, limit=limit, prefill=1)

    def _template_for(self, proc):
        template = self._templates.get(proc)
        if template is None:
            template = CallHeaderTemplate(
                self.prog, self.vers, proc, self.cred, self.verf
            )
            self._templates[proc] = template
        return template

    def _encode_body(self, stream, proc, args, xdr_args):
        override = self._marshalers.get(proc)
        if override is not None and override[0] is not None:
            override[0](stream, args)
        elif xdr_args is not None:
            xdr_args(stream, args)
        return stream.pos

    def next_xid(self):
        return next(self._xids) & 0xFFFFFFFF

    def build_call(self, xid, proc, args, xdr_args):
        """Serialize a complete call message; returns the bytes."""
        codec = self._codecs.get(proc)
        if codec is not None:
            return codec[0](xid, args)
        if self.fastpath_enabled:
            buffer, length = self.build_call_pooled(xid, proc, args,
                                                    xdr_args)
            try:
                return bytes(buffer[:length])
            finally:
                self.release_send_buffer(buffer)
        buffer = bytearray(self.bufsize)
        stream = XdrMemStream(buffer, XdrOp.ENCODE)
        header = CallHeader(xid, self.prog, self.vers, proc, self.cred,
                            self.verf)
        encode_call_header(stream, header)
        self._encode_body(stream, proc, args, xdr_args)
        return stream.data()

    def build_call_deadline(self, xid, proc, args, xdr_args, deadline):
        """Serialize a call carrying ``deadline``'s remaining budget in
        the opaque deadline cred (:mod:`repro.rpc.overload`).

        Deliberately bypasses the header template and whole-message
        codecs — those are specialized for the constant NULL-cred
        shape — and returns a mutable ``bytearray`` so the transports
        can re-stamp a shrunken budget into retransmissions with
        :func:`~repro.rpc.overload.stamp_deadline`.
        """
        buffer = bytearray(self.bufsize)
        stream = XdrMemStream(buffer, XdrOp.ENCODE)
        header = CallHeader(xid, self.prog, self.vers, proc,
                            make_deadline_cred(deadline), self.verf)
        encode_call_header(stream, header)
        length = self._encode_body(stream, proc, args, xdr_args)
        del buffer[length:]
        return buffer

    def _encode_into(self, buffer, xid, proc, args, xdr_args):
        offset = self._template_for(proc).write_into(buffer, xid)
        stream = XdrMemStream(buffer, XdrOp.ENCODE, offset=offset)
        return self._encode_body(stream, proc, args, xdr_args)

    def build_call_pooled(self, xid, proc, args, xdr_args):
        """Fast path: serialize into a pooled buffer.

        Returns ``(buffer, length)``; the caller sends
        ``buffer[:length]`` and must hand the buffer back via
        :meth:`release_send_buffer`.  Requires an enabled fast path and
        no whole-message codec for ``proc`` (codecs own their bytes).
        Calls that overflow an exact-fit pool (another proc, bigger
        args than the installed invariants) retry once with a
        full-size scratch buffer instead of failing.
        """
        buffer = self._send_pool.acquire()
        try:
            length = self._encode_into(buffer, xid, proc, args, xdr_args)
        except XdrError:
            self.release_send_buffer(buffer)
            if len(buffer) >= self.bufsize:
                raise
            buffer = bytearray(self.bufsize)
            length = self._encode_into(buffer, xid, proc, args, xdr_args)
        except BaseException:
            self.release_send_buffer(buffer)
            raise
        return buffer, length

    def release_send_buffer(self, buffer):
        if self._send_pool is not None:
            self._send_pool.release(buffer)

    def acquire_recv_buffer(self):
        """A pooled receive buffer (fast path only, else a fresh one)."""
        if self._recv_pool is not None:
            return self._recv_pool.acquire()
        return bytearray(self.bufsize)

    def release_recv_buffer(self, buffer):
        if self._recv_pool is not None:
            self._recv_pool.release(buffer)

    def parse_reply(self, data, xid, proc, xdr_res):
        """Validate a reply message and decode the results.

        ``data`` may be ``bytes``, ``bytearray``, or a ``memoryview``
        over the received datagram — decoding never copies it.
        Returns ``(matched, value)``: ``matched`` is False when the xid
        belongs to a different (stale) call and the datagram should be
        ignored rather than failing the call.
        """
        codec = self._codecs.get(proc)
        if codec is not None:
            return codec[1](data, xid)
        if self.fastpath_enabled and _ACCEPTED_SUCCESS.matches(data):
            if struct.unpack_from(">I", data, 0)[0] != xid:
                return False, None
            stream = XdrMemStream(data, XdrOp.DECODE,
                                  offset=_ACCEPTED_SUCCESS.size)
            override = self._marshalers.get(proc)
            if override is not None and override[1] is not None:
                return True, override[1](stream)
            if xdr_res is not None:
                return True, xdr_res(stream, None)
            return True, None
        stream = XdrMemStream(data, XdrOp.DECODE)
        reply = decode_reply_header(stream)
        if reply.xid != xid:
            return False, None
        raise_for_reply(reply)
        override = self._marshalers.get(proc)
        if override is not None and override[1] is not None:
            return True, override[1](stream)
        if xdr_res is not None:
            return True, xdr_res(stream, None)
        return True, None

    # -- the public call surface ---------------------------------------------

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        """Perform one remote procedure call; transport-specific."""
        raise NotImplementedError

    def null_call(self):
        """Procedure 0 — the RPC ping."""
        return self.call(0)

    def close(self):
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def decode_reply_or_raise(data, xid, xdr_res):
    """One-shot reply decode used by tests and the portmapper client.

    Decodes ``data`` (bytes-like) in place, without copying.
    """
    stream = XdrMemStream(data, XdrOp.DECODE)
    reply = decode_reply_header(stream)
    if reply.xid != xid:
        raise RpcProtocolError(f"xid mismatch: {reply.xid} != {xid}")
    raise_for_reply(reply)
    return xdr_res(stream, None) if xdr_res is not None else None
