"""Generic RPC client interface.

Transports (:class:`~repro.rpc.clnt_udp.UdpClient`,
:class:`~repro.rpc.clnt_tcp.TcpClient`) share message construction and
reply validation; marshaling is pluggable so the Tempo-specialized
marshalers drop in for the generic XDR micro-layers (the client-side
half of the paper's experiment).
"""

import itertools
import os
import struct

from repro.errors import RpcProtocolError
from repro.rpc.auth import NULL_AUTH
from repro.rpc.message import (
    CallHeader,
    decode_reply_header,
    encode_call_header,
    raise_for_reply,
)
from repro.xdr import XdrMemStream, XdrOp

#: Sun's UDP transfer-unit default.
UDPMSGSIZE = 8800


class RpcClient:
    """Base class: message building, reply validation, call plumbing."""

    def __init__(self, prog, vers, cred=NULL_AUTH, verf=NULL_AUTH,
                 bufsize=UDPMSGSIZE):
        self.prog = prog
        self.vers = vers
        self.cred = cred
        self.verf = verf
        self.bufsize = bufsize
        start = struct.unpack(">I", os.urandom(4))[0]
        self._xids = itertools.count(start)
        #: optional (encode_fn, decode_fn) overrides per proc number —
        #: body-only marshaling overrides.
        self._marshalers = {}
        #: optional whole-message codecs per proc number — installed by
        #: the specialization pipeline (the residual code marshals the
        #: call header too, as the paper's specialized clntudp_call does).
        self._codecs = {}

    # -- marshaling plug points ------------------------------------------

    def install_marshaler(self, proc, encode_fn=None, decode_fn=None):
        """Override marshaling for ``proc``.

        ``encode_fn(stream, args)`` writes the arguments; ``decode_fn
        (stream)`` reads the results.  Either may be None to keep the
        generic path.
        """
        self._marshalers[proc] = (encode_fn, decode_fn)

    def install_codec(self, proc, build_request, parse_reply):
        """Override the *whole message* for ``proc``.

        ``build_request(xid, args) -> bytes`` serializes the complete
        call message (header included); ``parse_reply(data, xid) ->
        (matched, value)`` validates and decodes a complete reply.
        """
        self._codecs[proc] = (build_request, parse_reply)

    def next_xid(self):
        return next(self._xids) & 0xFFFFFFFF

    def build_call(self, xid, proc, args, xdr_args):
        """Serialize a complete call message; returns the bytes."""
        codec = self._codecs.get(proc)
        if codec is not None:
            return codec[0](xid, args)
        buffer = bytearray(self.bufsize)
        stream = XdrMemStream(buffer, XdrOp.ENCODE)
        header = CallHeader(xid, self.prog, self.vers, proc, self.cred,
                            self.verf)
        encode_call_header(stream, header)
        override = self._marshalers.get(proc)
        if override is not None and override[0] is not None:
            override[0](stream, args)
        elif xdr_args is not None:
            xdr_args(stream, args)
        return stream.data()

    def parse_reply(self, data, xid, proc, xdr_res):
        """Validate a reply message and decode the results.

        Returns ``(matched, value)``: ``matched`` is False when the xid
        belongs to a different (stale) call and the datagram should be
        ignored rather than failing the call.
        """
        codec = self._codecs.get(proc)
        if codec is not None:
            return codec[1](data, xid)
        stream = XdrMemStream(bytearray(data), XdrOp.DECODE)
        reply = decode_reply_header(stream)
        if reply.xid != xid:
            return False, None
        raise_for_reply(reply)
        override = self._marshalers.get(proc)
        if override is not None and override[1] is not None:
            return True, override[1](stream)
        if xdr_res is not None:
            return True, xdr_res(stream, None)
        return True, None

    # -- the public call surface ---------------------------------------------

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        """Perform one remote procedure call; transport-specific."""
        raise NotImplementedError

    def null_call(self):
        """Procedure 0 — the RPC ping."""
        return self.call(0)

    def close(self):
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def decode_reply_or_raise(data, xid, xdr_res):
    """One-shot reply decode used by tests and the portmapper client."""
    stream = XdrMemStream(bytearray(data), XdrOp.DECODE)
    reply = decode_reply_header(stream)
    if reply.xid != xid:
        raise RpcProtocolError(f"xid mismatch: {reply.xid} != {xid}")
    raise_for_reply(reply)
    return xdr_res(stream, None) if xdr_res is not None else None
