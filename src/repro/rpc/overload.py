"""Overload-control plane: the pieces that keep the stack stable at
saturation (DESIGN.md §13).

Four cooperating mechanisms, all opt-in at the call sites that use
them:

* **Deadline propagation** — :func:`make_deadline_cred` packs the
  client's remaining :class:`~repro.rpc.resilience.Deadline` budget
  into an opaque credential (flavor ``DEADLINE_FLAVOR``) that rides
  the standard Sun RPC cred area, wire-compatible with any RFC 1057
  peer (an unknown flavor is at worst rejected, and the generic
  decoder on our side parses it for free).  Servers use
  :func:`remaining_from_cred` to drop already-expired "doomed" work
  before dispatch.  Off by default (``REPRO_DEADLINE_PROPAGATION``);
  when off the cred area stays ``NULL_AUTH`` and the wire is
  byte-identical to the unpropagated stack.

* **Retry budgets** — :class:`RetryBudget` is a token bucket fed by
  *calls* (``ratio`` tokens each) and drained by *retries* (one token
  each), so sustained retransmission is capped at ``ratio`` of the
  recent call rate, with a small time-based floor (``min_rate``) so
  an idle client can still probe.  Denials surface as
  :class:`~repro.errors.RpcRetryBudgetExhausted`.

* **Hedging trigger** — :class:`HedgeTrigger` tracks a latency
  quantile over a sliding window and answers "how long should I wait
  before issuing a hedge to another replica?".

* **Adaptive queueing** — :class:`CodelQueue` replaces the plain
  bounded FIFO inside the worker pools: it tracks per-item *sojourn*
  (time spent queued) and, CoDel-style, sheds items once sojourn has
  exceeded ``target_s`` continuously for ``interval_s``; the
  ``codel-lifo`` policy additionally serves newest-first while
  overloaded so fresh requests — the ones that can still meet their
  deadlines — win.
"""

import collections
import math
import os
import queue
import struct
import threading
import time

from repro import obs as _obs
from repro.rpc.auth import OpaqueAuth

__all__ = [
    "DEADLINE_FLAVOR",
    "CodelQueue",
    "HedgeTrigger",
    "RetryBudget",
    "make_deadline_cred",
    "propagation_enabled",
    "remaining_from_cred",
    "stamp_deadline",
    "QUEUE_POLICIES",
    "resolve_queue_policy",
    "resolve_queue_target_s",
    "resolve_queue_interval_s",
]

#: user-defined auth flavor carrying the remaining deadline budget
#: (``b"DEAD"`` big-endian — far outside the RFC 1057 assigned range)
DEADLINE_FLAVOR = 0x44454144
#: cred body: one XDR-aligned unsigned hyper of remaining microseconds
_BODY = struct.Struct(">Q")
#: fixed offsets inside an encoded call header (RFC 1057 layout):
#: xid(4) mtype(4) rpcvers(4) prog(4) vers(4) proc(4) = 24 bytes,
#: then cred flavor(4) + cred length(4) + cred body.
_CRED_FLAVOR_OFF = 24
_CRED_BODY_OFF = 32
_CRED_PREFIX = struct.pack(">II", DEADLINE_FLAVOR, _BODY.size)

_TRUTHY = ("1", "true", "yes", "on")


def propagation_enabled(flag=None):
    """Resolve the deadline-propagation knob: an explicit ``flag``
    wins; ``None`` falls back to ``REPRO_DEADLINE_PROPAGATION``
    (default off)."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(
        "REPRO_DEADLINE_PROPAGATION", ""
    ).strip().lower() in _TRUTHY


def make_deadline_cred(deadline):
    """Pack ``deadline.remaining()`` into the opaque cred extension."""
    remaining_us = max(0, int(deadline.remaining() * 1e6))
    return OpaqueAuth(DEADLINE_FLAVOR, _BODY.pack(remaining_us))


def remaining_from_cred(cred):
    """Remaining budget (seconds) carried by ``cred``, or ``None`` if
    the cred is not a well-formed deadline carrier."""
    if cred is None or cred.flavor != DEADLINE_FLAVOR:
        return None
    if len(cred.body) != _BODY.size:
        return None
    return _BODY.unpack(cred.body)[0] / 1e6


def stamp_deadline(request, deadline):
    """Re-stamp the remaining budget into an already-encoded request
    (in place), so retransmissions carry an honest, *shrunken* budget
    rather than the value frozen at build time.  Returns True if the
    request carried the deadline cred and was updated."""
    if not isinstance(request, bytearray):
        return False
    end = _CRED_FLAVOR_OFF + len(_CRED_PREFIX)
    if request[_CRED_FLAVOR_OFF:end] != _CRED_PREFIX:
        return False
    remaining_us = max(0, int(deadline.remaining() * 1e6))
    _BODY.pack_into(request, _CRED_BODY_OFF, remaining_us)
    return True


class RetryBudget:
    """Token bucket capping retries to a fraction of recent calls.

    Every completed-or-started call deposits ``ratio`` tokens
    (:meth:`note_call`); every retry withdraws one (:meth:`try_retry`).
    The bucket is bounded by ``burst`` and floored at zero, and a
    time-based drip of ``min_rate`` tokens/second keeps a quiet
    client able to probe occasionally.  Thread-safe.
    """

    def __init__(self, ratio=0.2, burst=10.0, min_rate=1.0,
                 clock=time.monotonic):
        if ratio < 0 or burst <= 0 or min_rate < 0:
            raise ValueError("ratio/min_rate must be >= 0, burst > 0")
        self.ratio = float(ratio)
        self.burst = float(burst)
        self.min_rate = float(min_rate)
        self._clock = clock
        self._lock = threading.Lock()
        self.tokens = self.burst
        self.updated_at = clock()
        self.calls = 0
        self.granted = 0
        self.denied = 0

    def _drip(self, now):
        elapsed = max(0.0, now - self.updated_at)
        self.updated_at = now
        self.tokens = min(self.burst,
                          self.tokens + elapsed * self.min_rate)

    def note_call(self):
        """A fresh call happened: deposit ``ratio`` tokens."""
        with self._lock:
            self.calls += 1
            self.tokens = min(self.burst, self.tokens + self.ratio)

    def try_retry(self):
        """Withdraw one token for a retry; False when the budget is
        dry (the caller must fail typed, not retransmit)."""
        with self._lock:
            self._drip(self._clock())
            if self.tokens >= 1.0:
                self.tokens -= 1.0
                self.granted += 1
                allowed = True
            else:
                self.denied += 1
                allowed = False
        if _obs.enabled:
            name = ("rpc.retry_budget.granted" if allowed
                    else "rpc.retry_budget.denied")
            _obs.registry.counter(name).inc()
        return allowed

    def summary(self):
        with self._lock:
            return {
                "ratio": self.ratio,
                "burst": self.burst,
                "tokens": self.tokens,
                "calls": self.calls,
                "granted": self.granted,
                "denied": self.denied,
            }


class HedgeTrigger:
    """Adaptive hedge-delay trigger: track a latency quantile over a
    sliding window; :meth:`delay` answers how long to wait for the
    primary before issuing a hedged request (None until the window
    holds ``min_samples`` observations).  Thread-safe."""

    def __init__(self, quantile=0.95, window=64, min_samples=16,
                 min_delay_s=0.001, max_delay_s=None):
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        self.quantile = quantile
        self.min_samples = max(1, int(min_samples))
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s
        self._samples = collections.deque(maxlen=max(window,
                                                     self.min_samples))
        self._lock = threading.Lock()

    def observe(self, latency_s):
        with self._lock:
            self._samples.append(latency_s)

    def delay(self):
        with self._lock:
            if len(self._samples) < self.min_samples:
                return None
            ordered = sorted(self._samples)
        index = min(int(self.quantile * len(ordered)), len(ordered) - 1)
        delay = max(self.min_delay_s, ordered[index])
        if self.max_delay_s is not None:
            delay = min(delay, self.max_delay_s)
        return delay


#: queue policies accepted by :class:`CodelQueue` / ``REPRO_QUEUE_POLICY``
QUEUE_POLICIES = ("fifo", "codel", "lifo", "codel-lifo")


def resolve_queue_policy(policy=None):
    """Explicit policy wins; ``None`` falls back to
    ``REPRO_QUEUE_POLICY`` (default ``codel``)."""
    if policy is None:
        policy = os.environ.get("REPRO_QUEUE_POLICY", "").strip() \
            or "codel"
    if policy not in QUEUE_POLICIES:
        raise ValueError(
            f"unknown queue policy {policy!r}; choose from"
            f" {QUEUE_POLICIES}"
        )
    return policy


def resolve_queue_target_s(target_s=None):
    if target_s is not None:
        return target_s
    return float(os.environ.get("REPRO_QUEUE_TARGET_MS", 5.0)) / 1e3


def resolve_queue_interval_s(interval_s=None):
    if interval_s is not None:
        return interval_s
    return float(os.environ.get("REPRO_QUEUE_INTERVAL_MS", 100.0)) / 1e3


class CodelQueue:
    """Bounded request queue with CoDel-style sojourn control.

    Drop law (simplified CoDel): while the *sojourn* of dequeued items
    stays below ``target_s``, nothing is shed.  Once sojourn first
    exceeds the target, a grace of ``interval_s`` starts; if sojourn
    is still above target when it lapses, dequeues start shedding, at
    intervals shrinking with ``interval_s / sqrt(drop_count)`` until
    sojourn falls back under target.  A shed item is returned to the
    caller flagged ``shed=True`` so the owner can *answer* it (a
    SYSTEM_ERR shed) rather than drop it silently.

    Policies: ``fifo`` (no shedding — the legacy bounded queue),
    ``codel`` (shedding, FIFO order), ``lifo`` (shedding,
    newest-first always), ``codel-lifo`` (shedding, newest-first only
    while the controller is in its above-target state).

    ``put_nowait`` raises :class:`queue.Full` at ``maxsize`` exactly
    like the stdlib queue it replaces.
    """

    def __init__(self, maxsize, target_s=None, interval_s=None,
                 policy=None, clock=time.monotonic):
        self.maxsize = maxsize
        self.target_s = resolve_queue_target_s(target_s)
        self.interval_s = resolve_queue_interval_s(interval_s)
        self.policy = resolve_queue_policy(policy)
        self._clock = clock
        self._items = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: CoDel state: when sojourn first went above target (+grace)
        self._next_shed_at = None
        self._shed_streak = 0
        self.sojourn_sheds = 0
        self.puts = 0

    def qsize(self):
        with self._lock:
            return len(self._items)

    def empty(self):
        return self.qsize() == 0

    def put_nowait(self, item):
        with self._not_empty:
            if self.maxsize and len(self._items) >= self.maxsize:
                raise queue.Full
            self._items.append((item, self._clock()))
            self.puts += 1
            self._not_empty.notify()

    def pop(self, timeout=None):
        """Dequeue one item -> ``(item, sojourn_s, shed)``; raises
        :class:`queue.Empty` if nothing arrives within ``timeout``."""
        with self._not_empty:
            if not self._not_empty.wait_for(lambda: self._items,
                                            timeout):
                raise queue.Empty
            now = self._clock()
            overloaded = self._next_shed_at is not None
            lifo = (self.policy == "lifo"
                    or (self.policy == "codel-lifo" and overloaded))
            item, enqueued_at = (self._items.pop() if lifo
                                 else self._items.popleft())
            sojourn = max(0.0, now - enqueued_at)
            shed = (self.policy != "fifo"
                    and self._control(sojourn, now))
        if _obs.enabled:
            _obs.registry.histogram("rpc.queue.sojourn_s").observe(
                sojourn)
            if shed:
                _obs.registry.counter("rpc.queue.sojourn_sheds").inc()
        return item, sojourn, shed

    def _control(self, sojourn, now):
        """The CoDel decision for one dequeue (holding the lock)."""
        if sojourn < self.target_s:
            self._next_shed_at = None
            self._shed_streak = 0
            return False
        if self._next_shed_at is None:
            self._next_shed_at = now + self.interval_s
            return False
        if now < self._next_shed_at:
            return False
        self._shed_streak += 1
        self.sojourn_sheds += 1
        self._next_shed_at = now + (self.interval_s
                                    / math.sqrt(self._shed_streak))
        return True

    def summary(self):
        with self._lock:
            return {
                "policy": self.policy,
                "target_ms": self.target_s * 1e3,
                "interval_ms": self.interval_s * 1e3,
                "depth": len(self._items),
                "puts": self.puts,
                "sojourn_sheds": self.sojourn_sheds,
            }
