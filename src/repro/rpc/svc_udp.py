"""UDP RPC server transport (``svcudp``)."""

import socket
import threading

from repro import obs as _obs
from repro.rpc.client import UDPMSGSIZE
from repro.rpc.faults import FaultySocket


class UdpServer:
    """Serves a :class:`~repro.rpc.server.SvcRegistry` over UDP.

    Usable inline (``handle_once`` in a loop) or as a daemon thread
    (``start``/``stop``), which is how the tests and examples run
    loopback round-trips.

    ``drc=True`` (the default) turns on the registry's duplicate-request
    reply cache so retransmitted requests replay the recorded reply
    instead of re-executing the handler — the UDP retransmission
    discipline makes duplicates a fact of life on this transport.

    ``fault_plan`` wraps the server socket in a
    :class:`~repro.rpc.faults.FaultySocket`, faulting outgoing replies
    (the reply half of a lossy wire; wrap the client to lose requests).
    """

    def __init__(self, registry, host="127.0.0.1", port=0,
                 bufsize=UDPMSGSIZE, fastpath=False, drc=True,
                 fault_plan=None):
        self.registry = registry
        self.bufsize = bufsize
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((host, port))
        self.sock.settimeout(0.2)
        self.host, self.port = self.sock.getsockname()
        if fault_plan is not None:
            self.sock = FaultySocket(self.sock, fault_plan)
        self._thread = None
        self._stop = threading.Event()
        #: datagrams processed (for tests)
        self.requests_handled = 0
        #: fast path: one reusable receive buffer (handle_once is not
        #: reentrant) + template/pooled replies in the registry.
        self._recv_buffer = bytearray(bufsize) if fastpath else None
        if fastpath and hasattr(registry, "enable_fastpath"):
            registry.enable_fastpath()
        if drc and hasattr(registry, "enable_drc"):
            if getattr(registry, "drc", None) is None:
                registry.enable_drc()

    @property
    def fastpath_enabled(self):
        return self._recv_buffer is not None

    def handle_once(self, timeout=None):
        """Receive and answer one datagram; returns True if one was
        handled."""
        if timeout is not None:
            self.sock.settimeout(timeout)
        try:
            if self._recv_buffer is not None:
                nbytes, addr = self.sock.recvfrom_into(self._recv_buffer)
                data = memoryview(self._recv_buffer)[:nbytes]
            else:
                data, addr = self.sock.recvfrom(self.bufsize)
        except socket.timeout:
            return False
        reply = self.registry.dispatch_bytes(data, caller=addr)
        if reply is not None:
            self.sock.sendto(reply, addr)
        self.requests_handled += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.server.datagrams",
                                  transport="udp").inc()
        return True

    def serve_forever(self):
        while not self._stop.is_set():
            try:
                self.handle_once()
            except OSError:
                if self._stop.is_set():
                    return
                raise

    def start(self):
        """Run the server in a daemon thread; returns (host, port)."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"svcudp:{self.port}", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.sock.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False
