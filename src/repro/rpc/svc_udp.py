"""UDP RPC server transport (``svcudp``)."""

import socket
import threading
import time

from repro import obs as _obs
from repro.errors import RpcProtocolError
from repro.rpc.client import UDPMSGSIZE
from repro.rpc.durable import attach_journal
from repro.rpc.faults import FaultySocket
from repro.rpc.resilience import InflightLimiter, WorkerPool


class UdpServer:
    """Serves a :class:`~repro.rpc.server.SvcRegistry` over UDP.

    Usable inline (``handle_once`` in a loop) or as a daemon thread
    (``start``/``stop``), which is how the tests and examples run
    loopback round-trips.

    ``drc=True`` (the default) turns on the registry's duplicate-request
    reply cache so retransmitted requests replay the recorded reply
    instead of re-executing the handler — the UDP retransmission
    discipline makes duplicates a fact of life on this transport.

    ``workers=N`` (N >= 1) switches dispatch to a bounded request queue
    drained by N worker threads: the receive loop only reads datagrams
    and enqueues them, and when the queue (``queue_depth``) is full the
    request is *shed* — answered immediately with a ``SYSTEM_ERR``
    reply so the client fails over instead of retransmitting into a
    black hole.  ``workers=0`` keeps the classic inline dispatch.

    Graceful shutdown: :meth:`drain` puts the registry into drain mode
    (DRC replays and health checks still answered, new work shed) and
    waits for in-flight requests to finish; :meth:`stop` then tears the
    transport down.

    ``fault_plan`` wraps the server socket in a
    :class:`~repro.rpc.faults.FaultySocket`, faulting outgoing replies
    (the reply half of a lossy wire; wrap the client to lose requests).
    """

    def __init__(self, registry, host="127.0.0.1", port=0,
                 bufsize=UDPMSGSIZE, fastpath=False, drc=True,
                 fault_plan=None, workers=0, queue_depth=64,
                 drc_dir=None, drc_fsync=None, online_spec=None,
                 queue_policy=None, queue_target_s=None,
                 queue_interval_s=None):
        self.registry = registry
        self.bufsize = bufsize
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((host, port))
        self.sock.settimeout(0.2)
        self.host, self.port = self.sock.getsockname()
        if fault_plan is not None:
            self.sock = FaultySocket(self.sock, fault_plan)
        self._thread = None
        self._stop = threading.Event()
        #: datagrams processed (for tests)
        self.requests_handled = 0
        #: requests answered with a queue-full shed reply
        self.requests_shed = 0
        self._counters_lock = threading.Lock()
        #: in-flight tracking for graceful drain (inline mode; worker
        #: mode tracks through the pool's own limiter)
        self._inflight = InflightLimiter()
        #: fast path: one reusable receive buffer (the receive loop is
        #: not reentrant) + template/pooled replies in the registry.
        self._recv_buffer = bytearray(bufsize) if fastpath else None
        if fastpath and hasattr(registry, "enable_fastpath"):
            registry.enable_fastpath()
        if drc and hasattr(registry, "enable_drc"):
            if getattr(registry, "drc", None) is None:
                registry.enable_drc()
        #: DRC persistence (see :mod:`repro.rpc.durable`): recover the
        #: predecessor's replies, then journal this incarnation's.
        #: Off unless ``drc_dir`` (or ``REPRO_DRC_DIR``) names a
        #: directory.
        self.journal = attach_journal(registry, drc_dir=drc_dir,
                                      fsync=drc_fsync)
        #: profile-guided online specialization (see
        #: :mod:`repro.specialized.online`): off unless an
        #: OnlineSpecializer is passed; its lifetime belongs to the
        #: caller (``REPRO_ONLINE_SPEC=0`` is a global kill switch).
        if online_spec is not None and hasattr(registry,
                                               "install_profiler"):
            online_spec.attach_server(registry)
            online_spec.ensure_started()
        self._pool = None
        if workers:
            self._pool = WorkerPool(
                workers, queue_depth, self._work,
                name=f"svcudp:{self.port}",
                queue_policy=queue_policy,
                queue_target_s=queue_target_s,
                queue_interval_s=queue_interval_s,
                shed_handler=self._shed_sojourn,
            )

    @property
    def fastpath_enabled(self):
        return self._recv_buffer is not None

    def _process(self, data, addr, received_at=None):
        """Dispatch one datagram and send the reply (any thread).

        A datagram carrying the mux tier's batch envelope is unwrapped
        and each inner call dispatched and answered individually, so a
        pipelining :class:`~repro.rpc.mux.MuxUdpClient` works against
        the threaded tier too (the event-loop tier additionally
        re-batches the replies).
        """
        from repro.rpc.mux import unpack_batch

        try:
            messages = unpack_batch(data)
        except RpcProtocolError:
            return  # truncated envelope: drop like any garbage datagram
        for message in ([data] if messages is None else messages):
            reply = self.registry.dispatch_bytes(message, caller=addr,
                                                 received_at=received_at)
            if reply is not None:
                self.sock.sendto(reply, addr)
            with self._counters_lock:
                self.requests_handled += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.server.datagrams",
                                      transport="udp").inc()

    def _work(self, item):
        data, addr, received_at = item
        self._process(data, addr, received_at)

    def _shed(self, data, addr, reason="queue_full"):
        """Answer a request the queue refused with SYSTEM_ERR."""
        shed = None
        if hasattr(self.registry, "shed_reply_bytes"):
            shed = self.registry.shed_reply_bytes(data, reason=reason)
        if shed is not None:
            self.sock.sendto(shed, addr)
        with self._counters_lock:
            self.requests_shed += 1

    def _shed_sojourn(self, item):
        """Answer a request the CoDel controller shed after queueing
        (sojourn over target): SYSTEM_ERR, reason ``sojourn``."""
        data, addr, _received_at = item
        self._shed(data, addr, reason="sojourn")

    def handle_once(self, timeout=None):
        """Receive and handle (or enqueue) one datagram; returns True
        if one was received."""
        if timeout is not None:
            self.sock.settimeout(timeout)
        try:
            if self._recv_buffer is not None:
                nbytes, addr = self.sock.recvfrom_into(self._recv_buffer)
                data = memoryview(self._recv_buffer)[:nbytes]
            else:
                data, addr = self.sock.recvfrom(self.bufsize)
        except socket.timeout:
            return False
        received_at = time.monotonic()
        if self._pool is not None:
            # The receive buffer is reused; workers need their own copy.
            if not self._pool.submit((bytes(data), addr, received_at)):
                self._shed(data, addr)
            return True
        self._inflight.try_acquire()
        try:
            self._process(data, addr, received_at)
        finally:
            self._inflight.release()
        return True

    @property
    def inflight(self):
        """Requests currently queued or mid-dispatch."""
        if self._pool is not None:
            return self._pool.inflight
        return self._inflight.inflight

    def drain(self, timeout=5.0):
        """Graceful drain: stop taking new work, finish what's queued.

        Puts the registry into drain mode (DRC replays and installed
        health programs keep answering; other requests are shed with
        SYSTEM_ERR) and waits up to ``timeout`` for in-flight requests
        to complete.  The transport keeps running — call :meth:`stop`
        to tear it down.  Returns True once idle.
        """
        if hasattr(self.registry, "begin_drain"):
            self.registry.begin_drain()
        if self._pool is not None:
            return self._pool.wait_idle(timeout)
        return self._inflight.wait_idle(timeout)

    def serve_forever(self):
        while not self._stop.is_set():
            try:
                self.handle_once()
            except OSError:
                if self._stop.is_set():
                    return
                raise

    def start(self):
        """Run the server in a daemon thread; returns (host, port)."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"svcudp:{self.port}", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._pool is not None:
            self._pool.stop()
        if self.journal is not None:
            self.journal.close()
        self.sock.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False
