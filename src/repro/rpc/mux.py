"""``repro.rpc.mux`` — the concurrent call engine (client side).

The serial clients (:mod:`repro.rpc.clnt_udp`, :mod:`repro.rpc.clnt_tcp`)
allow exactly one outstanding xid: throughput at concurrency N costs N
threads, each parked in its own ``select``.  This module multiplexes
many in-flight xids over *one* socket:

* :meth:`MuxUdpClient.call_async` / :meth:`MuxTcpClient.call_async`
  return a :class:`PendingCall` — a waitable, future-style handle —
  and a single background **demux loop** per client matches replies to
  pending calls by xid, enforces per-call deadlines, and (on UDP)
  runs the adaptive retransmission discipline for every call
  concurrently.  The demux loop is the socket's *only* reader, which
  retires the shared-socket wakeup races of the serial path.

* **Call batching**: submissions are queued and the demux loop
  coalesces whatever is queued at flush time into one transmit — on
  TCP, several record-marked messages in one ``send`` (pipelining
  over the stream, wire-compatible with any record-marking server);
  on UDP, several call messages in one datagram wrapped in the
  *batch envelope* below (our servers unwrap it; a lone message is
  always sent raw, so single calls stay wire-compatible with any Sun
  RPC server).  ``batch_window_s`` optionally holds the first queued
  call back a moment to gather a fuller batch.

* The **fast path** composes: requests are built from the pre-serialized
  header templates with in-place xid patching, and replies are matched
  against the accepted-SUCCESS template with one slice compare
  (:meth:`~repro.rpc.client.RpcClient.parse_reply`).

* The **DRC claim protocol** is preserved: every call gets a unique
  xid from the client's counter, retransmissions re-send the same
  bytes, and the server's duplicate-request cache keeps execution
  exactly-once per incarnation even with many xids in flight from one
  caller.

Batch envelope (UDP)
--------------------

A datagram carrying more than one RPC message is framed as::

    >III   BATCH_MAGIC, 0xFFFFFFFF, count
    count x (>I length, message bytes)

The second word can never occur in a plain RPC message at that offset
(``msg_type`` is 0 or 1), so the envelope is unambiguous even against
an adversarial xid equal to ``BATCH_MAGIC``.

Telemetry: ``rpc.mux.calls`` / ``rpc.mux.inflight`` /
``rpc.mux.batch_size`` / ``rpc.mux.wakeups`` / ``rpc.mux.unknown_xids``
plus the ``mux.flush`` span (see :mod:`repro.obs.catalog`).
"""

import collections
import select
import socket
import struct
import threading
import time

from repro import obs as _obs
from repro.errors import (
    FaultInjected,
    RpcConnectionError,
    RpcDeadlineExceeded,
    RpcError,
    RpcProtocolError,
    RpcRetryBudgetExhausted,
    RpcTimeoutError,
    XdrError,
)
from repro.rpc.client import UDPMSGSIZE
from repro.rpc.clnt_tcp import TcpClient
from repro.rpc.clnt_udp import CallStats, UdpClient
from repro.rpc.overload import stamp_deadline
from repro.rpc.record import (
    DEFAULT_FRAGMENT_SIZE,
    LAST_FRAGMENT,
    RecordAssembler,
)
from repro.rpc.resilience import Deadline

__all__ = [
    "BATCH_MAGIC",
    "MuxTcpClient",
    "MuxUdpClient",
    "PendingCall",
    "mark_record",
    "pack_batch",
    "unpack_batch",
]

#: first word of a batch-envelope datagram.
BATCH_MAGIC = 0xB47C4A11
#: second word — an impossible ``msg_type`` (calls use 0, replies 1),
#: so a plain RPC message can never be mistaken for an envelope.
_BATCH_FLAG = 0xFFFFFFFF
_BATCH_HEADER = struct.Struct(">III")
#: envelope bytes for a batch of n messages, beyond the messages.
_BATCH_OVERHEAD = _BATCH_HEADER.size


def batch_overhead(count):
    """Envelope bytes for a batch of ``count`` messages."""
    return _BATCH_OVERHEAD + 4 * count


def pack_batch(messages):
    """Frame ``messages`` (bytes-likes) into one batch datagram."""
    parts = [_BATCH_HEADER.pack(BATCH_MAGIC, _BATCH_FLAG, len(messages))]
    for message in messages:
        parts.append(struct.pack(">I", len(message)))
        parts.append(message if type(message) is bytes else bytes(message))
    return b"".join(parts)


def unpack_batch(data):
    """The messages inside a batch datagram, or None for a plain one.

    Returns a list of ``memoryview`` slices (zero-copy) when ``data``
    carries the envelope; ``None`` when it is an ordinary RPC message.
    A recognized envelope that is internally inconsistent raises
    :class:`~repro.errors.RpcProtocolError` (callers drop it like any
    other garbage datagram).
    """
    if len(data) < _BATCH_OVERHEAD:
        return None
    magic, flag, count = _BATCH_HEADER.unpack_from(data, 0)
    if magic != BATCH_MAGIC or flag != _BATCH_FLAG:
        return None
    view = memoryview(data)
    messages = []
    offset = _BATCH_OVERHEAD
    total = len(data)
    for _ in range(count):
        if offset + 4 > total:
            raise RpcProtocolError("truncated batch envelope")
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if offset + length > total:
            raise RpcProtocolError(
                f"batch member of {length} bytes overruns the datagram"
            )
        messages.append(view[offset:offset + length])
        offset += length
    return messages


def mark_record(payload, fragment_size=DEFAULT_FRAGMENT_SIZE):
    """``payload`` as record-marked bytes (the wire form of one TCP
    message), without touching a socket — lets the demux loop coalesce
    several records into a single ``send``."""
    view = memoryview(payload)
    total = len(view)
    if total == 0:
        return struct.pack(">I", LAST_FRAGMENT)
    parts = []
    offset = 0
    while offset < total:
        chunk = view[offset:offset + fragment_size]
        offset += len(chunk)
        header = len(chunk) | (LAST_FRAGMENT if offset >= total else 0)
        parts.append(struct.pack(">I", header))
        parts.append(bytes(chunk))
    return b"".join(parts)


class PendingCall:
    """A waitable handle for one in-flight multiplexed call.

    :meth:`result` blocks until the demux loop completes the call —
    with the decoded value, or by re-raising the typed
    :class:`~repro.errors.RpcError` the call resolved to.  The engine
    always resolves every pending call (reply, timeout, deadline, or
    connection death), so :meth:`result` cannot hang past the call's
    budget.

    Completion is signaled through the owning client's *shared*
    condition variable rather than a per-call ``threading.Event`` —
    at tens of thousands of calls per second, one Event (a Condition
    plus a Lock) per call is measurable allocation and locking cost.
    The ``_done`` flag is written under that condition's lock, after
    ``_value``/``_error``, so the unlocked fast-path read in
    :meth:`result` is safe under the GIL.
    """

    __slots__ = ("xid", "proc", "request", "xdr_res", "deadline", "stats",
                 "started", "hard_end", "window", "next_send_at",
                 "queued_at", "_cond", "_done", "_value", "_error")

    def __init__(self, cond, xid, proc, request, xdr_res, deadline,
                 started, hard_end, window):
        self._cond = cond
        self.xid = xid
        self.proc = proc
        self.request = request
        self.xdr_res = xdr_res
        self.deadline = deadline
        self.stats = CallStats(proc)
        self.started = started
        self.queued_at = started
        self.hard_end = hard_end
        #: current backoff window (UDP retransmission)
        self.window = window
        #: monotonic time of the next retransmission (UDP)
        self.next_send_at = hard_end
        self._done = False
        self._value = None
        self._error = None

    def done(self):
        return self._done

    def wait(self, timeout=None):
        """Block until resolved; True when done (like Event.wait)."""
        if self._done:
            return True
        with self._cond:
            if timeout is None:
                while not self._done:
                    self._cond.wait()
                return True
            end = time.monotonic() + timeout
            while not self._done:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def result(self, timeout=None):
        """The call's value; re-raises its typed error.

        ``timeout`` is a safety net for callers that want to poll — the
        engine itself bounds every call by its deadline/timeout budget.
        """
        if not self.wait(timeout):
            raise RpcTimeoutError(
                f"mux call (proc={self.proc}, xid={self.xid}) still"
                f" pending after a {timeout}s result() wait"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout=None):
        """The typed error the call resolved to, or None."""
        if not self.wait(timeout):
            raise RpcTimeoutError(
                f"mux call (proc={self.proc}, xid={self.xid}) still"
                f" pending after a {timeout}s exception() wait"
            )
        return self._error

    def __repr__(self):
        state = ("done" if self._done else "pending")
        return f"PendingCall(xid={self.xid}, proc={self.proc}, {state})"


class _MuxEngine:
    """The shared demux machinery: pending table, send queue, wakeup
    pipe, completion plumbing.  Transport specifics (how to flush, how
    to drain the socket, which timers to run) live in the clients."""

    def _init_engine(self, max_inflight, batch_window_s, max_batch_bytes):
        self.max_inflight = max_inflight
        self.batch_window_s = batch_window_s
        self.max_batch_bytes = max_batch_bytes
        self._pending = {}
        self._sendq = collections.deque()
        self._mux_lock = threading.Lock()
        #: completion + window-admission signaling, sharing _mux_lock
        #: (one lock round-trip resolves a call AND wakes its waiter).
        self._cond = threading.Condition(self._mux_lock)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._loop_thread = None
        #: cheap liveness flag for the submit fast path — a
        #: Thread.is_alive() per call is a measurable lock round-trip.
        self._loop_alive = False
        self._closed = False
        #: transmit flushes performed / messages they carried — the
        #: ratio is the realized batch size.
        self.batches_sent = 0
        self.messages_batched = 0
        #: replies bearing an xid with no pending call (late retransmit
        #: answers, duplicates after completion)
        self.unknown_xids = 0
        #: earliest pending timer (hard deadline or retransmit), a
        #: conservative lower bound: the loop skips its O(window) timer
        #: scan entirely while ``now`` is before this.  Lowered (under
        #: the lock) wherever a timer is armed; recomputed exactly by
        #: each scan.  A stale-low value costs one redundant scan, never
        #: a missed timer.
        self._timer_floor = float("inf")

    @property
    def inflight(self):
        with self._mux_lock:
            return len(self._pending)

    def _wake(self):
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full == a wakeup is already queued

    def _drain_wakeups(self):
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _ensure_loop(self):
        with self._mux_lock:
            if self._loop_thread is None or not self._loop_thread.is_alive():
                self._loop_thread = threading.Thread(
                    target=self._run_demux,
                    name=f"mux-demux:{self._transport}", daemon=True,
                )
                self._loop_thread.start()

    def _run_demux(self):
        self._loop_alive = True
        try:
            self._demux_loop()
        finally:
            self._loop_alive = False

    def _submit(self, proc, args, xdr_args, xdr_res, deadline):
        """Common ``call_async`` body: admission, build, enqueue."""
        if self._closed:
            raise RpcConnectionError("mux client is closed")
        deadline = Deadline.coerce(deadline)
        budget = self.timeout
        if deadline is not None:
            budget = min(budget, deadline.check(f"proc={proc}"))
        xid = self.next_xid()
        if (self.propagate_deadline and deadline is not None
                and proc not in self._codecs):
            # Deadline propagation: a mutable request carrying the
            # remaining budget, re-stamped on every retransmission.
            request = self.build_call_deadline(xid, proc, args,
                                               xdr_args, deadline)
        else:
            request = self.build_call(xid, proc, args, xdr_args)
        retry_budget = getattr(self, "retry_budget", None)
        if retry_budget is not None:
            retry_budget.note_call()
        now = time.monotonic()
        hard_end = now + self.timeout
        if deadline is not None:
            hard_end = min(hard_end, deadline.expires_at)
        call = PendingCall(self._cond, xid, proc, request, xdr_res,
                           deadline, now, hard_end, self._initial_window())
        with self._cond:
            # Window admission shares the completion condition: every
            # _complete notify also re-checks admission waiters, so one
            # lock round-trip covers both.
            if len(self._pending) >= self.max_inflight:
                admit_by = time.monotonic() + budget
                while len(self._pending) >= self.max_inflight:
                    if self._closed:
                        raise RpcConnectionError("mux client is closed")
                    remaining = admit_by - time.monotonic()
                    if remaining <= 0:
                        raise RpcTimeoutError(
                            f"mux window full: {self.max_inflight} calls"
                            f" already in flight and none completed"
                            f" within {budget:.3f}s"
                        )
                    self._cond.wait(remaining)
            if self._closed:
                raise RpcConnectionError("mux client is closed")
            self._pending[xid] = call
            if hard_end < self._timer_floor:
                self._timer_floor = hard_end
            # The wakeup byte is only needed on the empty->nonempty
            # transition: whoever queued the head already woke the
            # loop, and a nonempty queue keeps its select timeout at
            # zero (_next_wakeup_in).  Skipping the redundant send
            # syscall per submit matters — it is a GIL handoff.
            need_wake = not self._sendq
            self._sendq.append(call)
            inflight = len(self._pending)
        if _obs.enabled:
            tier = ("specialized" if proc in self._codecs
                    else "fastpath" if self.fastpath_enabled
                    else "generic")
            _obs.registry.counter("rpc.client.calls",
                                  transport=self._transport,
                                  tier=tier).inc()
            _obs.registry.counter("rpc.mux.calls",
                                  transport=self._transport).inc()
            _obs.registry.gauge("rpc.mux.inflight",
                                transport=self._transport).set(inflight)
        if not self._loop_alive:
            self._ensure_loop()
        if need_wake:
            self._wake()
        return call

    def call_async_many(self, proc, args_list, xdr_args=None, xdr_res=None,
                        deadline=None):
        """Submit several calls to one procedure in a single admission
        pass; returns their :class:`PendingCall` handles in order.

        This is the explicit form of call batching: per-call locking,
        wakeup checks, and timestamping are paid once per burst, and a
        burst that fits the window rides to the transport as one flush.
        Calls the window cannot admit within the timeout budget (or
        that a concurrent :meth:`close` interrupts) are *resolved* with
        the typed error rather than raised — every returned handle
        settles individually, exactly like :meth:`call_async` results.
        """
        if self._closed:
            raise RpcConnectionError("mux client is closed")
        deadline = Deadline.coerce(deadline)
        budget = self.timeout
        if deadline is not None:
            budget = min(budget, deadline.check(f"proc={proc}"))
        now = time.monotonic()
        hard_end = now + self.timeout
        if deadline is not None:
            hard_end = min(hard_end, deadline.expires_at)
        window = self._initial_window()
        cond = self._cond
        retry_budget = getattr(self, "retry_budget", None)
        propagate = (self.propagate_deadline and deadline is not None
                     and proc not in self._codecs)
        calls = []
        for args in args_list:
            xid = self.next_xid()
            if propagate:
                request = self.build_call_deadline(xid, proc, args,
                                                   xdr_args, deadline)
            else:
                request = self.build_call(xid, proc, args, xdr_args)
            if retry_budget is not None:
                retry_budget.note_call()
            calls.append(PendingCall(cond, xid, proc, request, xdr_res,
                                     deadline, now, hard_end, window))
        if not calls:
            return calls
        submitted = 0
        admit_by = None
        need_wake = False
        error = None
        with cond:
            while submitted < len(calls):
                if self._closed:
                    error = RpcConnectionError("mux client is closed")
                    break
                room = self.max_inflight - len(self._pending)
                if room <= 0:
                    if admit_by is None:
                        admit_by = time.monotonic() + budget
                    remaining = admit_by - time.monotonic()
                    if remaining <= 0:
                        error = RpcTimeoutError(
                            f"mux window full: {self.max_inflight} calls"
                            f" already in flight and none completed"
                            f" within {budget:.3f}s"
                        )
                        break
                    cond.wait(remaining)
                    continue
                if not self._sendq:
                    need_wake = True
                for call in calls[submitted:submitted + room]:
                    self._pending[call.xid] = call
                    self._sendq.append(call)
                submitted = min(submitted + room, len(calls))
                if hard_end < self._timer_floor:
                    self._timer_floor = hard_end
            if error is not None:
                # Resolve the unadmitted tail typed instead of raising:
                # the admitted prefix is already in flight and its
                # handles were promised to the caller.
                for call in calls[submitted:]:
                    call._error = error
                    call._done = True
            inflight = len(self._pending)
        if _obs.enabled and submitted:
            tier = ("specialized" if proc in self._codecs
                    else "fastpath" if self.fastpath_enabled
                    else "generic")
            _obs.registry.counter("rpc.client.calls",
                                  transport=self._transport,
                                  tier=tier).inc(submitted)
            _obs.registry.counter("rpc.mux.calls",
                                  transport=self._transport).inc(submitted)
            _obs.registry.gauge("rpc.mux.inflight",
                                transport=self._transport).set(inflight)
        if submitted:
            if not self._loop_alive:
                self._ensure_loop()
            if need_wake:
                self._wake()
        return calls

    def _complete(self, call, value=None, error=None, outcome="ok"):
        """Resolve one pending call (demux loop or close())."""
        with self._cond:
            if self._pending.pop(call.xid, None) is None:
                return  # already resolved
            inflight = len(self._pending)
            # Stats and value land before _done so a waiter that
            # returns from result() sees them fully written; a late
            # duplicate cannot reach here (the pop above is the
            # ownership check).
            call.stats.elapsed_s = time.monotonic() - call.started
            call._value = value
            call._error = error
            call._done = True
            self._cond.notify_all()
        self._account_completion(call, outcome)
        if _obs.enabled:
            _obs.registry.gauge("rpc.mux.inflight",
                                transport=self._transport).set(inflight)

    def _complete_batch(self, resolutions):
        """Resolve several calls with one lock round-trip.

        The demux loop drains every queued datagram before it parks
        again; resolving replies one at a time would pay a lock
        acquisition plus a notify per message.  Batching turns a
        64-reply burst into one acquisition and one ``notify_all``.
        ``resolutions`` is ``[(call, value, error, outcome), ...]``;
        entries another path already resolved are skipped (the pop is
        the ownership check, as in :meth:`_complete`).
        """
        if not resolutions:
            return
        now = time.monotonic()
        done = []
        with self._cond:
            for call, value, error, outcome in resolutions:
                if self._pending.pop(call.xid, None) is None:
                    continue
                call.stats.elapsed_s = now - call.started
                call._value = value
                call._error = error
                call._done = True
                done.append((call, outcome))
            inflight = len(self._pending)
            if done:
                self._cond.notify_all()
        for call, outcome in done:
            self._account_completion(call, outcome)
        if done and _obs.enabled:
            _obs.registry.gauge("rpc.mux.inflight",
                                transport=self._transport).set(inflight)

    def _fail_all_pending(self, error_factory):
        """Resolve every pending call with a typed error (connection
        death, close)."""
        with self._mux_lock:
            calls = list(self._pending.values())
        for call in calls:
            error = error_factory(call)
            self._complete(call, error=error, outcome=type(error).__name__)

    def _pop_flushable(self, now):
        """Queued calls ready to transmit (respects the batch window);
        resolved calls (deadline hit before the first send) are skipped."""
        with self._mux_lock:
            if not self._sendq:
                return []
            if (self.batch_window_s
                    and len(self._sendq) < self.max_inflight
                    and now - self._sendq[0].queued_at < self.batch_window_s):
                return []
            calls = [call for call in self._sendq if not call.done()]
            self._sendq.clear()
        return calls

    def _next_wakeup_in(self, now):
        """Seconds until the earliest timer (retransmit, deadline, or
        batch-window expiry), clamped to the idle tick.

        Loop-thread only.  Unlocked reads are benign: a submit landing
        after them performs the empty->nonempty wakeup, so the idle
        tick can never strand a call; and only this thread removes
        from the send queue, so the head peek cannot race away.  The
        pending table is never scanned here — ``_timer_floor`` is the
        maintained lower bound.
        """
        if not self._pending and not self._sendq:
            return 0.2
        earliest = self._timer_floor
        if self._sendq:
            when = (self._sendq[0].queued_at + self.batch_window_s
                    if self.batch_window_s else now)
            if when < earliest:
                earliest = when
        return min(max(earliest - now, 0.0), 0.2)

    def _stop_engine(self, error_factory):
        """Shut the demux loop down and resolve whatever is left."""
        with self._cond:
            self._closed = True
            thread = self._loop_thread
            self._cond.notify_all()  # wake window-admission waiters
        self._wake()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        self._fail_all_pending(error_factory)
        try:
            self._wake_r.close()
            self._wake_w.close()
        except OSError:
            pass

    # -- per-transport hooks ----------------------------------------------

    def _initial_window(self):
        raise NotImplementedError

    def _account_completion(self, call, outcome):
        raise NotImplementedError

    def _demux_loop(self):
        raise NotImplementedError


def _timeout_error_for(call, prog):
    """The typed error for a call that exhausted its budget."""
    if call.deadline is not None and call.deadline.expired:
        return RpcDeadlineExceeded(
            f"mux call (prog={prog}, proc={call.proc}) exceeded its"
            f" deadline of {call.deadline.budget_s}s"
            f" ({call.stats.attempts} attempts,"
            f" {call.stats.retransmissions} retransmissions)"
        ), "deadline"
    return RpcTimeoutError(
        f"mux call (prog={prog}, proc={call.proc}) timed out"
        f" ({call.stats.attempts} attempts,"
        f" {call.stats.retransmissions} retransmissions)"
    ), "timeout"


class MuxUdpClient(_MuxEngine, UdpClient):
    """A UDP client carrying up to ``max_inflight`` concurrent xids
    over one socket.

    :meth:`call_async` returns a :class:`PendingCall`; :meth:`call` is
    the synchronous shim (``call_async(...).result()``), so the class
    drops into :class:`~repro.rpc.resilience.FailoverClient` via its
    ``client_factory`` hook.  Each in-flight call keeps the serial
    client's adaptive retransmission discipline — its own backoff
    window, grown and jittered per silent interval — but all calls
    share one demux loop and one socket instead of a thread each.

    ``batch_window_s`` > 0 holds the first queued call back to gather
    a fuller batch; the default 0 flushes whatever has accumulated
    each time the loop wakes (concurrent submitters still coalesce).
    ``max_batch_bytes`` bounds a batch datagram (MTU discipline).
    """

    _transport = "udp"

    def __init__(self, host, port, prog, vers, max_inflight=64,
                 batch_window_s=0.0, max_batch_bytes=UDPMSGSIZE, **kwargs):
        super().__init__(host, port, prog, vers, **kwargs)
        self._init_engine(max_inflight, batch_window_s,
                          min(max_batch_bytes, self.bufsize))
        #: the demux loop's private receive buffer (single reader)
        self._mux_recv_buffer = bytearray(self.bufsize)

    # -- public surface ----------------------------------------------------

    def call_async(self, proc, args=None, xdr_args=None, xdr_res=None,
                   deadline=None):
        """Submit one call; returns a :class:`PendingCall`."""
        return self._submit(proc, args, xdr_args, xdr_res, deadline)

    def call(self, proc, args=None, xdr_args=None, xdr_res=None,
             deadline=None):
        return self.call_async(proc, args, xdr_args, xdr_res,
                               deadline).result()

    def close(self):
        self._stop_engine(
            lambda call: RpcConnectionError(
                f"mux client closed with call (proc={call.proc},"
                f" xid={call.xid}) in flight"
            )
        )
        self.sock.close()

    # -- engine hooks ------------------------------------------------------

    def _initial_window(self):
        return min(self.wait, self.max_wait)

    def _account_completion(self, call, outcome):
        # UdpClient._finish_call: lifetime counters + obs, exactly once.
        self._finish_call(call.stats, outcome)

    # -- the demux loop ----------------------------------------------------

    def _demux_loop(self):
        while True:
            if self._closed:
                return
            now = time.monotonic()
            timeout = self._next_wakeup_in(now)
            try:
                readable, _, _ = select.select(
                    [self.sock, self._wake_r], [], [], timeout
                )
            except OSError:
                return  # socket closed under us mid-shutdown
            if _obs.enabled:
                _obs.registry.counter("rpc.mux.wakeups", side="client",
                                      transport="udp").inc()
            if self._closed:
                return
            if self._wake_r in readable:
                self._drain_wakeups()
            self._flush_sends()
            if self.sock in readable:
                self._drain_socket()
            self._fire_timers()

    def _flush_sends(self):
        now = time.monotonic()
        calls = self._pop_flushable(now)
        if not calls:
            return
        group = []
        group_bytes = batch_overhead(0)
        for call in calls:
            size = len(call.request) + 4
            if group and group_bytes + size > self.max_batch_bytes:
                self._send_group(group, now)
                group, group_bytes = [], batch_overhead(0)
            group.append(call)
            group_bytes += size
        if group:
            self._send_group(group, now)

    def _send_group(self, group, now):
        if len(group) == 1:
            payload = group[0].request
        else:
            payload = pack_batch([call.request for call in group])
        span = None
        if _obs.enabled:
            _obs.registry.histogram("rpc.mux.batch_size", side="client",
                                    transport="udp").observe(len(group))
            span = _obs.span("mux.flush", side="client", transport="udp",
                             messages=len(group), bytes=len(payload))
        try:
            self.sock.sendto(payload, self.address)
        except FaultInjected as exc:
            for call in group:
                self._complete(call, error=exc, outcome="FaultInjected")
            if span is not None:
                span.end(outcome="fault")
            return
        except OSError:
            pass  # unreachable peer: the retransmit timer recovers
        if span is not None:
            span.end()
        self.batches_sent += 1
        self.messages_batched += len(group)
        earliest = float("inf")
        for call in group:
            call.stats.attempts += 1
            call.stats.backoff_schedule.append(call.window)
            call.next_send_at = now + call.window
            if call.next_send_at < earliest:
                earliest = call.next_send_at
        if earliest < self._timer_floor:
            with self._mux_lock:
                if earliest < self._timer_floor:
                    self._timer_floor = earliest

    def _drain_socket(self):
        resolutions = []
        while True:
            try:
                nbytes = self.sock.recv_into(self._mux_recv_buffer)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break
            data = memoryview(self._mux_recv_buffer)[:nbytes]
            try:
                messages = unpack_batch(data)
            except RpcProtocolError:
                self.garbage_datagrams += 1
                continue
            if messages is None:
                self._deliver(data, resolutions)
            else:
                for message in messages:
                    self._deliver(message, resolutions)
        self._complete_batch(resolutions)

    def _deliver(self, message, resolutions):
        """Parse one reply and append its resolution to
        ``resolutions`` (flushed in one batch by the drain loop)."""
        if len(message) < 4:
            self.garbage_datagrams += 1
            return
        xid = int.from_bytes(message[0:4], "big")
        # Lock-free probe: dict.get is atomic under the GIL, and
        # _complete_batch re-checks ownership with a locked pop, so
        # the worst a racing close() costs is one redundant parse.
        call = self._pending.get(xid)
        if call is None:
            # Late answer to a retransmitted-and-resolved call, or a
            # duplicate after completion: count and drop.
            self.unknown_xids += 1
            self.stale_replies += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.mux.unknown_xids",
                                      transport="udp").inc()
            return
        try:
            matched, value = self.parse_reply(message, xid, call.proc,
                                              call.xdr_res)
        except (XdrError, RpcProtocolError):
            call.stats.garbage_datagrams += 1
            return
        except RpcError as exc:
            # A server verdict for *our* xid (denial, PROG_UNAVAIL,
            # SYSTEM_ERR shed, ...): the call resolves typed.
            resolutions.append((call, None, exc, type(exc).__name__))
            return
        if not matched:
            call.stats.stale_replies += 1
            return
        resolutions.append((call, value, None, "ok"))

    def _fire_timers(self):
        if not self._pending:
            return
        now = time.monotonic()
        if now < self._timer_floor:
            return  # no timer can be due yet; skip the scan
        due = []
        floor = float("inf")
        with self._mux_lock:
            for call in self._pending.values():
                when = min(call.hard_end, call.next_send_at)
                if when <= now:
                    due.append(call)
                elif when < floor:
                    floor = when
            self._timer_floor = floor
        refloor = floor
        for call in due:
            if call.done():
                continue
            if now >= call.hard_end:
                error, outcome = _timeout_error_for(call, self.prog)
                self._complete(call, error=error, outcome=outcome)
                continue
            if call.stats.attempts and now >= call.next_send_at:
                budget = self.retry_budget
                if budget is not None and not budget.try_retry():
                    self._complete(
                        call,
                        error=RpcRetryBudgetExhausted(
                            f"retry budget exhausted for mux call"
                            f" (prog={self.prog}, proc={call.proc})"
                            f" after {call.stats.attempts} attempt(s)"
                        ),
                        outcome="RpcRetryBudgetExhausted",
                    )
                    continue
                call.stats.retransmissions += 1
                call.stats.attempts += 1
                call.window = self._next_window(call.window)
                call.stats.backoff_schedule.append(call.window)
                call.next_send_at = now + call.window
                if call.deadline is not None:
                    # Honest budget on the wire for propagated calls
                    # (no-op when the request carries no deadline cred).
                    stamp_deadline(call.request, call.deadline)
                try:
                    # Retransmissions are always raw single messages —
                    # the batch a call first rode in is not replayed.
                    self.sock.sendto(call.request, self.address)
                except FaultInjected as exc:
                    self._complete(call, error=exc,
                                   outcome="FaultInjected")
                    continue
                except OSError:
                    pass
            # Still pending: its rearmed timers belong in the floor.
            refloor = min(refloor, call.hard_end, call.next_send_at)
        if refloor < floor:
            with self._mux_lock:
                if refloor < self._timer_floor:
                    self._timer_floor = refloor


class MuxTcpClient(_MuxEngine, TcpClient):
    """A TCP client pipelining up to ``max_inflight`` concurrent xids
    over one connection.

    Submissions are coalesced into one ``send`` of several record-
    marked messages (standard record marking, so any server that
    processes records as they arrive sees plain pipelining).  Replies
    may return in any order; the demux loop resolves them by xid.  On
    connection death every in-flight call resolves with a typed
    :class:`~repro.errors.RpcConnectionError` — never a hang — and
    :meth:`reconnect` revives the client in place.
    """

    _transport = "tcp"

    def __init__(self, host, port, prog, vers, max_inflight=64,
                 batch_window_s=0.0, max_batch_bytes=1 << 20, **kwargs):
        super().__init__(host, port, prog, vers, **kwargs)
        self._init_engine(max_inflight, batch_window_s, max_batch_bytes)
        self._assembler = RecordAssembler()
        self._outbuf = bytearray()
        self._broken = None

    # -- public surface ----------------------------------------------------

    def call_async(self, proc, args=None, xdr_args=None, xdr_res=None,
                   deadline=None):
        """Submit one call; returns a :class:`PendingCall`."""
        if self._broken is not None:
            raise RpcConnectionError(
                f"mux connection is down ({self._broken}); reconnect()"
                f" to revive"
            )
        return self._submit(proc, args, xdr_args, xdr_res, deadline)

    def call(self, proc, args=None, xdr_args=None, xdr_res=None,
             deadline=None):
        return self.call_async(proc, args, xdr_args, xdr_res,
                               deadline).result()

    def reconnect(self, deadline=None):
        """Re-establish the connection and restart the engine.

        Pending calls from the dead connection have already resolved
        with :class:`~repro.errors.RpcConnectionError`; the engine
        state (assembler, output buffer, demux loop) is reset so the
        revived client starts clean.
        """
        self._halt_loop()
        # A voluntary reconnect with calls still pending must not
        # strand them: they resolve typed like any connection death.
        self._fail_all_pending(
            lambda call: RpcConnectionError(
                f"reconnect with call (proc={call.proc},"
                f" xid={call.xid}) in flight"
            )
        )
        super().reconnect(deadline)
        with self._mux_lock:
            self._assembler = RecordAssembler()
            self._outbuf = bytearray()
            self._broken = None
            self._closed = False
        return self

    def close(self):
        self._stop_engine(
            lambda call: RpcConnectionError(
                f"mux client closed with call (proc={call.proc},"
                f" xid={call.xid}) in flight"
            )
        )
        super().close()

    def _halt_loop(self):
        """Stop the demux loop without failing pending calls (they are
        failed by the death path or by close())."""
        with self._cond:
            self._closed = True
            thread = self._loop_thread
            self._cond.notify_all()  # wake window-admission waiters
        self._wake()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        with self._mux_lock:
            self._loop_thread = None

    # -- engine hooks ------------------------------------------------------

    def _initial_window(self):
        return 0.0  # no retransmission on a stream

    def _account_completion(self, call, outcome):
        # TcpClient._finish_call: per-call counters + latency histogram.
        self._finish_call(call.started, outcome)

    # -- the demux loop ----------------------------------------------------

    def _demux_loop(self):
        try:
            self.sock.setblocking(False)
        except OSError:
            return
        while True:
            if self._closed:
                return
            now = time.monotonic()
            timeout = self._next_wakeup_in(now)
            writers = [self.sock] if self._outbuf else []
            try:
                readable, writable, _ = select.select(
                    [self.sock, self._wake_r], writers, [], timeout
                )
            except OSError:
                return
            if _obs.enabled:
                _obs.registry.counter("rpc.mux.wakeups", side="client",
                                      transport="tcp").inc()
            if self._closed:
                return
            if self._wake_r in readable:
                self._drain_wakeups()
            self._flush_sends()
            if writable:
                self._pump_outbuf()
            if self.sock in readable:
                if not self._drain_stream():
                    return
            self._fire_timers()

    def _flush_sends(self):
        now = time.monotonic()
        calls = self._pop_flushable(now)
        if not calls:
            self._pump_outbuf()
            return
        chunk = bytearray()
        for call in calls:
            chunk += mark_record(call.request)
            call.stats.attempts += 1
        self._outbuf += chunk
        if _obs.enabled:
            _obs.registry.histogram("rpc.mux.batch_size", side="client",
                                    transport="tcp").observe(len(calls))
            span = _obs.span("mux.flush", side="client", transport="tcp",
                             messages=len(calls), bytes=len(chunk))
            span.end()
        self.batches_sent += 1
        self.messages_batched += len(calls)
        self._pump_outbuf()

    def _pump_outbuf(self):
        """Write as much buffered output as the socket accepts."""
        while self._outbuf:
            try:
                sent = self.sock.send(self._outbuf)
            except (BlockingIOError, InterruptedError):
                return
            except (BrokenPipeError, ConnectionResetError,
                    ConnectionAbortedError, OSError) as exc:
                self._connection_died(exc)
                return
            if sent <= 0:
                return
            del self._outbuf[:sent]

    def _drain_stream(self):
        """Read and deliver; False ends the loop (connection death)."""
        resolutions = []

        def flush():
            # One locked batch per read burst (see _complete_batch).
            # Always before _connection_died: a reply fully received
            # ahead of the death must resolve with its real value, not
            # be swept into the connection-error sweep.
            self._complete_batch(resolutions)
            del resolutions[:]

        while True:
            try:
                chunk = self.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                flush()
                return True
            except (ConnectionResetError, ConnectionAbortedError,
                    OSError) as exc:
                flush()
                self._connection_died(exc)
                return False
            if not chunk:
                flush()
                self._connection_died("peer closed the connection")
                return False
            try:
                records = self._assembler.feed(chunk)
            except RpcProtocolError as exc:
                flush()
                self._connection_died(exc)
                return False
            for record in records:
                self._deliver(record, resolutions)
            if len(chunk) < (1 << 16):
                flush()
                return True

    def _connection_died(self, cause):
        self._broken = cause
        with self._mux_lock:
            self._closed = True
        self._fail_all_pending(
            lambda call: RpcConnectionError(
                f"connection lost with call (proc={call.proc},"
                f" xid={call.xid}) in flight: {cause}"
            )
        )

    def _deliver(self, record, resolutions):
        if len(record) < 4:
            return
        xid = int.from_bytes(record[0:4], "big")
        # Lock-free probe (see MuxUdpClient._deliver): the locked pop
        # in _complete_batch is the authoritative resolution point.
        call = self._pending.get(xid)
        if call is None:
            self.unknown_xids += 1
            self.stale_replies += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.mux.unknown_xids",
                                      transport="tcp").inc()
                _obs.registry.counter("rpc.client.stale_replies",
                                      transport="tcp").inc()
            return
        try:
            matched, value = self.parse_reply(record, xid, call.proc,
                                              call.xdr_res)
        except (XdrError, RpcProtocolError):
            # A framed-but-undecodable reply cannot be retransmitted on
            # a stream: the call resolves typed rather than hanging.
            resolutions.append((
                call, None,
                RpcProtocolError(f"undecodable reply for xid {xid}"),
                "RpcProtocolError",
            ))
            return
        except RpcError as exc:
            resolutions.append((call, None, exc, type(exc).__name__))
            return
        if not matched:
            call.stats.stale_replies += 1
            return
        resolutions.append((call, value, None, "ok"))

    def _fire_timers(self):
        if not self._pending:
            return
        now = time.monotonic()
        if now < self._timer_floor:
            return  # no deadline can be due yet; skip the scan
        due = []
        floor = float("inf")
        with self._mux_lock:
            for call in self._pending.values():
                if call.hard_end <= now:
                    due.append(call)
                elif call.hard_end < floor:
                    floor = call.hard_end
            self._timer_floor = floor
        for call in due:
            if call.done():
                continue
            error, outcome = _timeout_error_for(call, self.prog)
            self._complete(call, error=error, outcome=outcome)
