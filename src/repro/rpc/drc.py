"""Duplicate-request reply cache (DRC).

Sun RPC over UDP is at-least-once: a client whose reply datagram was
lost retransmits the same xid, and a naive server re-executes the
handler — visible (and wrong) for non-idempotent procedures, and pure
waste for idempotent ones.  The classic fix (Juszczak, USENIX '89;
the plan9port ``libsunrpc`` exemplar leaves it as "for now, no reply
cache") is a bounded cache of recent replies keyed by the request
identity: a retransmission is answered by *replaying the recorded
reply bytes* instead of re-running the handler, upgrading the
observable semantics toward at-most-once.

:class:`DuplicateRequestCache` is that cache: a thread-safe LRU keyed
on ``(xid, caller address, prog, vers, proc)``.  Values are the raw
reply messages as immutable ``bytes`` — callers must never hand in a
view of pool-owned memory (the dispatcher's reply buffers are reused
per call; :meth:`put` defends by copying anything that is not already
``bytes``).
"""

import threading
from collections import OrderedDict

from repro import obs as _obs


#: placeholder value for a request whose handler is currently running
#: (claimed but not yet answered) — never returned as a reply.
_IN_PROGRESS = object()


class DuplicateRequestCache:
    """A bounded LRU of raw replies keyed by request identity."""

    def __init__(self, capacity=256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        #: replayed retransmissions (the handler was *not* re-run)
        self.hits = 0
        #: first-sighting requests
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: duplicates dropped because the original was still executing
        #: (a worker pool can hold the original and a retransmission
        #: concurrently; the claim protocol runs the handler once)
        self.in_progress_drops = 0
        #: replies inserted by :meth:`absorb` (replication, recovery) —
        #: counted apart from :attr:`stores` so "stores == handler
        #: executions" stays provable on a replicated fleet
        self.absorbed = 0
        #: optional ``callback(key, reply)`` fired after each handler-
        #: produced :meth:`put` (never for absorbs, so a replicated
        #: entry cannot echo back out through the replicator)
        self.on_store = None

    @staticmethod
    def key(xid, caller, prog, vers, proc):
        """The cache key for one request.

        ``caller`` is the transport-level peer identity — the UDP
        source ``(host, port)`` or the TCP peer name.  Two clients
        behind the same xid never collide because their source
        addresses differ.
        """
        return (xid, caller, prog, vers, proc)

    def get(self, key):
        """The cached raw reply for ``key``, or None (counts a miss).

        A key whose handler is still executing (claimed via
        :meth:`claim` but not yet answered) reads as a miss — the
        dispatcher then calls :meth:`claim` itself and learns, under
        the lock, that the request is in flight.
        """
        with self._lock:
            reply = self._entries.get(key)
            if reply is None or reply is _IN_PROGRESS:
                reply = None
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if _obs.enabled:
            name = "rpc.drc.hits" if reply is not None else "rpc.drc.misses"
            _obs.registry.counter(name).inc()
        return reply

    def claim(self, key):
        """Atomically claim ``key`` for execution.

        Closes the check-then-execute race a worker pool opens: the
        original request and a retransmission of the same xid can both
        miss :meth:`get` and sit in the queue together.  The dispatcher
        calls ``claim`` immediately before running the handler:

        * ``True`` — the caller owns the key and must execute the
          handler (and later :meth:`put` the reply);
        * ``False`` — another thread is executing this key right now;
          the caller must drop the request (the client retransmits and
          is answered from the cache);
        * ``bytes`` — the reply finished between :meth:`get` and here;
          replay it.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = _IN_PROGRESS
                return True
            if entry is _IN_PROGRESS:
                self.in_progress_drops += 1
                return False
            self._entries.move_to_end(key)
            self.hits += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.drc.hits").inc()
        return entry

    def begin(self, key):
        """Fused :meth:`get` + :meth:`claim` under one lock round-trip.

        The staged residual routes (``SvcRegistry.stage_route``) decode
        their arguments with one ``struct`` call, so the two separate
        lock acquisitions of get-then-claim dominate the DRC's cost on
        that path.  Semantics match the two-step protocol exactly:

        * ``True`` — first sighting; the caller owns the key, must run
          the handler and :meth:`put` (or :meth:`abandon`) the result;
        * ``False`` — the original is still executing; drop;
        * ``bytes`` — answered already; replay.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = _IN_PROGRESS
                self.misses += 1
                result = True
            elif entry is _IN_PROGRESS:
                self.in_progress_drops += 1
                self.misses += 1
                result = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                result = entry
        if _obs.enabled:
            name = ("rpc.drc.misses" if result is True or result is False
                    else "rpc.drc.hits")
            _obs.registry.counter(name).inc()
        return result

    def abandon(self, key):
        """Release an unanswered claim (the dispatch died before
        producing a reply) so a retransmission can execute."""
        with self._lock:
            if self._entries.get(key) is _IN_PROGRESS:
                del self._entries[key]

    def put(self, key, reply):
        """Record the reply sent for ``key``.

        ``reply`` is copied to immutable ``bytes`` unless it already is
        — cached replies must outlive the dispatcher's pooled reply
        buffers.
        """
        if not isinstance(reply, bytes):
            reply = bytes(reply)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = reply
            self.stores += 1
            evicted = self._evict_over_capacity()
            entries = len(self._entries)
        if _obs.enabled:
            _obs.registry.counter("rpc.drc.stores").inc()
            if evicted:
                _obs.registry.counter("rpc.drc.evictions").inc(evicted)
            _obs.registry.gauge("rpc.drc.entries").set(entries)
        if self.on_store is not None:
            self.on_store(key, reply)

    def _evict_over_capacity(self):
        """Lock held by caller: evict least-recently-used *answered*
        entries past capacity; a claimed key must survive until its
        owner calls put/abandon, or the single-execution guarantee
        breaks.  Returns the eviction count."""
        evicted = 0
        scanned = 0
        while len(self._entries) > self.capacity:
            if scanned >= len(self._entries):
                break
            old_key, old_value = self._entries.popitem(last=False)
            if old_value is _IN_PROGRESS:
                self._entries[old_key] = old_value
                self._entries.move_to_end(old_key)
                scanned += 1
                continue
            self.evictions += 1
            evicted += 1
        return evicted

    def absorb(self, key, reply):
        """Insert a reply produced *elsewhere* — by a replicating peer
        or by journal recovery — without counting it as a store.

        A key already present (answered or claimed) wins over the
        absorbed copy: the local protocol state is authoritative.
        Returns True when the entry was inserted.
        """
        if not isinstance(reply, bytes):
            reply = bytes(reply)
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = reply
            self.absorbed += 1
            evicted = self._evict_over_capacity()
            entries = len(self._entries)
        if _obs.enabled:
            _obs.registry.counter("rpc.drc.absorbed").inc()
            if evicted:
                _obs.registry.counter("rpc.drc.evictions").inc(evicted)
            _obs.registry.gauge("rpc.drc.entries").set(entries)
        return True

    def snapshot_entries(self):
        """A point-in-time list of every *answered* ``(key, reply)``.

        Claimed-but-unanswered keys are skipped — a claim is protocol
        state of one incarnation, not a durable fact.  Used by journal
        compaction (:mod:`repro.rpc.durable`) and replication catch-up
        (:mod:`repro.rpc.fleet`).
        """
        with self._lock:
            return [(key, value) for key, value in self._entries.items()
                    if value is not _IN_PROGRESS]

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def summary(self):
        """Counters for reports and tests."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "in_progress_drops": self.in_progress_drops,
                "absorbed": self.absorbed,
            }

    def __repr__(self):
        return (
            f"DuplicateRequestCache(capacity={self.capacity},"
            f" entries={len(self)}, hits={self.hits})"
        )
