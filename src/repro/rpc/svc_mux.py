"""``repro.rpc.svc_mux`` — readiness-driven (event-loop) server
transports.

The threaded servers (:mod:`repro.rpc.svc_udp`,
:mod:`repro.rpc.svc_tcp`) spend a thread per connection (TCP) or a
blocking receive loop plus a worker pool (UDP).  The mux tier replaces
both with one :mod:`selectors` event loop per server:

* :class:`MuxUdpServer` — a non-blocking datagram socket drained to
  EAGAIN on every readiness wakeup, so a burst of N datagrams costs
  one ``select`` return instead of N; understands the client-side
  batch envelope (:func:`repro.rpc.mux.unpack_batch`) and answers a
  batched request datagram with a batched reply datagram.
* :class:`MuxTcpServer` — accept, read, and write readiness all
  multiplexed in one loop; per-connection incremental record
  reassembly (:class:`repro.rpc.record.RecordAssembler`) and buffered
  writes with write-interest registration under backpressure.  No
  thread per connection: 1,000 idle connections cost 1,000 registered
  keys, not 1,000 stacks.

Dispatch feeds the same machinery as the threaded tier — the
registry's generic/fastpath/DRC paths, drain mode, and overload
control.  ``workers=N`` hands decoded requests to the existing bounded
:class:`~repro.rpc.resilience.WorkerPool` (replies are routed back to
the loop thread for transmission); ``workers=0`` dispatches inline on
the loop thread, which is the fastest configuration for cheap handlers
(no cross-thread handoff) and the right one for the loopback bench.
Either way a full queue *sheds* (SYSTEM_ERR reply, never silence, and
never a DRC store).

Telemetry: ``rpc.mux.wakeups{side=server}`` and
``rpc.mux.batch_size{side=server}`` complement the client-side series
(see :mod:`repro.obs.catalog`).
"""

import collections
import selectors
import socket
import threading
import time

from repro import obs as _obs
from repro.errors import FaultInjected, RpcProtocolError
from repro.rpc.client import UDPMSGSIZE
from repro.rpc.durable import attach_journal
from repro.rpc.faults import FaultySocket
from repro.rpc.mux import batch_overhead, mark_record, pack_batch, \
    unpack_batch
from repro.rpc.record import RecordAssembler
from repro.rpc.resilience import InflightLimiter, WorkerPool

__all__ = ["MuxTcpServer", "MuxUdpServer", "make_server"]


class _EventLoopMixin:
    """Selector + wakeup plumbing shared by both mux servers."""

    def _init_loop(self):
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ,
                                self._on_wakeup)
        self._stop = threading.Event()
        self._thread = None

    def _wake(self):
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass

    def _on_wakeup(self, key, mask):
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def serve_forever(self):
        while not self._stop.is_set():
            events = self._selector.select(timeout=0.2)
            if _obs.enabled:
                _obs.registry.counter("rpc.mux.wakeups", side="server",
                                      transport=self._transport).inc()
            for key, mask in events:
                if self._stop.is_set():
                    return
                key.data(key, mask)
            self._between_events()

    def _between_events(self):
        pass

    def start(self):
        """Run the server in a daemon thread; returns (host, port)."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.serve_forever,
            name=f"svcmux-{self._transport}:{self.port}", daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def _stop_loop(self):
        self._stop.set()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        try:
            self._selector.close()
        except OSError:
            pass
        try:
            self._wake_r.close()
            self._wake_w.close()
        except OSError:
            pass

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False


class MuxUdpServer(_EventLoopMixin):
    """Event-loop UDP server, batch-envelope aware.

    Keeps the threaded :class:`~repro.rpc.svc_udp.UdpServer` contract —
    same constructor knobs, same ``requests_handled`` /
    ``requests_shed`` counters, same :meth:`drain`/:meth:`stop`
    lifecycle — so replicas and benches swap tiers with one line.

    A datagram carrying the batch envelope is unwrapped and each inner
    call dispatched; the replies are re-batched into (at most
    ``bufsize``-sized) reply datagrams, so a 32-call batch costs one
    receive syscall and one send syscall instead of 64.
    """

    _transport = "udp"

    def __init__(self, registry, host="127.0.0.1", port=0,
                 bufsize=UDPMSGSIZE, fastpath=False, drc=True,
                 fault_plan=None, workers=0, queue_depth=64,
                 drc_dir=None, drc_fsync=None, online_spec=None,
                 queue_policy=None, queue_target_s=None,
                 queue_interval_s=None):
        self.registry = registry
        self.bufsize = bufsize
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((host, port))
        self.sock.setblocking(False)
        self.host, self.port = self.sock.getsockname()
        if fault_plan is not None:
            self.sock = FaultySocket(self.sock, fault_plan)
        self.requests_handled = 0
        self.requests_shed = 0
        self._counters_lock = threading.Lock()
        self._recv_buffer = bytearray(bufsize)
        if fastpath and hasattr(registry, "enable_fastpath"):
            registry.enable_fastpath()
        if drc and hasattr(registry, "enable_drc"):
            if getattr(registry, "drc", None) is None:
                registry.enable_drc()
        #: DRC persistence: recover, then journal (off unless
        #: ``drc_dir`` / ``REPRO_DRC_DIR`` is set).
        self.journal = attach_journal(registry, drc_dir=drc_dir,
                                      fsync=drc_fsync)
        #: profile-guided online specialization (caller-owned; see
        #: :mod:`repro.specialized.online`).
        if online_spec is not None and hasattr(registry,
                                               "install_profiler"):
            online_spec.attach_server(registry)
            online_spec.ensure_started()
        self._inflight = InflightLimiter()
        self._pool = None
        #: worker-produced replies routed back to the loop for sending
        self._replyq = collections.deque()
        if workers:
            self._pool = WorkerPool(
                workers, queue_depth, self._work,
                name=f"svcmux-udp:{self.port}",
                queue_policy=queue_policy,
                queue_target_s=queue_target_s,
                queue_interval_s=queue_interval_s,
                shed_handler=self._shed_sojourn,
            )
        self._init_loop()
        self._selector.register(self.sock, selectors.EVENT_READ,
                                self._on_readable)

    @property
    def fastpath_enabled(self):
        return True  # the loop always receives into its own buffer

    @property
    def inflight(self):
        if self._pool is not None:
            return self._pool.inflight
        return self._inflight.inflight

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, data, addr, received_at=None):
        """One RPC message → reply bytes (or None); any thread."""
        reply = self.registry.dispatch_bytes(data, caller=addr,
                                             received_at=received_at)
        with self._counters_lock:
            self.requests_handled += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.server.datagrams",
                                  transport="udp").inc()
        return reply

    def _work(self, item):
        data, addr, received_at = item
        reply = self._dispatch(data, addr, received_at)
        if reply is not None:
            # sendto on a datagram socket is atomic and thread-safe;
            # workers answer directly instead of round-tripping through
            # the loop (single messages only — batches are loop-side).
            self._send(reply, addr)

    def _shed(self, data, addr, reason="queue_full"):
        shed = None
        if hasattr(self.registry, "shed_reply_bytes"):
            shed = self.registry.shed_reply_bytes(data, reason=reason)
        with self._counters_lock:
            self.requests_shed += 1
        return shed

    def _shed_sojourn(self, item):
        """Answer a request the CoDel controller shed after queueing
        (worker thread; sendto is atomic and thread-safe)."""
        data, addr, _received_at = item
        reply = self._shed(data, addr, reason="sojourn")
        if reply is not None:
            self._send(reply, addr)

    def _send(self, payload, addr):
        try:
            self.sock.sendto(payload, addr)
        except (FaultInjected, OSError):
            pass  # a lost reply is the client's retransmit to recover

    # -- the event loop ----------------------------------------------------

    def _on_readable(self, key, mask):
        """Drain every queued datagram for one readiness wakeup."""
        while not self._stop.is_set():
            try:
                nbytes, addr = self.sock.recvfrom_into(self._recv_buffer)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            data = memoryview(self._recv_buffer)[:nbytes]
            received_at = time.monotonic()
            try:
                messages = unpack_batch(data)
            except RpcProtocolError:
                continue  # truncated envelope: drop like garbage
            if messages is None:
                self._handle_single(data, addr, received_at)
            else:
                self._handle_batch(messages, addr, received_at)

    def _handle_single(self, data, addr, received_at=None):
        if self._pool is not None:
            # The receive buffer is reused; workers need their own copy.
            if not self._pool.submit((bytes(data), addr, received_at)):
                reply = self._shed(data, addr)
                if reply is not None:
                    self._send(reply, addr)
            return
        self._inflight.try_acquire()
        try:
            reply = self._dispatch(data, addr, received_at)
        finally:
            self._inflight.release()
        if reply is not None:
            self._send(reply, addr)

    def _handle_batch(self, messages, addr, received_at=None):
        """Dispatch a batched request datagram; batch the replies.

        With workers, each inner message is queued (or shed)
        individually — a full queue sheds the overflow, not the whole
        batch.  Inline, the replies are grouped into reply datagrams of
        at most ``bufsize`` bytes.
        """
        if _obs.enabled:
            _obs.registry.histogram("rpc.mux.batch_size", side="server",
                                    transport="udp").observe(len(messages))
        if self._pool is not None:
            for message in messages:
                if not self._pool.submit((bytes(message), addr,
                                          received_at)):
                    reply = self._shed(message, addr)
                    if reply is not None:
                        self._send(reply, addr)
            return
        replies = []
        # One limiter slot, one counter-lock acquisition, and one
        # datagram count for the whole batch: the per-message work in
        # this loop is exactly one dispatch.
        dispatch = self.registry.dispatch_bytes
        self._inflight.try_acquire()
        try:
            for message in messages:
                reply = dispatch(message, caller=addr,
                                 received_at=received_at)
                if reply is not None:
                    replies.append(reply)
        finally:
            self._inflight.release()
        with self._counters_lock:
            self.requests_handled += len(messages)
        if _obs.enabled:
            _obs.registry.counter("rpc.server.datagrams",
                                  transport="udp").inc()
        self._send_replies(replies, addr)

    def _send_replies(self, replies, addr):
        """Send replies, re-batching under the datagram size cap."""
        group = []
        group_bytes = batch_overhead(0)
        for reply in replies:
            size = len(reply) + 4
            if group and group_bytes + size > self.bufsize:
                self._flush_reply_group(group, addr)
                group, group_bytes = [], batch_overhead(0)
            group.append(reply)
            group_bytes += size
        if group:
            self._flush_reply_group(group, addr)

    def _flush_reply_group(self, group, addr):
        if len(group) == 1:
            self._send(group[0], addr)
        else:
            self._send(pack_batch(group), addr)

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout=5.0):
        """Graceful drain (same contract as the threaded server)."""
        if hasattr(self.registry, "begin_drain"):
            self.registry.begin_drain()
        if self._pool is not None:
            return self._pool.wait_idle(timeout)
        return self._inflight.wait_idle(timeout)

    def stop(self):
        self._stop_loop()
        if self._pool is not None:
            self._pool.stop()
        if self.journal is not None:
            self.journal.close()
        self.sock.close()


class _MuxConn:
    """Per-connection state for :class:`MuxTcpServer`."""

    __slots__ = ("sock", "peer", "assembler", "outbuf", "writing")

    def __init__(self, sock, peer, max_record):
        self.sock = sock
        self.peer = peer
        self.assembler = RecordAssembler(max_size=max_record)
        self.outbuf = bytearray()
        #: registered for EVENT_WRITE (backpressure) when True
        self.writing = False


class MuxTcpServer(_EventLoopMixin):
    """Event-loop TCP server: one thread, N connections.

    Pipelined requests on one connection are answered in arrival
    order; several replies ready at once coalesce into one ``send``.
    ``max_inflight`` sheds (SYSTEM_ERR) over the cap exactly like the
    threaded tier; ``workers=N`` moves dispatch to the bounded pool
    with replies routed back to the loop thread.
    """

    _transport = "tcp"

    def __init__(self, registry, host="127.0.0.1", port=0, backlog=128,
                 fastpath=False, drc=True, fault_plan=None,
                 max_inflight=None, workers=0, queue_depth=64,
                 max_record=1 << 24, drc_dir=None, drc_fsync=None,
                 online_spec=None, queue_policy=None,
                 queue_target_s=None, queue_interval_s=None):
        self.registry = registry
        self.max_record = max_record
        self._limiter = InflightLimiter(max_inflight)
        self.requests_shed = 0
        self.requests_handled = 0
        self._counters_lock = threading.Lock()
        if fastpath and hasattr(registry, "enable_fastpath"):
            registry.enable_fastpath()
        if drc and hasattr(registry, "enable_drc"):
            if getattr(registry, "drc", None) is None:
                registry.enable_drc()
        #: DRC persistence: recover, then journal (off unless
        #: ``drc_dir`` / ``REPRO_DRC_DIR`` is set).
        self.journal = attach_journal(registry, drc_dir=drc_dir,
                                      fsync=drc_fsync)
        #: profile-guided online specialization (caller-owned; see
        #: :mod:`repro.specialized.online`).
        if online_spec is not None and hasattr(registry,
                                               "install_profiler"):
            online_spec.attach_server(registry)
            online_spec.ensure_started()
        self.fault_plan = fault_plan
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind((host, port))
        self.sock.listen(backlog)
        self.sock.setblocking(False)
        self.host, self.port = self.sock.getsockname()
        self.connections_accepted = 0
        self._conns = {}
        self._pool = None
        self._replyq = collections.deque()
        self._replyq_lock = threading.Lock()
        if workers:
            self._pool = WorkerPool(
                workers, queue_depth, self._work,
                name=f"svcmux-tcp:{self.port}",
                queue_policy=queue_policy,
                queue_target_s=queue_target_s,
                queue_interval_s=queue_interval_s,
                shed_handler=self._shed_sojourn,
            )
        self._init_loop()
        self._selector.register(self.sock, selectors.EVENT_READ,
                                self._on_accept)

    @property
    def inflight(self):
        if self._pool is not None:
            return self._pool.inflight
        return self._limiter.inflight

    # -- accept / read / write callbacks -----------------------------------

    def _on_accept(self, key, mask):
        while not self._stop.is_set():
            try:
                raw, peer = self.sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            raw.setblocking(False)
            wire = raw
            if self.fault_plan is not None:
                wire = FaultySocket(wire, self.fault_plan)
            conn = _MuxConn(wire, peer, self.max_record)
            self._conns[raw.fileno()] = conn
            self.connections_accepted += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.server.connections",
                                      transport="tcp").inc()
            self._selector.register(
                wire, selectors.EVENT_READ,
                lambda key, mask, conn=conn: self._on_conn_event(conn, mask),
            )

    def _on_conn_event(self, conn, mask):
        if mask & selectors.EVENT_READ:
            self._read_conn(conn)
        if mask & selectors.EVENT_WRITE:
            self._write_conn(conn)

    def _read_conn(self, conn):
        while True:
            try:
                chunk = conn.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                return
            except (FaultInjected, OSError):
                self._close_conn(conn)
                return
            if not chunk:
                self._close_conn(conn)
                return
            try:
                records = conn.assembler.feed(chunk)
            except RpcProtocolError:
                # A desynced or abusive peer ends its own connection,
                # never the server.
                self._close_conn(conn)
                return
            if records and _obs.enabled:
                _obs.registry.histogram(
                    "rpc.mux.batch_size", side="server", transport="tcp"
                ).observe(len(records))
            received_at = time.monotonic()
            for record in records:
                self._handle_record(conn, record, received_at)
            if len(chunk) < (1 << 16):
                return

    def _handle_record(self, conn, record, received_at=None):
        if self._pool is not None:
            if not self._pool.submit((conn, record, received_at)):
                reply = self._shed(record)
                if reply is not None:
                    self._queue_reply(conn, reply)
            return
        if not self._limiter.try_acquire():
            reply = self._shed(record)
        else:
            try:
                reply = self._dispatch(record, conn.peer, received_at)
            finally:
                self._limiter.release()
        if reply is not None:
            self._queue_reply(conn, reply)

    def _dispatch(self, record, peer, received_at=None):
        reply = self.registry.dispatch_bytes(record, caller=peer,
                                             received_at=received_at)
        with self._counters_lock:
            self.requests_handled += 1
        return reply

    def _shed(self, record, reason="queue_full"):
        shed = None
        if hasattr(self.registry, "shed_reply_bytes"):
            shed = self.registry.shed_reply_bytes(record, reason=reason)
        with self._counters_lock:
            self.requests_shed += 1
        return shed

    def _shed_sojourn(self, item):
        """CoDel sojourn shed (worker thread): the SYSTEM_ERR reply
        rides back to the loop thread like any worker reply."""
        conn, record, _received_at = item
        reply = self._shed(record, reason="sojourn")
        if reply is not None:
            with self._replyq_lock:
                self._replyq.append((conn, reply))
            self._wake()

    def _work(self, item):
        """Worker-side dispatch; the reply rides back via the loop."""
        conn, record, received_at = item
        reply = self._dispatch(record, conn.peer, received_at)
        if reply is not None:
            with self._replyq_lock:
                self._replyq.append((conn, reply))
            self._wake()

    def _between_events(self):
        """Drain worker replies onto their connections (loop thread)."""
        while True:
            with self._replyq_lock:
                if not self._replyq:
                    return
                conn, reply = self._replyq.popleft()
            self._queue_reply(conn, reply)

    def _queue_reply(self, conn, reply):
        """Append a record-marked reply and pump the connection."""
        if conn.sock.fileno() < 0:
            return  # connection already closed
        conn.outbuf += mark_record(reply)
        self._write_conn(conn)

    def _write_conn(self, conn):
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except (FaultInjected, OSError):
                self._close_conn(conn)
                return
            if sent <= 0:
                break
            del conn.outbuf[:sent]
        # Register/unregister write interest as backpressure demands.
        if conn.outbuf and not conn.writing:
            conn.writing = True
            self._selector.modify(
                conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE,
                lambda key, mask, conn=conn: self._on_conn_event(conn, mask),
            )
        elif not conn.outbuf and conn.writing:
            conn.writing = False
            self._selector.modify(
                conn.sock, selectors.EVENT_READ,
                lambda key, mask, conn=conn: self._on_conn_event(conn, mask),
            )

    def _close_conn(self, conn):
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._conns.pop(conn.sock.fileno(), None)
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout=5.0):
        """Graceful drain (same contract as the threaded server)."""
        if hasattr(self.registry, "begin_drain"):
            self.registry.begin_drain()
        if self._pool is not None:
            return self._pool.wait_idle(timeout)
        return self._limiter.wait_idle(timeout)

    def stop(self):
        self._stop_loop()
        if self._pool is not None:
            self._pool.stop()
        if self.journal is not None:
            self.journal.close()
        for conn in list(self._conns.values()):
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self._conns.clear()
        self.sock.close()


def make_server(registry, transport="udp", engine="threaded", **kwargs):
    """Engine-selected server construction.

    ``engine="threaded"`` returns the classic
    :class:`~repro.rpc.svc_udp.UdpServer` /
    :class:`~repro.rpc.svc_tcp.TcpServer`; ``engine="mux"`` returns the
    event-loop tier.  Both tiers of a transport accept the same core
    knobs, so callers switch engines without touching the rest of the
    configuration.
    """
    if engine not in ("threaded", "mux"):
        raise ValueError(f"unknown engine {engine!r}")
    if transport == "udp":
        if engine == "mux":
            return MuxUdpServer(registry, **kwargs)
        from repro.rpc.svc_udp import UdpServer

        return UdpServer(registry, **kwargs)
    if transport == "tcp":
        if engine == "mux":
            return MuxTcpServer(registry, **kwargs)
        from repro.rpc.svc_tcp import TcpServer

        kwargs.pop("workers", None)
        kwargs.pop("queue_depth", None)
        kwargs.pop("queue_policy", None)
        kwargs.pop("queue_target_s", None)
        kwargs.pop("queue_interval_s", None)
        return TcpServer(registry, **kwargs)
    raise ValueError(f"unknown transport {transport!r}")
