"""TCP RPC server transport (``svctcp``) with record marking."""

import socket
import threading

from repro import obs as _obs
from repro.errors import FaultInjected, RpcProtocolError
from repro.rpc.faults import FaultySocket
from repro.rpc.record import read_record, write_record


class TcpServer:
    """Serves a :class:`~repro.rpc.server.SvcRegistry` over TCP.

    Each accepted connection gets its own daemon thread, processing
    record-marked calls until the peer disconnects.

    ``drc=True`` enables the registry's duplicate-request reply cache
    (keyed per peer) — duplicates cannot arise inside one healthy TCP
    stream, but a client that reconnects and replays an xid after a
    torn connection is answered from the cache rather than re-executing
    the handler.

    ``fault_plan`` wraps every accepted connection in a
    :class:`~repro.rpc.faults.FaultySocket` (stream semantics: delay,
    corrupt, abort), faulting outgoing replies.
    """

    def __init__(self, registry, host="127.0.0.1", port=0, backlog=16,
                 fastpath=False, drc=True, fault_plan=None):
        self.registry = registry
        #: fast path: template/pooled replies live in the registry (the
        #: reply pool is thread-safe, so connection threads share it).
        if fastpath and hasattr(registry, "enable_fastpath"):
            registry.enable_fastpath()
        if drc and hasattr(registry, "enable_drc"):
            if getattr(registry, "drc", None) is None:
                registry.enable_drc()
        self.fault_plan = fault_plan
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind((host, port))
        self.sock.listen(backlog)
        self.sock.settimeout(0.2)
        self.host, self.port = self.sock.getsockname()
        self._stop = threading.Event()
        self._thread = None
        self._conn_threads = []
        self.connections_accepted = 0

    def _serve_connection(self, conn, peer):
        conn.settimeout(30.0)
        if self.fault_plan is not None:
            conn = FaultySocket(conn, self.fault_plan)
        try:
            while not self._stop.is_set():
                try:
                    data = read_record(conn)
                except (RpcProtocolError, socket.timeout, OSError):
                    # RpcConnectionError subclasses RpcProtocolError:
                    # a lost or misbehaving peer ends this connection
                    # thread, never the server.
                    return
                reply = self.registry.dispatch_bytes(data, caller=peer)
                if reply is not None:
                    try:
                        write_record(conn, reply)
                    except (RpcProtocolError, FaultInjected):
                        return
        finally:
            conn.close()

    def serve_forever(self):
        while not self._stop.is_set():
            try:
                conn, addr = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stop.is_set():
                    return
                raise
            self.connections_accepted += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.server.connections",
                                      transport="tcp").inc()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, addr), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)

    def start(self):
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"svctcp:{self.port}", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.sock.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False
