"""TCP RPC server transport (``svctcp``) with record marking."""

import socket
import threading

from repro import obs as _obs
from repro.errors import FaultInjected, RpcProtocolError
from repro.rpc.durable import attach_journal
from repro.rpc.faults import FaultySocket
from repro.rpc.record import read_record, write_record
from repro.rpc.resilience import InflightLimiter


class TcpServer:
    """Serves a :class:`~repro.rpc.server.SvcRegistry` over TCP.

    Each accepted connection gets its own daemon thread, processing
    record-marked calls until the peer disconnects.

    ``drc=True`` enables the registry's duplicate-request reply cache
    (keyed per peer) — duplicates cannot arise inside one healthy TCP
    stream, but a client that reconnects and replays an xid after a
    torn connection is answered from the cache rather than re-executing
    the handler.

    ``max_inflight=N`` bounds concurrently dispatching requests across
    all connections; requests over the cap are *shed* — answered with
    a ``SYSTEM_ERR`` reply instead of queuing without bound.  Graceful
    shutdown: :meth:`drain` puts the registry into drain mode and waits
    for in-flight dispatches to finish.

    ``fault_plan`` wraps every accepted connection in a
    :class:`~repro.rpc.faults.FaultySocket` (stream semantics: delay,
    corrupt, abort), faulting outgoing replies.
    """

    def __init__(self, registry, host="127.0.0.1", port=0, backlog=16,
                 fastpath=False, drc=True, fault_plan=None,
                 max_inflight=None, drc_dir=None, drc_fsync=None,
                 online_spec=None):
        self.registry = registry
        self._limiter = InflightLimiter(max_inflight)
        #: requests answered with an over-cap shed reply
        self.requests_shed = 0
        #: fast path: template/pooled replies live in the registry (the
        #: reply pool is thread-safe, so connection threads share it).
        if fastpath and hasattr(registry, "enable_fastpath"):
            registry.enable_fastpath()
        if drc and hasattr(registry, "enable_drc"):
            if getattr(registry, "drc", None) is None:
                registry.enable_drc()
        #: DRC persistence: recover, then journal (off unless
        #: ``drc_dir`` / ``REPRO_DRC_DIR`` is set).
        self.journal = attach_journal(registry, drc_dir=drc_dir,
                                      fsync=drc_fsync)
        #: profile-guided online specialization (caller-owned; see
        #: :mod:`repro.specialized.online`).
        if online_spec is not None and hasattr(registry,
                                               "install_profiler"):
            online_spec.attach_server(registry)
            online_spec.ensure_started()
        self.fault_plan = fault_plan
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind((host, port))
        self.sock.listen(backlog)
        self.sock.settimeout(0.2)
        self.host, self.port = self.sock.getsockname()
        self._stop = threading.Event()
        self._thread = None
        self._conn_threads = []
        self._conns = set()
        self._conns_lock = threading.Lock()
        self.connections_accepted = 0

    def _serve_connection(self, raw_conn, peer):
        raw_conn.settimeout(30.0)
        conn = raw_conn
        if self.fault_plan is not None:
            conn = FaultySocket(conn, self.fault_plan)
        try:
            while not self._stop.is_set():
                try:
                    data = read_record(conn)
                except (RpcProtocolError, socket.timeout, OSError):
                    # RpcConnectionError subclasses RpcProtocolError:
                    # a lost or misbehaving peer ends this connection
                    # thread, never the server.
                    return
                if not self._limiter.try_acquire():
                    # Over the in-flight cap: answer, don't queue.
                    reply = None
                    if hasattr(self.registry, "shed_reply_bytes"):
                        reply = self.registry.shed_reply_bytes(
                            data, reason="queue_full"
                        )
                    self.requests_shed += 1
                else:
                    try:
                        reply = self.registry.dispatch_bytes(data,
                                                             caller=peer)
                    finally:
                        self._limiter.release()
                if reply is not None:
                    try:
                        write_record(conn, reply)
                    except (RpcProtocolError, FaultInjected):
                        return
        finally:
            conn.close()
            with self._conns_lock:
                self._conns.discard(raw_conn)

    def serve_forever(self):
        while not self._stop.is_set():
            try:
                conn, addr = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stop.is_set():
                    return
                raise
            self.connections_accepted += 1
            with self._conns_lock:
                self._conns.add(conn)
            if _obs.enabled:
                _obs.registry.counter("rpc.server.connections",
                                      transport="tcp").inc()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, addr), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)

    @property
    def inflight(self):
        """Requests currently mid-dispatch across all connections."""
        return self._limiter.inflight

    def drain(self, timeout=5.0):
        """Graceful drain: registry into drain mode, wait for in-flight
        dispatches to finish.  Connections stay open (DRC replays and
        health checks still answer); call :meth:`stop` to tear down.
        Returns True once idle."""
        if hasattr(self.registry, "begin_drain"):
            self.registry.begin_drain()
        return self._limiter.wait_idle(timeout)

    def start(self):
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"svctcp:{self.port}", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self):
        self._stop.set()
        # Sever established connections so peers observe the stop as
        # RpcConnectionError immediately — a connection thread blocked
        # in read_record() would otherwise keep answering until its
        # socket timeout.  Drain first for a graceful goodbye.
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self.journal is not None:
            self.journal.close()
        self.sock.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False
