"""``repro.rpc.fleet`` — DRC replication and fleet membership.

:mod:`repro.rpc.durable` makes at-most-once survive a *restart* of one
server; this module makes it survive a *failover* between servers, and
gives clients a live view of which servers exist at all:

* **DRC replication** — a small anti-entropy protocol on an internal
  RPC program (:data:`REPL_PROG`, the same user-number-space pattern
  as the health program).  A :class:`DrcReplicator` hooks the cache's
  ``on_store`` callback and streams every handler-produced reply to N
  peer replicas in batches; the receiving side
  (:func:`install_replication_sink`) *absorbs* each entry —
  :meth:`~repro.rpc.drc.DuplicateRequestCache.absorb` never overwrites
  local protocol state and never re-fires ``on_store``, so a
  replicated entry cannot echo back out.  A duplicate request landing
  on a peer replica is then replayed byte-identically instead of
  re-executed.  Pushes carry the origin's **incarnation** number and
  the sink *fences* them: once it has seen incarnation *k* from an
  origin, pushes from any incarnation < *k* (a zombie process, a
  delayed datagram from before a crash) are dropped whole.

* **Fleet membership** — :class:`FleetDirectory` builds on the
  portmapper (:mod:`repro.rpc.pmap`): members *register* an endpoint
  (which also takes a portmapper binding) and then *heartbeat* it;
  the directory answers ``MEMBERS`` queries with only the endpoints
  whose heartbeat is fresher than the liveness window.
  :class:`FleetMember` is the server-side heartbeat loop and
  :class:`FleetWatcher` the client-side consumer: it polls the
  directory and feeds the live endpoint list into
  :meth:`~repro.rpc.resilience.FailoverClient.set_endpoints`, so a
  failover client stops probing dead replicas and picks up restarted
  ones without reconfiguration.

Entries on the wire use the exact journal codec
(:func:`repro.rpc.durable.encode_entry`), so a replica's absorbed
entry is bit-for-bit what local journal recovery would have produced.

Telemetry: ``rpc.fleet.*`` (see :mod:`repro.obs.catalog`).
"""

import struct
import threading
import time
from dataclasses import dataclass

from repro import obs as _obs
from repro.errors import RpcError, XdrError
from repro.rpc.durable import decode_entry, encode_entry
from repro.rpc.pmap import IPPROTO_UDP, PortMapper
from repro.xdr import XdrOp, xdr_bool, xdr_bytes, xdr_string, xdr_u_long

__all__ = [
    "DrcReplicator",
    "FLEET_PROG",
    "FLEET_VERS",
    "FLEETPROC_HEARTBEAT",
    "FLEETPROC_MEMBERS",
    "FLEETPROC_REGISTER",
    "FleetDirectory",
    "FleetMember",
    "FleetWatcher",
    "Membership",
    "REPL_PROG",
    "REPL_VERS",
    "REPLPROC_PUSH",
    "ReplicationSink",
    "fleet_members",
    "install_replication_sink",
]

#: the internal DRC-replication program (user-defined number space,
#: next to HEALTH_PROG = 0x20FFFFFF).
REPL_PROG = 0x20FFFFFE
REPL_VERS = 1
#: procedure 1 pushes a batch of DRC entries; returns absorbed count.
REPLPROC_PUSH = 1

#: the fleet-membership directory program.
FLEET_PROG = 0x20FFFFFD
FLEET_VERS = 1
FLEETPROC_REGISTER = 1
FLEETPROC_HEARTBEAT = 2
FLEETPROC_MEMBERS = 3

#: sanity bound on entries per replication push.
_MAX_PUSH_ENTRIES = 4096
#: sanity bound on members in one directory reply.
_MAX_MEMBERS = 4096


# -- XDR filters -----------------------------------------------------------

def xdr_repl_push(xdrs, value):
    """``(origin, incarnation, [entry blobs])`` on the wire."""
    if xdrs.x_op == XdrOp.ENCODE:
        origin, incarnation, blobs = value
        xdr_string(xdrs, origin)
        xdr_u_long(xdrs, incarnation)
        xdr_u_long(xdrs, len(blobs))
        for blob in blobs:
            xdr_bytes(xdrs, blob)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        origin = xdr_string(xdrs, None)
        incarnation = xdr_u_long(xdrs, None)
        count = xdr_u_long(xdrs, None)
        if count > _MAX_PUSH_ENTRIES:
            raise XdrError(f"replication push of {count} entries")
        blobs = [xdr_bytes(xdrs, None) for _ in range(count)]
        return (origin, incarnation, blobs)
    return value


@dataclass(frozen=True)
class Membership:
    """One member's registration: who serves what, where."""

    member_id: str
    prog: int
    vers: int
    prot: int
    host: str
    port: int
    incarnation: int


def xdr_membership(xdrs, value):
    if xdrs.x_op == XdrOp.ENCODE:
        xdr_string(xdrs, value.member_id)
        xdr_u_long(xdrs, value.prog)
        xdr_u_long(xdrs, value.vers)
        xdr_u_long(xdrs, value.prot)
        xdr_string(xdrs, value.host)
        xdr_u_long(xdrs, value.port)
        xdr_u_long(xdrs, value.incarnation)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        return Membership(
            xdr_string(xdrs, None),
            xdr_u_long(xdrs, None),
            xdr_u_long(xdrs, None),
            xdr_u_long(xdrs, None),
            xdr_string(xdrs, None),
            xdr_u_long(xdrs, None),
            xdr_u_long(xdrs, None),
        )
    return value


def xdr_member_query(xdrs, value):
    """``(prog, vers, prot)`` — which serving set to list."""
    if xdrs.x_op == XdrOp.ENCODE:
        prog, vers, prot = value
        xdr_u_long(xdrs, prog)
        xdr_u_long(xdrs, vers)
        xdr_u_long(xdrs, prot)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        return (xdr_u_long(xdrs, None), xdr_u_long(xdrs, None),
                xdr_u_long(xdrs, None))
    return value


def xdr_endpoint_list(xdrs, value):
    """A list of ``(host, port)`` endpoints."""
    if xdrs.x_op == XdrOp.ENCODE:
        xdr_u_long(xdrs, len(value))
        for host, port in value:
            xdr_string(xdrs, host)
            xdr_u_long(xdrs, port)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        count = xdr_u_long(xdrs, None)
        if count > _MAX_MEMBERS:
            raise XdrError(f"member list of {count} endpoints")
        return [(xdr_string(xdrs, None), xdr_u_long(xdrs, None))
                for _ in range(count)]
    return value


# -- replication: the receiving side ---------------------------------------

class ReplicationSink:
    """Absorbs replication pushes into a local DRC with incarnation
    fencing.

    Per origin member, the sink remembers the highest incarnation it
    has accepted; a push from a lower incarnation — a zombie of a
    process the fleet already restarted, or a datagram delayed from
    before a crash — is rejected whole (returns 0 absorbed).  Within
    an accepted push, each entry is absorbed individually; a key the
    local cache already holds (answered here first, or mid-claim)
    keeps its local value.
    """

    def __init__(self, drc):
        self.drc = drc
        self._lock = threading.Lock()
        #: origin member id -> highest incarnation accepted
        self.fences = {}
        self.pushes = 0
        self.entries_absorbed = 0
        self.entries_skipped = 0
        self.fenced = 0
        self.undecodable = 0

    def push(self, value):
        origin, incarnation, blobs = value
        with self._lock:
            known = self.fences.get(origin, 0)
            if incarnation < known:
                self.fenced += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.fleet.repl_fenced").inc()
                return 0
            self.fences[origin] = max(known, incarnation)
            self.pushes += 1
        absorbed = 0
        for blob in blobs:
            try:
                key, reply = decode_entry(blob)
            except (ValueError, struct.error):
                # decode_entry's documented malformation signals.
                self.undecodable += 1
                continue
            if self.drc.absorb(key, reply):
                absorbed += 1
            else:
                self.entries_skipped += 1
        with self._lock:
            self.entries_absorbed += absorbed
        if _obs.enabled:
            _obs.registry.counter("rpc.fleet.repl_entries").inc(len(blobs))
        return absorbed

    def summary(self):
        with self._lock:
            return {
                "pushes": self.pushes,
                "entries_absorbed": self.entries_absorbed,
                "entries_skipped": self.entries_skipped,
                "fenced": self.fenced,
                "undecodable": self.undecodable,
                "origins": dict(self.fences),
            }


def install_replication_sink(registry, drc=None):
    """Mount the replication program on a registry; returns the sink.

    Uses the registry's own DRC by default (enable it first).  The
    program is drain-exempt like health: a draining replica keeps
    absorbing its peers' entries, so the failover target stays warm.
    """
    drc = drc if drc is not None else registry.drc
    if drc is None:
        raise ValueError("enable the registry's DRC before replication")
    sink = ReplicationSink(drc)
    registry.register(REPL_PROG, REPL_VERS, REPLPROC_PUSH, sink.push,
                      xdr_args=xdr_repl_push, xdr_res=xdr_u_long)
    if hasattr(registry, "_drain_exempt"):
        registry._drain_exempt.add((REPL_PROG, REPL_VERS))
    registry.replication_sink = sink
    return sink


# -- replication: the pushing side -----------------------------------------

class DrcReplicator:
    """Streams handler-produced DRC entries to N peer replicas.

    Hooks ``drc.on_store`` (chaining any earlier hook, e.g. the
    journal's — the journal appends first, then the entry is queued
    for its peers) and drains the queue from one background thread:
    entries are batched up to ``batch_max`` per push and sent to every
    peer over UDP.  A peer that is down just drops its copy — counted,
    never fatal, and the next anti-entropy catch-up or the peer's own
    journal covers the gap.

    ``catch_up=True`` seeds the queue with the cache's current
    entries, so a replicator attached after recovery pushes the
    recovered state too.
    """

    def __init__(self, drc, peers, origin, incarnation=1, batch_max=64,
                 flush_interval_s=0.05, timeout=1.0, catch_up=False):
        self.drc = drc
        self.peers = [tuple(peer) for peer in peers]
        self.origin = origin
        self.incarnation = incarnation
        self.batch_max = batch_max
        self.flush_interval_s = flush_interval_s
        self.timeout = timeout
        self._queue = []
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._stopping = False
        self._clients = {}
        self.pushes = 0
        self.push_errors = 0
        self.entries_sent = 0
        self.dropped = 0
        if catch_up:
            with self._lock:
                self._queue.extend(
                    (key, reply) for key, reply in drc.snapshot_entries()
                    if key[2] != REPL_PROG
                )
        previous = drc.on_store

        def previous_then_replicate(key, reply):
            if previous is not None:
                previous(key, reply)
            # Never replicate the replication program's own replies:
            # a push's cached reply firing on_store would queue a push,
            # whose reply would store and queue another — chatter that
            # sustains itself forever and evicts real entries.
            if key[2] != REPL_PROG:
                self.offer(key, reply)

        drc.on_store = previous_then_replicate
        self._thread = threading.Thread(
            target=self._run, name=f"drc-repl:{origin}", daemon=True
        )
        self._thread.start()

    def offer(self, key, reply):
        """Queue one entry for the peers (on_store hook; never blocks
        dispatch)."""
        with self._lock:
            if self._stopping:
                self.dropped += 1
                return
            self._queue.append((key, reply))
            self._ready.notify()

    def _client(self, peer):
        client = self._clients.get(peer)
        if client is None:
            from repro.rpc.clnt_udp import UdpClient

            host, port = peer
            client = UdpClient(host, port, REPL_PROG, REPL_VERS,
                               timeout=self.timeout, wait=0.05, jitter=0.0)
            self._clients[peer] = client
        return client

    def _push_batch(self, batch):
        blobs = []
        for key, reply in batch:
            try:
                blobs.append(encode_entry(key, reply))
            except (TypeError, ValueError, struct.error):
                # a malformed in-memory key cannot be framed; skip it.
                self.dropped += 1
        if not blobs:
            return
        payload = (self.origin, self.incarnation, blobs)
        for peer in self.peers:
            try:
                self._client(peer).call(
                    REPLPROC_PUSH, payload,
                    xdr_args=xdr_repl_push, xdr_res=xdr_u_long,
                )
                self.pushes += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.fleet.repl_pushes").inc()
            except (RpcError, OSError):
                self.push_errors += 1
                if _obs.enabled:
                    _obs.registry.counter(
                        "rpc.fleet.repl_push_errors").inc()
                # A broken client stays broken; rebuild next batch.
                client = self._clients.pop(peer, None)
                if client is not None:
                    try:
                        client.close()
                    except OSError:
                        pass
        self.entries_sent += len(blobs)

    def _run(self):
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._ready.wait(self.flush_interval_s)
                    if not self._queue and self._stopping:
                        return
                if not self._queue and self._stopping:
                    return
                batch = self._queue[:self.batch_max]
                del self._queue[:self.batch_max]
            self._push_batch(batch)

    def flush(self, timeout=2.0):
        """Block until the queue has drained (best effort)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._queue:
                    return True
            time.sleep(0.01)
        return False

    def stop(self, flush=True):
        if flush:
            self.flush()
        with self._lock:
            self._stopping = True
            self._ready.notify_all()
        self._thread.join(timeout=2.0)
        for client in self._clients.values():
            try:
                client.close()
            except OSError:
                pass
        self._clients.clear()

    def summary(self):
        with self._lock:
            queued = len(self._queue)
        return {
            "peers": len(self.peers),
            "pushes": self.pushes,
            "push_errors": self.push_errors,
            "entries_sent": self.entries_sent,
            "queued": queued,
            "dropped": self.dropped,
        }


# -- membership: the directory ---------------------------------------------

@dataclass
class _MemberRecord:
    membership: Membership
    last_seen: float


class FleetDirectory:
    """The membership service: register, heartbeat, list-the-living.

    Built on the portmapper: every registration also takes a
    portmapper binding (first registrant wins, classic pmap
    semantics), so ordinary ``pmap_getport`` clients resolve *a*
    member while fleet-aware clients ask ``MEMBERS`` for *all live*
    members.  A member is live while its last heartbeat (or
    registration) is fresher than ``liveness_s``; expired members
    drop out of ``MEMBERS`` answers and must re-register (their
    heartbeat answers False).

    Registration is incarnation-fenced like replication: a
    registration bearing a lower incarnation than the one on file for
    that member id is refused — a restarted member always announces a
    higher incarnation, so only zombies are turned away.
    """

    def __init__(self, liveness_s=3.0, clock=time.monotonic):
        self.liveness_s = liveness_s
        self._clock = clock
        self._lock = threading.Lock()
        #: member_id -> _MemberRecord
        self._members = {}
        self.pmap = PortMapper()
        self.registrations = 0
        self.heartbeats = 0
        self.expirations = 0

    def mount(self, registry):
        """Register the fleet procedures (and the portmapper's) on a
        registry."""
        self.pmap.mount(registry)
        registry.register(FLEET_PROG, FLEET_VERS, FLEETPROC_REGISTER,
                          self._register, xdr_args=xdr_membership,
                          xdr_res=xdr_bool)
        registry.register(FLEET_PROG, FLEET_VERS, FLEETPROC_HEARTBEAT,
                          self._heartbeat, xdr_args=xdr_string,
                          xdr_res=xdr_bool)
        registry.register(FLEET_PROG, FLEET_VERS, FLEETPROC_MEMBERS,
                          self._list_members, xdr_args=xdr_member_query,
                          xdr_res=xdr_endpoint_list)
        return registry

    def _prune(self, now):
        """Lock held by caller: forget members past the liveness
        window."""
        expired = [member_id for member_id, record in self._members.items()
                   if now - record.last_seen > self.liveness_s]
        for member_id in expired:
            del self._members[member_id]
            self.expirations += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.fleet.expirations").inc()

    def _register(self, membership):
        now = self._clock()
        with self._lock:
            self._prune(now)
            record = self._members.get(membership.member_id)
            if (record is not None
                    and membership.incarnation
                    < record.membership.incarnation):
                return False  # zombie: an older incarnation re-announcing
            self._members[membership.member_id] = _MemberRecord(
                membership, now
            )
            self.registrations += 1
            members = len(self._members)
        self.pmap.bindings.setdefault(
            (membership.prog, membership.vers, membership.prot),
            membership.port,
        )
        if _obs.enabled:
            _obs.registry.counter("rpc.fleet.registrations").inc()
            _obs.registry.gauge("rpc.fleet.members").set(members)
        return True

    def _heartbeat(self, member_id):
        now = self._clock()
        with self._lock:
            self._prune(now)
            record = self._members.get(member_id)
            if record is None:
                return False  # expired or never registered: re-register
            record.last_seen = now
            self.heartbeats += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.fleet.heartbeats").inc()
        return True

    def _list_members(self, query):
        prog, vers, prot = query
        now = self._clock()
        with self._lock:
            self._prune(now)
            endpoints = sorted(
                (record.membership.host, record.membership.port)
                for record in self._members.values()
                if record.membership.prog == prog
                and record.membership.vers == vers
                and (prot == 0 or record.membership.prot == prot)
            )
            members = len(self._members)
        if _obs.enabled:
            _obs.registry.gauge("rpc.fleet.members").set(members)
        return endpoints

    def live_members(self, prog, vers, prot=0):
        """In-process convenience mirror of the MEMBERS procedure."""
        return self._list_members((prog, vers, prot))


# -- membership: the member and the consumers ------------------------------

def fleet_members(directory, prog, vers, prot=IPPROTO_UDP, timeout=2.0):
    """Ask a remote directory for the live endpoints of a program."""
    from repro.rpc.clnt_udp import UdpClient

    host, port = directory
    with UdpClient(host, port, FLEET_PROG, FLEET_VERS, timeout=timeout,
                   wait=0.05, jitter=0.0) as client:
        return [tuple(endpoint) for endpoint in client.call(
            FLEETPROC_MEMBERS, (prog, vers, prot),
            xdr_args=xdr_member_query, xdr_res=xdr_endpoint_list,
        )]


class FleetMember:
    """The server-side registration + heartbeat loop.

    Registers ``membership`` with the directory, then heartbeats every
    ``period_s``; a heartbeat answered False (the directory expired or
    restarted) triggers re-registration.  Directory unreachability is
    retried forever — a member never gives up its seat voluntarily.
    """

    def __init__(self, directory, membership, period_s=0.5, timeout=1.0,
                 start=True):
        self.directory = tuple(directory)
        self.membership = membership
        self.period_s = period_s
        self.timeout = timeout
        self._stop = threading.Event()
        self._client = None
        self._thread = None
        self.registrations_sent = 0
        self.heartbeats_sent = 0
        self.errors = 0
        if start:
            self.start()

    def _directory_client(self):
        if self._client is None:
            from repro.rpc.clnt_udp import UdpClient

            host, port = self.directory
            self._client = UdpClient(host, port, FLEET_PROG, FLEET_VERS,
                                     timeout=self.timeout, wait=0.05,
                                     jitter=0.0)
        return self._client

    def _drop_client(self):
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def register_once(self):
        """One registration attempt; True when the directory said yes."""
        try:
            accepted = self._directory_client().call(
                FLEETPROC_REGISTER, self.membership,
                xdr_args=xdr_membership, xdr_res=xdr_bool,
            )
        except (RpcError, OSError):
            self.errors += 1
            self._drop_client()
            return False
        self.registrations_sent += 1
        return bool(accepted)

    def heartbeat_once(self):
        """One heartbeat; re-registers when the directory forgot us."""
        try:
            known = self._directory_client().call(
                FLEETPROC_HEARTBEAT, self.membership.member_id,
                xdr_args=xdr_string, xdr_res=xdr_bool,
            )
        except (RpcError, OSError):
            self.errors += 1
            self._drop_client()
            return False
        self.heartbeats_sent += 1
        if not known:
            return self.register_once()
        return True

    def _run(self):
        self.register_once()
        while not self._stop.wait(self.period_s):
            self.heartbeat_once()

    def start(self):
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run,
            name=f"fleet-member:{self.membership.member_id}", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._drop_client()


class FleetWatcher:
    """Feeds a directory's live endpoint list into a
    :class:`~repro.rpc.resilience.FailoverClient`.

    Polls ``MEMBERS`` every ``period_s`` and calls
    ``failover.set_endpoints`` whenever the list changed.  An empty
    answer (directory draining, every member between heartbeats) is
    *not* applied — a failover client with zero endpoints could never
    recover, so the watcher keeps the last non-empty view.
    """

    def __init__(self, failover, directory, prog=None, vers=None,
                 prot=IPPROTO_UDP, period_s=0.25, timeout=1.0,
                 start=True):
        self.failover = failover
        self.directory = tuple(directory)
        self.prog = prog if prog is not None else failover.prog
        self.vers = vers if vers is not None else failover.vers
        self.prot = prot
        self.period_s = period_s
        self.timeout = timeout
        self._stop = threading.Event()
        self._thread = None
        self.polls = 0
        self.refreshes = 0
        self.errors = 0
        self.last_view = list(failover.endpoints)
        if start:
            self.start()

    def poll_once(self):
        """One directory poll; True when the endpoint set changed."""
        try:
            endpoints = fleet_members(self.directory, self.prog, self.vers,
                                      prot=self.prot, timeout=self.timeout)
        except (RpcError, OSError):
            self.errors += 1
            return False
        self.polls += 1
        if not endpoints or endpoints == self.last_view:
            return False
        self.last_view = endpoints
        changed = self.failover.set_endpoints(endpoints)
        if changed:
            self.refreshes += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.fleet.refreshes").inc()
        return changed

    def _run(self):
        while not self._stop.wait(self.period_s):
            self.poll_once()

    def start(self):
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="fleet-watcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
