"""UDP RPC client (``clntudp_call`` of the paper's Figure 1).

Implements the Sun retransmission discipline, upgraded from the
classic fixed-interval retry to *adaptive* retransmission: send the
datagram, wait one backoff interval for a matching reply, retransmit
on silence with the interval growing exponentially (jittered, capped
at ``max_wait``), and give up when the total ``timeout`` budget is
exhausted.  Per-call statistics (attempts, the realized backoff
schedule, stale and garbage datagrams seen) land in
:attr:`UdpClient.last_call_stats`.

Two robustness guarantees the naive loop lacks:

* the per-try receive window is clamped to the remaining budget, and
  the *final* try always gets one full backoff interval to listen —
  the client never fires back-to-back retransmits in a sliver of
  budget near the deadline;
* undecodable datagrams (corruption, truncation) are counted and
  discarded like stale xids instead of failing the call — the
  retransmission discipline recovers the reply from the server (whose
  duplicate-request cache replays it without re-executing the
  handler).

With the fast path on (``fastpath=True`` or
:meth:`~repro.rpc.client.RpcClient.enable_fastpath`), the request is
serialized into a pooled buffer from a pre-built header template,
replies land in a pooled receive buffer via ``recv_into``, and
decoding reads a ``memoryview`` of that buffer — one complete call
performs no per-call buffer allocation.
"""

import random
import select
import socket
import time

from repro.errors import RpcTimeoutError, RpcProtocolError, XdrError
from repro.rpc.client import RpcClient, UDPMSGSIZE
from repro.rpc.faults import FaultySocket


class CallStats:
    """Per-call retransmission telemetry."""

    __slots__ = ("proc", "attempts", "retransmissions", "backoff_schedule",
                 "stale_replies", "garbage_datagrams", "elapsed_s")

    def __init__(self, proc):
        self.proc = proc
        #: datagrams sent for this call (1 == no retransmission)
        self.attempts = 0
        self.retransmissions = 0
        #: the receive window (seconds) granted to each attempt
        self.backoff_schedule = []
        #: well-formed replies bearing another call's xid
        self.stale_replies = 0
        #: datagrams that failed to decode at all (corruption, noise)
        self.garbage_datagrams = 0
        self.elapsed_s = 0.0

    def as_dict(self):
        return {
            "proc": self.proc,
            "attempts": self.attempts,
            "retransmissions": self.retransmissions,
            "backoff_schedule": list(self.backoff_schedule),
            "stale_replies": self.stale_replies,
            "garbage_datagrams": self.garbage_datagrams,
            "elapsed_s": self.elapsed_s,
        }

    def __repr__(self):
        return (
            f"CallStats(proc={self.proc}, attempts={self.attempts},"
            f" stale={self.stale_replies}, garbage={self.garbage_datagrams})"
        )


class UdpClient(RpcClient):
    """An RPC client over UDP.

    ``wait`` is the initial receive window; each silent retry grows it
    by ``backoff`` (default double), up to ``max_wait``, with ±
    ``jitter`` relative randomization so a fleet of clients does not
    retransmit in lockstep.  ``retrans_seed`` makes the jitter
    deterministic (tests); ``jitter=0`` disables it.  ``fault_plan``
    wraps the socket in a :class:`~repro.rpc.faults.FaultySocket`
    faulting outgoing requests.
    """

    def __init__(
        self,
        host,
        port,
        prog,
        vers,
        timeout=5.0,
        wait=0.5,
        max_wait=None,
        backoff=2.0,
        jitter=0.1,
        retrans_seed=None,
        bufsize=UDPMSGSIZE,
        fastpath=False,
        fault_plan=None,
        **kwargs,
    ):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        self.address = (host, port)
        self.timeout = timeout
        self.wait = wait
        self.max_wait = max_wait if max_wait is not None else max(
            wait, timeout / 2.0
        )
        self.backoff = backoff
        self.jitter = jitter
        self._jitter_rng = random.Random(retrans_seed)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        if fault_plan is not None:
            self.sock = FaultySocket(self.sock, fault_plan)
        #: retransmissions performed over the client's lifetime
        self.retransmissions = 0
        #: stale replies discarded over the client's lifetime
        self.stale_replies = 0
        #: undecodable datagrams discarded over the client's lifetime
        self.garbage_datagrams = 0
        #: :class:`CallStats` of the most recent call
        self.last_call_stats = None
        if fastpath:
            self.enable_fastpath()

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        xid = self.next_xid()
        send_buffer = None
        if self.fastpath_enabled and proc not in self._codecs:
            send_buffer, length = self.build_call_pooled(
                xid, proc, args, xdr_args
            )
            request = memoryview(send_buffer)[:length]
        else:
            request = self.build_call(xid, proc, args, xdr_args)
        try:
            return self._call_loop(request, xid, proc, xdr_res)
        finally:
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)

    def _next_window(self, window):
        """The next backoff interval: grow, jitter, cap."""
        grown = window * self.backoff
        if self.jitter:
            grown *= 1.0 + self.jitter * (
                2.0 * self._jitter_rng.random() - 1.0
            )
        return min(grown, self.max_wait)

    def _call_loop(self, request, xid, proc, xdr_res):
        stats = CallStats(proc)
        self.last_call_stats = stats
        started = time.monotonic()
        deadline = started + self.timeout
        window = min(self.wait, self.max_wait)
        while True:
            now = time.monotonic()
            if stats.attempts:
                if now >= deadline:
                    break
                self.retransmissions += 1
                stats.retransmissions += 1
            self.sock.sendto(request, self.address)
            stats.attempts += 1
            # Clamp the try to the remaining budget — but when the
            # budget no longer covers a full window, make this the
            # *final* try and still grant it the whole window: one
            # guaranteed full receive wait instead of a sliver followed
            # by a back-to-back retransmit.
            final = (deadline - now) <= window
            stats.backoff_schedule.append(window)
            reply = self._await_reply(xid, proc, xdr_res, now + window,
                                      stats)
            if reply is not None:
                stats.elapsed_s = time.monotonic() - started
                return reply[0]
            if final:
                break
            window = self._next_window(window)
        stats.elapsed_s = time.monotonic() - started
        raise RpcTimeoutError(
            f"RPC call (prog={self.prog}, proc={proc}) timed out"
            f" after {self.timeout}s"
            f" ({stats.attempts} attempts,"
            f" {stats.retransmissions} retransmissions)"
        )

    def _await_reply(self, xid, proc, xdr_res, try_deadline, stats):
        """Wait for a matching reply until ``try_deadline``; None means
        retransmit."""
        while True:
            remaining = try_deadline - time.monotonic()
            if remaining <= 0:
                return None
            readable, _, _ = select.select([self.sock], [], [], remaining)
            if not readable:
                return None
            if self.fastpath_enabled:
                recv_buffer = self.acquire_recv_buffer()
                try:
                    nbytes = self.sock.recv_into(recv_buffer)
                    data = memoryview(recv_buffer)[:nbytes]
                    matched, value = self._parse_tolerant(data, xid, proc,
                                                          xdr_res, stats)
                finally:
                    self.release_recv_buffer(recv_buffer)
            else:
                data, _addr = self.sock.recvfrom(self.bufsize)
                matched, value = self._parse_tolerant(data, xid, proc,
                                                      xdr_res, stats)
            if matched:
                return (value,)
            # Stale xid or garbage: keep listening within the window.

    def _parse_tolerant(self, data, xid, proc, xdr_res, stats):
        """``parse_reply`` that treats undecodable datagrams as noise.

        A corrupted or truncated datagram fails header or body decode
        with :class:`XdrError`/:class:`RpcProtocolError` *before* the
        xid is validated as ours — discard it and let retransmission
        recover.  Genuine server verdicts (denials, non-SUCCESS
        accepts) raise *after* the xid matched and propagate.
        """
        try:
            matched, value = self.parse_reply(data, xid, proc, xdr_res)
        except (XdrError, RpcProtocolError):
            self.garbage_datagrams += 1
            stats.garbage_datagrams += 1
            return False, None
        if not matched:
            self.stale_replies += 1
            stats.stale_replies += 1
        return matched, value

    def close(self):
        self.sock.close()
