"""UDP RPC client (``clntudp_call`` of the paper's Figure 1).

Implements the Sun retransmission discipline, upgraded from the
classic fixed-interval retry to *adaptive* retransmission: send the
datagram, wait one backoff interval for a matching reply, retransmit
on silence with the interval growing exponentially (jittered, capped
at ``max_wait``), and give up when the total ``timeout`` budget is
exhausted.  Per-call statistics (attempts, the realized backoff
schedule, stale and garbage datagrams seen) land in
:attr:`UdpClient.last_call_stats`.

Two robustness guarantees the naive loop lacks:

* the per-try receive window is clamped to the remaining budget, and
  the *final* try always gets one full backoff interval to listen —
  the client never fires back-to-back retransmits in a sliver of
  budget near the deadline;
* undecodable datagrams (corruption, truncation) are counted and
  discarded like stale xids instead of failing the call — the
  retransmission discipline recovers the reply from the server (whose
  duplicate-request cache replays it without re-executing the
  handler).

With the fast path on (``fastpath=True`` or
:meth:`~repro.rpc.client.RpcClient.enable_fastpath`), the request is
serialized into a pooled buffer from a pre-built header template,
replies land in a pooled receive buffer via ``recv_into``, and
decoding reads a ``memoryview`` of that buffer — one complete call
performs no per-call buffer allocation.

Telemetry (``repro.obs``): when observability is enabled, each call
emits a ``client.call`` span with ``client.encode`` / ``client.send``
/ ``client.wait`` / ``client.decode`` children, and the per-call
:class:`CallStats` fold into the cumulative client counters and the
metrics registry at exactly one point (:meth:`UdpClient._finish_call`)
— during the call only the per-call stats are touched, so a
retransmitted attempt can never be double-counted against both the
in-flight lifetime counters and the finished call's numbers.
"""

import random
import select
import socket
import threading
import time

from repro import obs as _obs
from repro.errors import (
    RpcDeadlineExceeded,
    RpcProtocolError,
    RpcRetryBudgetExhausted,
    RpcTimeoutError,
    XdrError,
)
from repro.rpc.client import RpcClient, UDPMSGSIZE
from repro.rpc.faults import FaultySocket
from repro.rpc.overload import stamp_deadline
from repro.rpc.resilience import Deadline


class CallStats:
    """Per-call retransmission telemetry."""

    __slots__ = ("proc", "attempts", "retransmissions", "backoff_schedule",
                 "stale_replies", "garbage_datagrams", "elapsed_s")

    def __init__(self, proc):
        self.proc = proc
        #: datagrams sent for this call (1 == no retransmission)
        self.attempts = 0
        self.retransmissions = 0
        #: the receive window (seconds) granted to each attempt
        self.backoff_schedule = []
        #: well-formed replies bearing another call's xid
        self.stale_replies = 0
        #: datagrams that failed to decode at all (corruption, noise)
        self.garbage_datagrams = 0
        self.elapsed_s = 0.0

    def as_dict(self):
        return {
            "proc": self.proc,
            "attempts": self.attempts,
            "retransmissions": self.retransmissions,
            "backoff_schedule": list(self.backoff_schedule),
            "stale_replies": self.stale_replies,
            "garbage_datagrams": self.garbage_datagrams,
            "elapsed_s": self.elapsed_s,
        }

    def __repr__(self):
        return (
            f"CallStats(proc={self.proc}, attempts={self.attempts},"
            f" stale={self.stale_replies}, garbage={self.garbage_datagrams})"
        )


class UdpClient(RpcClient):
    """An RPC client over UDP.

    ``wait`` is the initial receive window; each silent retry grows it
    by ``backoff`` (default double), up to ``max_wait``, with ±
    ``jitter`` relative randomization so a fleet of clients does not
    retransmit in lockstep.  ``retrans_seed`` makes the jitter
    deterministic (tests); ``jitter=0`` disables it.  ``fault_plan``
    wraps the socket in a :class:`~repro.rpc.faults.FaultySocket`
    faulting outgoing requests.

    Cumulative telemetry: :attr:`calls_completed`,
    :attr:`retransmissions`, :attr:`stale_replies`,
    :attr:`garbage_datagrams` (also :meth:`stats_summary`), all updated
    once per finished call from that call's :class:`CallStats`.

    **Single-reader ownership.** The receive loop assumes it is the
    socket's only reader: concurrent :meth:`call` invocations are
    serialized on an internal lock, so two threads sharing one client
    take turns rather than racing ``select()`` for each other's
    datagrams (the pre-serialization behavior: both threads woke, one
    consumed the datagram, the other ate ``BlockingIOError`` and
    busy-looped).  Callers that need genuine concurrency over one
    socket should use :class:`~repro.rpc.mux.MuxUdpClient`, whose
    demux loop is the sole reader for many in-flight xids.
    """

    def __init__(
        self,
        host,
        port,
        prog,
        vers,
        timeout=5.0,
        wait=0.5,
        max_wait=None,
        backoff=2.0,
        jitter=0.1,
        retrans_seed=None,
        bufsize=UDPMSGSIZE,
        fastpath=False,
        fault_plan=None,
        retry_budget=None,
        **kwargs,
    ):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        #: optional :class:`~repro.rpc.overload.RetryBudget` gating
        #: retransmissions: calls deposit, retransmits withdraw, and a
        #: dry bucket fails the call with RpcRetryBudgetExhausted
        #: instead of feeding a retry storm.
        self.retry_budget = retry_budget
        self.address = (host, port)
        self.timeout = timeout
        self.wait = wait
        self.max_wait = max_wait if max_wait is not None else max(
            wait, timeout / 2.0
        )
        self.backoff = backoff
        self.jitter = jitter
        self._jitter_rng = random.Random(retrans_seed)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        #: serializes calls: the receive loop owns the socket while a
        #: call is in flight (single-reader ownership; see class doc).
        self._serial_lock = threading.Lock()
        if fault_plan is not None:
            self.sock = FaultySocket(self.sock, fault_plan)
        #: calls finished (returned, timed out, or raised)
        self.calls_completed = 0
        #: retransmissions performed over the client's lifetime
        self.retransmissions = 0
        #: stale replies discarded over the client's lifetime
        self.stale_replies = 0
        #: undecodable datagrams discarded over the client's lifetime
        self.garbage_datagrams = 0
        #: :class:`CallStats` of the most recent call
        self.last_call_stats = None
        if fastpath:
            self.enable_fastpath()

    def stats_summary(self):
        """Cumulative client statistics (the registry mirrors these)."""
        return {
            "calls_completed": self.calls_completed,
            "retransmissions": self.retransmissions,
            "stale_replies": self.stale_replies,
            "garbage_datagrams": self.garbage_datagrams,
        }

    def call(self, proc, args=None, xdr_args=None, xdr_res=None,
             deadline=None):
        """One RPC.  ``deadline`` (a
        :class:`~repro.rpc.resilience.Deadline` or a seconds budget)
        caps the whole call — every retransmission window draws from
        it and exhaustion raises
        :class:`~repro.errors.RpcDeadlineExceeded` — on top of the
        client's own ``timeout``."""
        deadline = Deadline.coerce(deadline)
        xid = self.next_xid()
        span = None
        if _obs.enabled:
            tier = ("specialized" if proc in self._codecs
                    else "fastpath" if self.fastpath_enabled
                    else "generic")
            _obs.registry.counter("rpc.client.calls", transport="udp",
                                  tier=tier).inc()
            span = _obs.span("client.call", side="client", transport="udp",
                             xid=xid, prog=self.prog, vers=self.vers,
                             proc=proc, tier=tier)
        send_buffer = None
        try:
            encode_span = (span.child("client.encode")
                           if span is not None else None)
            try:
                if (self.propagate_deadline and deadline is not None
                        and proc not in self._codecs):
                    # Deadline propagation: a mutable request carrying
                    # the remaining budget in the deadline cred
                    # (re-stamped on every retransmission).
                    request = self.build_call_deadline(
                        xid, proc, args, xdr_args, deadline
                    )
                elif self.fastpath_enabled and proc not in self._codecs:
                    send_buffer, length = self.build_call_pooled(
                        xid, proc, args, xdr_args
                    )
                    request = memoryview(send_buffer)[:length]
                else:
                    request = self.build_call(xid, proc, args, xdr_args)
            except BaseException as exc:
                if encode_span is not None:
                    encode_span.end(outcome="error",
                                    error=type(exc).__name__)
                raise
            if encode_span is not None:
                encode_span.end(bytes=len(request))
            # Single-reader ownership: one call owns the socket at a
            # time; concurrent callers queue here instead of racing
            # select() for each other's datagrams.
            with self._serial_lock:
                value = self._call_loop(request, xid, proc, xdr_res, span,
                                        deadline)
        except BaseException as exc:
            if span is not None:
                span.end(outcome="error", error=type(exc).__name__)
            raise
        finally:
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)
        if span is not None:
            span.end(outcome="ok")
        return value

    def _next_window(self, window):
        """The next backoff interval: grow, jitter, cap."""
        grown = window * self.backoff
        if self.jitter:
            grown *= 1.0 + self.jitter * (
                2.0 * self._jitter_rng.random() - 1.0
            )
        return min(grown, self.max_wait)

    def _finish_call(self, stats, outcome):
        """The single aggregation point for per-call telemetry.

        Lifetime counters and the metrics registry are updated *here
        only*, from the finished :class:`CallStats` — never inline
        during the retransmission loop.  That guarantees one call
        contributes each number exactly once however it ends (reply,
        timeout, server verdict, fault), fixing the double-count risk
        of bumping live counters per attempt *and* folding the
        per-call stats in afterwards.
        """
        self.calls_completed += 1
        self.retransmissions += stats.retransmissions
        self.stale_replies += stats.stale_replies
        self.garbage_datagrams += stats.garbage_datagrams
        if not _obs.enabled:
            return
        registry = _obs.registry
        registry.counter("rpc.client.attempts",
                         transport="udp").inc(stats.attempts)
        if stats.retransmissions:
            registry.counter("rpc.client.retransmissions",
                             transport="udp").inc(stats.retransmissions)
        if stats.stale_replies:
            registry.counter("rpc.client.stale_replies",
                             transport="udp").inc(stats.stale_replies)
        if stats.garbage_datagrams:
            registry.counter("rpc.client.garbage_datagrams",
                             transport="udp").inc(stats.garbage_datagrams)
        if outcome == "timeout":
            registry.counter("rpc.client.timeouts", transport="udp").inc()
        elif outcome == "deadline":
            registry.counter("rpc.client.deadline_exceeded",
                             transport="udp").inc()
        elif outcome != "ok":
            registry.counter("rpc.client.errors", transport="udp",
                             error=outcome).inc()
        registry.histogram("rpc.client.call_latency_s",
                           transport="udp").observe(stats.elapsed_s)

    def _call_loop(self, request, xid, proc, xdr_res, span=None,
                   deadline=None):
        stats = CallStats(proc)
        self.last_call_stats = stats
        started = time.monotonic()
        budget_end = started + self.timeout
        # The per-call deadline (when given) caps the whole loop: no
        # send and no receive window may extend past it.
        hard_end = budget_end
        if deadline is not None:
            hard_end = min(budget_end, deadline.expires_at)
        window = min(self.wait, self.max_wait)
        outcome = "timeout"
        budget = self.retry_budget
        if budget is not None:
            budget.note_call()
        try:
            while True:
                now = time.monotonic()
                if now >= hard_end:
                    if deadline is not None and deadline.expired:
                        outcome = "deadline"
                    break
                if stats.attempts:
                    if budget is not None and not budget.try_retry():
                        raise RpcRetryBudgetExhausted(
                            f"retry budget exhausted for RPC call"
                            f" (prog={self.prog}, proc={proc}) after"
                            f" {stats.attempts} attempt(s)"
                        )
                    stats.retransmissions += 1
                    if deadline is not None:
                        # Honest budget on the wire: the retransmission
                        # carries what *remains*, not the build-time
                        # value (no-op for non-propagated requests).
                        stamp_deadline(request, deadline)
                send_span = (span.child("client.send",
                                        attempt=stats.attempts + 1,
                                        bytes=len(request))
                             if span is not None else None)
                self.sock.sendto(request, self.address)
                if send_span is not None:
                    send_span.end()
                stats.attempts += 1
                # Clamp the try to the remaining budget — but when the
                # budget no longer covers a full window, make this the
                # *final* try and still grant it the whole window: one
                # guaranteed full receive wait instead of a sliver
                # followed by a back-to-back retransmit.  A deadline is
                # harder than the timeout budget: the grant never
                # stretches past it.
                final = (hard_end - now) <= window
                grant = window
                if deadline is not None:
                    grant = min(grant, max(deadline.expires_at - now, 0.0))
                stats.backoff_schedule.append(grant)
                wait_span = (span.child("client.wait",
                                        attempt=stats.attempts,
                                        window_s=round(grant, 6))
                             if span is not None else None)
                try:
                    reply = self._await_reply(xid, proc, xdr_res,
                                              now + grant, stats, span)
                except BaseException as exc:
                    if wait_span is not None:
                        wait_span.end(outcome="error",
                                      error=type(exc).__name__)
                    raise
                if wait_span is not None:
                    wait_span.end(
                        outcome="reply" if reply is not None else "silent"
                    )
                if reply is not None:
                    outcome = "ok"
                    return reply[0]
                if final:
                    if deadline is not None and deadline.expired:
                        outcome = "deadline"
                    break
                window = self._next_window(window)
        except BaseException as exc:
            outcome = type(exc).__name__
            raise
        finally:
            stats.elapsed_s = time.monotonic() - started
            self._finish_call(stats, outcome)
        if outcome == "deadline":
            raise RpcDeadlineExceeded(
                f"RPC call (prog={self.prog}, proc={proc}) exceeded its"
                f" deadline of {deadline.budget_s}s"
                f" ({stats.attempts} attempts,"
                f" {stats.retransmissions} retransmissions)"
            )
        raise RpcTimeoutError(
            f"RPC call (prog={self.prog}, proc={proc}) timed out"
            f" after {self.timeout}s"
            f" ({stats.attempts} attempts,"
            f" {stats.retransmissions} retransmissions)"
        )

    def _await_reply(self, xid, proc, xdr_res, try_deadline, stats,
                     span=None):
        """Wait for a matching reply until ``try_deadline``; None means
        retransmit."""
        while True:
            remaining = try_deadline - time.monotonic()
            if remaining <= 0:
                return None
            readable, _, _ = select.select([self.sock], [], [], remaining)
            if not readable:
                return None
            try:
                if self.fastpath_enabled:
                    recv_buffer = self.acquire_recv_buffer()
                    try:
                        nbytes = self.sock.recv_into(recv_buffer)
                        data = memoryview(recv_buffer)[:nbytes]
                        matched, value = self._parse_traced(
                            data, xid, proc, xdr_res, stats, span
                        )
                    finally:
                        self.release_recv_buffer(recv_buffer)
                else:
                    data, _addr = self.sock.recvfrom(self.bufsize)
                    matched, value = self._parse_traced(data, xid, proc,
                                                        xdr_res, stats, span)
            except (BlockingIOError, InterruptedError):
                # Genuinely spurious readiness (e.g. the kernel dropped
                # a datagram with a bad checksum after select returned)
                # or an interrupted read.  Calls are serialized on
                # _serial_lock, so this is *not* another thread winning
                # the race — that failure mode is retired; concurrency
                # over one socket belongs to MuxUdpClient's demux loop.
                continue
            if matched:
                return (value,)
            # Stale xid or garbage: keep listening within the window.

    def _parse_traced(self, data, xid, proc, xdr_res, stats, span):
        """:meth:`_parse_tolerant` wrapped in a ``client.decode`` span."""
        if span is None:
            return self._parse_tolerant(data, xid, proc, xdr_res, stats)
        decode_span = span.child("client.decode", bytes=len(data))
        try:
            matched, value = self._parse_tolerant(data, xid, proc, xdr_res,
                                                  stats)
        except BaseException as exc:
            decode_span.end(outcome="error", error=type(exc).__name__)
            raise
        decode_span.end(matched=matched)
        return matched, value

    def _parse_tolerant(self, data, xid, proc, xdr_res, stats):
        """``parse_reply`` that treats undecodable datagrams as noise.

        A corrupted or truncated datagram fails header or body decode
        with :class:`XdrError`/:class:`RpcProtocolError` *before* the
        xid is validated as ours — discard it and let retransmission
        recover.  Genuine server verdicts (denials, non-SUCCESS
        accepts) raise *after* the xid matched and propagate.

        Only the per-call ``stats`` are updated here; the lifetime
        counters fold in once per call via :meth:`_finish_call`.
        """
        try:
            matched, value = self.parse_reply(data, xid, proc, xdr_res)
        except (XdrError, RpcProtocolError):
            stats.garbage_datagrams += 1
            return False, None
        if not matched:
            stats.stale_replies += 1
        return matched, value

    def close(self):
        self.sock.close()
