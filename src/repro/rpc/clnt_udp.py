"""UDP RPC client (``clntudp_call`` of the paper's Figure 1).

Implements the classic Sun retransmission discipline: send the
datagram, wait ``wait`` seconds for a matching reply, retransmit on
timeout, and give up when the total ``timeout`` budget is exhausted.
Stale replies (xid mismatch) are discarded without consuming a retry.
"""

import select
import socket
import time

from repro.errors import RpcTimeoutError
from repro.rpc.client import RpcClient, UDPMSGSIZE


class UdpClient(RpcClient):
    """An RPC client over UDP."""

    def __init__(
        self,
        host,
        port,
        prog,
        vers,
        timeout=5.0,
        wait=0.5,
        bufsize=UDPMSGSIZE,
        **kwargs,
    ):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        self.address = (host, port)
        self.timeout = timeout
        self.wait = wait
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        #: retransmissions performed over the client's lifetime
        self.retransmissions = 0

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        xid = self.next_xid()
        request = self.build_call(xid, proc, args, xdr_args)
        deadline = time.monotonic() + self.timeout
        first = True
        while True:
            now = time.monotonic()
            if now >= deadline:
                raise RpcTimeoutError(
                    f"RPC call (prog={self.prog}, proc={proc}) timed out"
                    f" after {self.timeout}s"
                )
            if not first:
                self.retransmissions += 1
            first = False
            self.sock.sendto(request, self.address)
            try_deadline = min(now + self.wait, deadline)
            reply = self._await_reply(xid, proc, xdr_res, try_deadline)
            if reply is not None:
                return reply[0]

    def _await_reply(self, xid, proc, xdr_res, try_deadline):
        """Wait for a matching reply until ``try_deadline``; None means
        retransmit."""
        while True:
            remaining = try_deadline - time.monotonic()
            if remaining <= 0:
                return None
            readable, _, _ = select.select([self.sock], [], [], remaining)
            if not readable:
                return None
            data, _addr = self.sock.recvfrom(self.bufsize)
            matched, value = self.parse_reply(data, xid, proc, xdr_res)
            if matched:
                return (value,)
            # Stale xid: keep listening within the same try window.

    def close(self):
        self.sock.close()
