"""UDP RPC client (``clntudp_call`` of the paper's Figure 1).

Implements the classic Sun retransmission discipline: send the
datagram, wait ``wait`` seconds for a matching reply, retransmit on
timeout, and give up when the total ``timeout`` budget is exhausted.
Stale replies (xid mismatch) are discarded without consuming a retry.

With the fast path on (``fastpath=True`` or
:meth:`~repro.rpc.client.RpcClient.enable_fastpath`), the request is
serialized into a pooled buffer from a pre-built header template,
replies land in a pooled receive buffer via ``recvfrom_into``, and
decoding reads a ``memoryview`` of that buffer — one complete call
performs no per-call buffer allocation.
"""

import select
import socket
import time

from repro.errors import RpcTimeoutError
from repro.rpc.client import RpcClient, UDPMSGSIZE


class UdpClient(RpcClient):
    """An RPC client over UDP."""

    def __init__(
        self,
        host,
        port,
        prog,
        vers,
        timeout=5.0,
        wait=0.5,
        bufsize=UDPMSGSIZE,
        fastpath=False,
        **kwargs,
    ):
        super().__init__(prog, vers, bufsize=bufsize, **kwargs)
        self.address = (host, port)
        self.timeout = timeout
        self.wait = wait
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        #: retransmissions performed over the client's lifetime
        self.retransmissions = 0
        if fastpath:
            self.enable_fastpath()

    def call(self, proc, args=None, xdr_args=None, xdr_res=None):
        xid = self.next_xid()
        send_buffer = None
        if self.fastpath_enabled and proc not in self._codecs:
            send_buffer, length = self.build_call_pooled(
                xid, proc, args, xdr_args
            )
            request = memoryview(send_buffer)[:length]
        else:
            request = self.build_call(xid, proc, args, xdr_args)
        try:
            return self._call_loop(request, xid, proc, xdr_res)
        finally:
            if send_buffer is not None:
                self.release_send_buffer(send_buffer)

    def _call_loop(self, request, xid, proc, xdr_res):
        deadline = time.monotonic() + self.timeout
        first = True
        while True:
            now = time.monotonic()
            if now >= deadline:
                raise RpcTimeoutError(
                    f"RPC call (prog={self.prog}, proc={proc}) timed out"
                    f" after {self.timeout}s"
                )
            if not first:
                self.retransmissions += 1
            first = False
            self.sock.sendto(request, self.address)
            try_deadline = min(now + self.wait, deadline)
            reply = self._await_reply(xid, proc, xdr_res, try_deadline)
            if reply is not None:
                return reply[0]

    def _await_reply(self, xid, proc, xdr_res, try_deadline):
        """Wait for a matching reply until ``try_deadline``; None means
        retransmit."""
        while True:
            remaining = try_deadline - time.monotonic()
            if remaining <= 0:
                return None
            readable, _, _ = select.select([self.sock], [], [], remaining)
            if not readable:
                return None
            if self.fastpath_enabled:
                recv_buffer = self.acquire_recv_buffer()
                try:
                    nbytes = self.sock.recv_into(recv_buffer)
                    data = memoryview(recv_buffer)[:nbytes]
                    matched, value = self.parse_reply(data, xid, proc,
                                                      xdr_res)
                finally:
                    self.release_recv_buffer(recv_buffer)
            else:
                data, _addr = self.sock.recvfrom(self.bufsize)
                matched, value = self.parse_reply(data, xid, proc, xdr_res)
            if matched:
                return (value,)
            # Stale xid: keep listening within the same try window.

    def close(self):
        self.sock.close()
