"""Sun RPC (RFC 1057) — protocol engine, transports, and portmapper.

A working pure-Python Sun RPC stack structured like the 1984 sources:

* :mod:`repro.rpc.message` — call/reply message headers;
* :mod:`repro.rpc.auth` — AUTH_NONE / AUTH_SYS credentials;
* :mod:`repro.rpc.clnt_udp` / :mod:`repro.rpc.clnt_tcp` — clients with
  retransmission (UDP) and record marking (TCP);
* :mod:`repro.rpc.server` + :mod:`repro.rpc.svc_udp` /
  :mod:`repro.rpc.svc_tcp` — service dispatch and transports;
* :mod:`repro.rpc.pmap` — the portmapper (program 100000);
* :mod:`repro.rpc.resilience` — deadlines, circuit breaking,
  multi-endpoint failover, overload control, graceful drain;
* :mod:`repro.rpc.overload` — end-to-end overload control: deadline
  propagation (doomed-work drops), retry budgets, hedged-request
  triggers, and CoDel-style adaptive queue management;
* :mod:`repro.rpc.mux` / :mod:`repro.rpc.svc_mux` — the concurrent
  call engine: xid-multiplexed pipelined clients (``call_async``),
  call batching, and readiness-driven event-loop servers;
* :mod:`repro.rpc.durable` — DRC persistence: a write-ahead journal
  + compacted snapshots that make at-most-once hold across restarts;
* :mod:`repro.rpc.fleet` — DRC replication (incarnation-fenced
  anti-entropy) and fleet membership (heartbeats, liveness-based
  endpoint lists feeding :class:`FailoverClient`).

Marshaling is pluggable per call: the generic path uses the
:mod:`repro.xdr` micro-layers, the optimized path plugs in marshalers
compiled from Tempo residual programs (:mod:`repro.specialized`).
"""

from repro.rpc.auth import AUTH_NONE, AUTH_SYS, OpaqueAuth, make_auth_none, make_auth_sys
from repro.rpc.clnt_tcp import TcpClient
from repro.rpc.clnt_udp import CallStats, UdpClient
from repro.rpc.drc import DuplicateRequestCache
from repro.rpc.durable import DrcJournal, attach_journal
from repro.rpc.fastpath import BufferPool, CallHeaderTemplate, ReplyHeaderTemplate
from repro.rpc.faults import FaultPlan, FaultySocket
from repro.rpc.fleet import (
    DrcReplicator,
    FleetDirectory,
    FleetMember,
    FleetWatcher,
    Membership,
    install_replication_sink,
)
from repro.rpc.message import RPC_VERSION
from repro.rpc.mux import MuxTcpClient, MuxUdpClient, PendingCall
from repro.rpc.overload import (
    CodelQueue,
    HedgeTrigger,
    RetryBudget,
    make_deadline_cred,
    propagation_enabled,
    remaining_from_cred,
    stamp_deadline,
)
from repro.rpc.resilience import (
    CallerQuota,
    CircuitBreaker,
    Deadline,
    FailoverClient,
    HEALTH_PROG,
    HEALTH_PROC_STATUS,
    HEALTH_VERS,
    InflightLimiter,
    STATUS_DRAINING,
    STATUS_SERVING,
    TokenBucket,
    WorkerPool,
)
from repro.rpc.server import SvcRegistry, rpc_service
from repro.rpc.svc_mux import MuxTcpServer, MuxUdpServer, make_server
from repro.rpc.svc_tcp import TcpServer
from repro.rpc.svc_udp import UdpServer

__all__ = [
    "AUTH_NONE",
    "AUTH_SYS",
    "BufferPool",
    "CallHeaderTemplate",
    "CallStats",
    "CallerQuota",
    "CircuitBreaker",
    "CodelQueue",
    "Deadline",
    "DrcJournal",
    "DrcReplicator",
    "DuplicateRequestCache",
    "FailoverClient",
    "FleetDirectory",
    "FleetMember",
    "FleetWatcher",
    "Membership",
    "TokenBucket",
    "attach_journal",
    "install_replication_sink",
    "FaultPlan",
    "FaultySocket",
    "HEALTH_PROG",
    "HEALTH_PROC_STATUS",
    "HEALTH_VERS",
    "HedgeTrigger",
    "InflightLimiter",
    "MuxTcpClient",
    "MuxTcpServer",
    "MuxUdpClient",
    "MuxUdpServer",
    "PendingCall",
    "RetryBudget",
    "STATUS_DRAINING",
    "STATUS_SERVING",
    "WorkerPool",
    "make_server",
    "make_deadline_cred",
    "propagation_enabled",
    "remaining_from_cred",
    "stamp_deadline",
    "OpaqueAuth",
    "make_auth_none",
    "make_auth_sys",
    "ReplyHeaderTemplate",
    "RPC_VERSION",
    "SvcRegistry",
    "rpc_service",
    "TcpClient",
    "TcpServer",
    "UdpClient",
    "UdpServer",
]
