"""The portmapper (program 100000, version 2 — RFC 1057 appendix A).

Sun RPC services traditionally register their ephemeral ports with the
portmapper; clients ask it where a program lives.  This module provides
both halves: :class:`PortMapper` (the service, mountable on a
:class:`~repro.rpc.server.SvcRegistry`) and client helpers
(:func:`pmap_set`, :func:`pmap_unset`, :func:`pmap_getport`).
"""

from dataclasses import dataclass

from repro.errors import RpcError
from repro.rpc.clnt_udp import UdpClient
from repro.xdr import XdrOp, xdr_bool, xdr_u_long

PMAP_PROG = 100000
PMAP_VERS = 2
PMAP_PORT = 111

PMAPPROC_NULL = 0
PMAPPROC_SET = 1
PMAPPROC_UNSET = 2
PMAPPROC_GETPORT = 3

IPPROTO_TCP = 6
IPPROTO_UDP = 17


@dataclass(frozen=True)
class Mapping:
    """One (program, version, protocol) -> port binding."""

    prog: int
    vers: int
    prot: int
    port: int


def xdr_mapping(xdrs, value):
    if xdrs.x_op == XdrOp.ENCODE:
        xdr_u_long(xdrs, value.prog)
        xdr_u_long(xdrs, value.vers)
        xdr_u_long(xdrs, value.prot)
        xdr_u_long(xdrs, value.port)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        return Mapping(
            xdr_u_long(xdrs, None),
            xdr_u_long(xdrs, None),
            xdr_u_long(xdrs, None),
            xdr_u_long(xdrs, None),
        )
    return value


class PortMapper:
    """In-process portmapper service."""

    def __init__(self):
        #: (prog, vers, prot) -> port
        self.bindings = {}

    def mount(self, registry):
        """Register the portmapper procedures on a registry."""
        registry.register(
            PMAP_PROG, PMAP_VERS, PMAPPROC_SET, self._set, xdr_mapping,
            xdr_bool,
        )
        registry.register(
            PMAP_PROG, PMAP_VERS, PMAPPROC_UNSET, self._unset, xdr_mapping,
            xdr_bool,
        )
        registry.register(
            PMAP_PROG, PMAP_VERS, PMAPPROC_GETPORT, self._getport,
            xdr_mapping, xdr_u_long,
        )
        return registry

    def _set(self, mapping):
        key = (mapping.prog, mapping.vers, mapping.prot)
        if key in self.bindings:
            return False
        self.bindings[key] = mapping.port
        return True

    def _unset(self, mapping):
        removed = False
        for prot in (IPPROTO_UDP, IPPROTO_TCP):
            removed |= (
                self.bindings.pop((mapping.prog, mapping.vers, prot), None)
                is not None
            )
        return removed

    def _getport(self, mapping):
        return self.bindings.get(
            (mapping.prog, mapping.vers, mapping.prot), 0
        )


def _pmap_client(host, port, timeout):
    return UdpClient(host, port, PMAP_PROG, PMAP_VERS, timeout=timeout)


def pmap_set(prog, vers, prot, port, host="127.0.0.1",
             pmap_port=PMAP_PORT, timeout=5.0):
    """Register a binding with a remote portmapper."""
    with _pmap_client(host, pmap_port, timeout) as client:
        return client.call(
            PMAPPROC_SET, Mapping(prog, vers, prot, port), xdr_mapping,
            xdr_bool,
        )


def pmap_unset(prog, vers, host="127.0.0.1", pmap_port=PMAP_PORT,
               timeout=5.0):
    with _pmap_client(host, pmap_port, timeout) as client:
        return client.call(
            PMAPPROC_UNSET, Mapping(prog, vers, 0, 0), xdr_mapping, xdr_bool
        )


def pmap_getport(prog, vers, prot=IPPROTO_UDP, host="127.0.0.1",
                 pmap_port=PMAP_PORT, timeout=5.0):
    """Ask the portmapper for a program's port; raises if unregistered."""
    with _pmap_client(host, pmap_port, timeout) as client:
        port = client.call(
            PMAPPROC_GETPORT, Mapping(prog, vers, prot, 0), xdr_mapping,
            xdr_u_long,
        )
    if port == 0:
        raise RpcError(f"program {prog} version {vers} is not registered")
    return port
