"""RPC service dispatch — the transport-independent server half.

A :class:`SvcRegistry` maps (program, version, procedure) to handlers
with their XDR filters, and turns a raw call message into a raw reply
message, covering every accept/deny path of RFC 1057 (PROG_UNAVAIL,
PROG_MISMATCH, PROC_UNAVAIL, GARBAGE_ARGS, SYSTEM_ERR, RPC_MISMATCH).

Like the client, marshaling is pluggable per procedure so the
Tempo-specialized server stubs can replace the generic micro-layers.

Telemetry (``repro.obs``): when observability is enabled, each
dispatch emits a ``server.dispatch`` span with ``server.drc_lookup``
/ ``server.decode_args`` / ``server.handler`` /
``server.encode_reply`` children, every outcome increments the
``rpc.server.replies{outcome=...}`` counter, and the fast-path header
recognizer reports hit/fallback counts.  The disabled path is the
original dispatcher behind one ``if obs.enabled`` test.
"""

import logging
import struct
import time
from dataclasses import dataclass

from repro import obs as _obs
from repro.errors import RpcProtocolError, XdrError
from repro.rpc.auth import NULL_AUTH
from repro.rpc.drc import DuplicateRequestCache
from repro.rpc.fastpath import BufferPool, ReplyHeaderTemplate
from repro.rpc.message import (
    AcceptStat,
    CallHeader,
    RejectStat,
    decode_call_header,
    encode_accepted_reply,
    encode_denied_reply,
)
from repro.rpc.overload import remaining_from_cred
from repro.rpc.resilience import (
    HEALTH_PROG,
    HEALTH_PROC_STATUS,
    HEALTH_VERS,
    STATUS_DRAINING,
    STATUS_SERVING,
    CallerQuota,
)
from repro.xdr import XdrMemStream, XdrOp, xdr_u_long

logger = logging.getLogger(__name__)

#: procedure 0 of every program/version is the NULL ping.
NULLPROC = 0

#: the static words of a v2 call header (msg_type CALL=0, rpcvers=2)
#: and the 16 zero bytes of two NULL auth areas — the common header
#: shape the fast path recognizes with slice compares instead of the
#: micro-layer decode.
_CALL_V2 = struct.pack(">II", 0, 2)
_NULL_AUTHS = bytes(16)
_FAST_HEADER_SIZE = 10 * 4

#: sentinel a staged route returns to hand the request to the generic
#: dispatcher (drain mode, undecodable arguments, ...).
_TO_GENERIC = object()

def _count_reply(outcome):
    _obs.registry.counter("rpc.server.replies", outcome=outcome).inc()


@dataclass
class Procedure:
    """One registered procedure."""

    handler: object
    xdr_args: object
    xdr_res: object
    #: optional specialized (decode_args_fn, encode_res_fn)
    decode_args: object = None
    encode_res: object = None


class SvcRegistry:
    """Dispatch table for any number of programs/versions."""

    def __init__(self, bufsize=8800, fastpath=False, drc=False):
        #: (prog, vers) -> {proc: Procedure}
        self._programs = {}
        self.bufsize = bufsize
        #: fast-path state: pre-built SUCCESS reply header + reply
        #: buffer pool (see :mod:`repro.rpc.fastpath`).
        self._reply_template = None
        self._out_pool = None
        #: staged residual routes (see :meth:`stage_route`): constant
        #: header signature -> fused decode/handler/encode closure.
        self._staged_routes = None
        #: online-specialized routes (see
        #: :mod:`repro.specialized.online`): constant header signature
        #: -> :class:`~repro.specialized.online.OnlineServerRoute`.
        #: Swapped copy-on-write so concurrent dispatchers see either
        #: the old or the new table, never a mid-mutation one.
        self._online_routes = None
        #: optional :class:`~repro.specialized.online.DispatchProfiler`
        #: sampling (prog, vers, proc) call counts and message sizes.
        self.profiler = None
        #: duplicate-request reply cache (see :mod:`repro.rpc.drc`);
        #: active only for dispatches that identify their caller.
        self.drc = None
        #: handler executions (DRC replays do not count) — lets tests
        #: assert "invocations == unique requests" under retransmission.
        self.handlers_invoked = 0
        #: optional per-caller token-bucket admission (see
        #: :meth:`install_quota`); DRC replays and drain-exempt
        #: programs are never charged.
        self.quota = None
        #: graceful-drain mode: DRC replays and health checks are still
        #: answered; everything else is shed with SYSTEM_ERR.
        self.draining = False
        #: (prog, vers) pairs still served while draining (health).
        self._drain_exempt = set()
        #: requests answered with a shed (overload/drain) reply.
        self.sheds = 0
        #: requests dropped because their propagated deadline budget
        #: (see :mod:`repro.rpc.overload`) had already expired — the
        #: caller is gone, so executing them would be pure waste.
        self.doomed_dropped = 0
        #: non-RpcError exceptions the defensive decode converted into
        #: drops instead of letting them crash dispatch.
        self.decode_defended = 0
        if fastpath:
            self.enable_fastpath()
        if drc:
            self.enable_drc()

    def enable_fastpath(self, pool_limit=4):
        """Pre-build the SUCCESS reply header and pool reply buffers.

        The dispatcher then answers the hot path (accepted, SUCCESS,
        null verifier) by copying the template and patching the xid
        instead of re-encoding six XDR units per reply, and reuses its
        scratch reply buffers instead of allocating ``bytearray
        (bufsize)`` per call.
        """
        self._reply_template = ReplyHeaderTemplate()
        self._out_pool = BufferPool(self.bufsize, limit=pool_limit,
                                    prefill=1)
        return self

    @property
    def fastpath_enabled(self):
        return self._reply_template is not None

    def enable_drc(self, capacity=256):
        """Turn on the duplicate-request reply cache.

        Retransmitted requests — same (xid, caller, prog, vers, proc)
        — are answered by replaying the recorded reply bytes instead of
        re-executing the handler, upgrading UDP's at-least-once
        semantics toward at-most-once.  Takes effect only for
        dispatches that pass a ``caller`` identity (the transports do).
        """
        self.drc = DuplicateRequestCache(capacity)
        return self

    @property
    def drc_enabled(self):
        return self.drc is not None

    # -- resilience: drain, health, shedding ------------------------------

    def begin_drain(self):
        """Enter graceful-drain mode.

        In-flight handlers finish normally; retransmissions of already
        answered calls keep replaying from the DRC; health-check
        programs (:meth:`install_health`) keep answering; every other
        request is *shed* — answered with a ``SYSTEM_ERR`` reply (not
        silently dropped) so clients fail over promptly instead of
        burning their deadline on retransmits.
        """
        self.draining = True
        if _obs.enabled:
            _obs.registry.counter("rpc.server.drains").inc()
            _obs.registry.gauge("rpc.server.draining").set(1)
        return self

    def end_drain(self):
        """Leave drain mode (a drained server can resume serving)."""
        self.draining = False
        if _obs.enabled:
            _obs.registry.gauge("rpc.server.draining").set(0)
        return self

    def install_health(self, prog=HEALTH_PROG, vers=HEALTH_VERS):
        """Register the health-check program.

        Procedure 0 is the ordinary NULL ping; procedure
        ``HEALTH_PROC_STATUS`` returns the serving status as a u_long
        (``STATUS_SERVING`` / ``STATUS_DRAINING``).  Health stays
        answerable *during* drain so orchestrators can watch the drain
        complete.
        """
        self.register(
            prog, vers, HEALTH_PROC_STATUS,
            lambda _args: (STATUS_DRAINING if self.draining
                           else STATUS_SERVING),
            xdr_args=None, xdr_res=xdr_u_long,
        )
        self._drain_exempt.add((prog, vers))
        return self

    def install_quota(self, rate, burst=None, max_callers=4096,
                      clock=time.time, key=None):
        """Layer per-caller token-bucket admission onto dispatch.

        Each caller (transport peer host) accrues ``rate`` calls/second
        up to a ``burst`` allowance; a caller over budget is answered
        with a shed reply (``SYSTEM_ERR``, reason ``quota``) exactly
        like the overload paths.  DRC replays are never charged — a
        retransmission of an answered call costs the server a cache
        probe, not handler work, and charging it would punish the
        retry behavior the DRC exists to absorb.  Drain-exempt
        programs (health, replication) are exempt here too.

        ``clock=time.time`` by default so buckets refill in wall time;
        tests inject a fake clock.
        """
        self.quota = CallerQuota(rate, burst=burst,
                                 max_callers=max_callers, clock=clock,
                                 key=key)
        return self

    def _over_quota(self, caller, prog, vers):
        """Should this request be quota-shed?  (Charges the bucket.)"""
        return (self.quota is not None and caller is not None
                and (prog, vers) not in self._drain_exempt
                and not self.quota.admit(caller))

    def shed_reply_bytes(self, data, reason="queue_full"):
        """A ``SYSTEM_ERR`` reply for a request refused before dispatch
        (bounded queue full), or None when ``data`` is not a
        recognizable v2 call.

        Shed replies are *never* recorded in the DRC — a retransmission
        after load subsides must reach the handler.
        """
        if len(data) < _FAST_HEADER_SIZE or bytes(data[4:12]) != _CALL_V2:
            return None
        xid = int.from_bytes(data[0:4], "big")
        out = XdrMemStream(bytearray(64), XdrOp.ENCODE)
        encode_accepted_reply(out, xid, AcceptStat.SYSTEM_ERR, NULL_AUTH)
        self.sheds += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.server.sheds", reason=reason).inc()
            _count_reply("shed")
        return out.data()

    def _shed(self, out, header, reason, span):
        """Answer one dispatched request with a shed reply (SYSTEM_ERR);
        not recorded in the DRC."""
        encode_accepted_reply(out, header.xid, AcceptStat.SYSTEM_ERR,
                              NULL_AUTH)
        self.sheds += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.server.sheds", reason=reason).inc()
        self._verdict(span, header, "shed")
        return out.data()

    def register(self, prog, vers, proc, handler, xdr_args=None,
                 xdr_res=None):
        """Register ``handler(args) -> result`` for one procedure."""
        table = self._programs.setdefault((prog, vers), {})
        table[proc] = Procedure(handler, xdr_args, xdr_res)

    def install_marshaler(self, prog, vers, proc, decode_args=None,
                          encode_res=None):
        """Plug specialized marshalers into a registered procedure."""
        entry = self._programs[(prog, vers)][proc]
        entry.decode_args = decode_args
        entry.encode_res = encode_res

    def stage_route(self, prog, vers, proc, unpack_args=None,
                    pack_res=None):
        """Stage one procedure's *entire* dispatch into a residual route.

        The server-side dual of ``RpcClient.install_codec``: for the
        registered procedure, the call header is recognized with one
        slice compare against its constant signature words, the
        arguments are unmarshaled straight off the datagram, the
        handler runs, and the reply is assembled as ``xid + constant
        accepted-SUCCESS header + results`` — no header decode, no XDR
        streams, no buffer pool.  This is the dispatch specialization
        of the paper applied to the live stack: everything that is
        invariant for a (prog, vers, proc) binding is computed here,
        once, and the residual per-call work is a dict probe and the
        handler.

        ``unpack_args(data, offset) -> args`` and
        ``pack_res(result) -> bytes`` are the residual body marshalers
        (e.g. one ``struct`` call each); either may be omitted to fall
        back to the procedure's registered XDR filters run over a
        stream, which still skips the header layers.

        Semantics are preserved exactly: the DRC claim protocol (get →
        claim → execute → put) runs inside the route with the same
        cache keys as the generic dispatcher, handler failures answer
        (and record) ``SYSTEM_ERR``, and anything off the fast shape —
        drain mode, undecodable arguments, a non-NULL auth area —
        falls through to the generic dispatcher, whose replies are
        byte-identical.  With observability enabled, dispatch takes
        the fully-instrumented generic path instead, so staged routes
        never hide spans or counters.
        """
        procedure = self._programs[(prog, vers)][proc]
        signature = struct.pack(">5I", 0, 2, prog, vers, proc)
        ok_tail = ReplyHeaderTemplate(stat=AcceptStat.SUCCESS).prefix[4:]
        err_tail = ReplyHeaderTemplate(stat=AcceptStat.SYSTEM_ERR).prefix[4:]
        handler = procedure.handler
        if unpack_args is None:
            decode_args = procedure.decode_args
            xdr_args = procedure.xdr_args

            def unpack_args(data, offset):
                stream = XdrMemStream(data, XdrOp.DECODE, offset=offset)
                if decode_args is not None:
                    return decode_args(stream)
                if xdr_args is not None:
                    return xdr_args(stream, None)
                return None
        if pack_res is None:
            encode_res = procedure.encode_res
            xdr_res = procedure.xdr_res
            bufsize = self.bufsize

            def pack_res(result):
                stream = XdrMemStream(bytearray(bufsize), XdrOp.ENCODE)
                if encode_res is not None:
                    encode_res(stream, result)
                elif xdr_res is not None:
                    xdr_res(stream, result)
                return stream.data()
        registry = self

        def route(data, caller):
            if registry.draining:
                return _TO_GENERIC
            xid_bytes = bytes(data[0:4])
            drc = registry.drc
            drc_key = None
            if drc is not None and caller is not None:
                drc_key = (int.from_bytes(xid_bytes, "big"), caller,
                           prog, vers, proc)
                verdict = drc.begin(drc_key)
                if verdict is False:
                    return None  # original still executing: drop
                if verdict is not True:
                    return verdict  # replay the recorded reply
            if registry._over_quota(caller, prog, vers):
                # Shed, releasing the claim: the shed reply is never
                # cached, so the caller's post-refill retry executes.
                if drc_key is not None:
                    drc.abandon(drc_key)
                registry.sheds += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.server.sheds",
                                          reason="quota").inc()
                return xid_bytes + err_tail
            try:
                args = unpack_args(data, _FAST_HEADER_SIZE)
            # repro: disable=overbroad-except -- hostile bytes may raise anything; route to generic GARBAGE_ARGS
            except Exception:
                # Generic path answers GARBAGE_ARGS; release the claim
                # so its own get/claim protocol owns the key.
                if drc_key is not None:
                    drc.abandon(drc_key)
                return _TO_GENERIC
            try:
                registry.handlers_invoked += 1
                reply = xid_bytes + ok_tail + pack_res(handler(args))
            # repro: disable=overbroad-except -- any servant crash must become a SYSTEM_ERR reply, not kill dispatch
            except Exception:
                logger.exception(
                    "staged route for prog=%d proc=%d failed", prog, proc
                )
                reply = xid_bytes + err_tail
            if drc_key is not None:
                drc.put(drc_key, reply)
            return reply

        if self._staged_routes is None:
            self._staged_routes = {}
        self._staged_routes[signature] = route
        return self

    # -- online specialization plug points --------------------------------

    def install_profiler(self, profiler):
        """Tap dispatch with a traffic profiler (``profiler.record(data,
        reply)`` after every generically-answered request).  Installed
        by :meth:`repro.specialized.online.OnlineSpecializer.attach_server`.
        """
        self.profiler = profiler
        return self

    def install_online_route(self, prog, vers, proc, route):
        """Atomically hot-swap an online-specialized route into dispatch.

        ``route(data, caller)`` answers requests matching the constant
        header signature for (prog, vers, proc); it may return the
        ``_TO_GENERIC`` sentinel to hand a request back (invariant
        violation, drain).  Unlike staged routes, online routes stay
        active with observability enabled — they carry their own
        counters/spans, so the obs contract still holds.
        """
        signature = struct.pack(">5I", 0, 2, prog, vers, proc)
        routes = dict(self._online_routes or {})
        routes[signature] = route
        self._online_routes = routes
        return self

    def remove_online_route(self, prog, vers, proc):
        """Demote (prog, vers, proc) back to the generic dispatcher;
        returns the removed route, or None."""
        signature = struct.pack(">5I", 0, 2, prog, vers, proc)
        routes = dict(self._online_routes or {})
        removed = routes.pop(signature, None)
        self._online_routes = routes or None
        return removed

    def versions_of(self, prog):
        return sorted(vers for p, vers in self._programs if p == prog)

    # -- the dispatcher ---------------------------------------------------

    def dispatch_bytes(self, data, caller=None, received_at=None):
        """Process one call message; returns the reply message bytes, or
        None when the request is unparseable garbage (dropped, like the
        C svc code drops undecodable datagrams).

        ``data`` may be ``bytes``, ``bytearray``, or a ``memoryview``
        over the transport's receive buffer — it is decoded in place,
        never copied.

        ``caller`` is the transport-level peer identity (UDP source
        address, TCP peer name); when given and the DRC is enabled,
        retransmitted requests are answered from the reply cache
        without re-invoking the handler.

        ``received_at`` is the ``time.monotonic()`` instant the
        transport *received* the message (before any queueing); with
        deadline propagation it anchors the doomed-work check, so a
        request whose budget expired while it sat in the worker queue
        is dropped instead of executed.
        """
        online = self._online_routes
        if (online is not None and len(data) >= _FAST_HEADER_SIZE
                and data[24:40] == _NULL_AUTHS):
            route = online.get(bytes(data[4:24]))
            if route is not None:
                reply = route(data, caller)
                if reply is not _TO_GENERIC:
                    return reply
        profiler = self.profiler
        if profiler is not None:
            reply = self._dispatch_generic(data, caller, received_at)
            profiler.record(data, reply)
            return reply
        return self._dispatch_generic(data, caller, received_at)

    def _dispatch_generic(self, data, caller=None, received_at=None):
        """Dispatch below the online-route/profiler layer."""
        if _obs.enabled:
            return self._dispatch_observed(data, caller, received_at)
        routes = self._staged_routes
        if (routes is not None and len(data) >= _FAST_HEADER_SIZE
                and data[24:40] == _NULL_AUTHS):
            route = routes.get(bytes(data[4:24]))
            if route is not None:
                reply = route(data, caller)
                if reply is not _TO_GENERIC:
                    return reply
        if self._out_pool is not None:
            reply = self._out_pool.acquire()
            try:
                return self._dispatch_into(data, reply, caller,
                                           received_at=received_at)
            finally:
                self._out_pool.release(reply)
        return self._dispatch_into(data, bytearray(self.bufsize), caller,
                                   received_at=received_at)

    def _dispatch_observed(self, data, caller, received_at=None):
        """:meth:`dispatch_bytes` with metrics + an optional span."""
        _obs.registry.counter("rpc.server.requests").inc()
        started = time.monotonic()
        span = _obs.span("server.dispatch", side="server", bytes=len(data),
                         caller=str(caller) if caller is not None else None)
        try:
            if self._out_pool is not None:
                reply = self._out_pool.acquire()
                try:
                    result = self._dispatch_into(data, reply, caller, span,
                                                 received_at)
                finally:
                    self._out_pool.release(reply)
            else:
                result = self._dispatch_into(
                    data, bytearray(self.bufsize), caller, span, received_at
                )
        except BaseException as exc:
            if span is not None:
                span.end(outcome="error", error=type(exc).__name__)
            raise
        finally:
            _obs.registry.histogram("rpc.server.dispatch_latency_s").observe(
                time.monotonic() - started
            )
        if result is None:
            if _obs.enabled:
                _count_reply("dropped")
            if span is not None:
                span.end(outcome="dropped")
        elif span is not None:
            span.end(reply_bytes=len(result))
        return result

    def _fast_parse_header(self, data):
        """A :class:`CallHeader` for the common shape — RPC v2 with two
        NULL auth areas — without the field-by-field decode; None sends
        the request to the generic decoder (which also owns every
        malformed/mismatch path, so those replies stay byte-identical).
        """
        if (len(data) < _FAST_HEADER_SIZE
                or data[4:12] != _CALL_V2
                or data[24:40] != _NULL_AUTHS):
            return None
        xid, _, _, prog, vers, proc = struct.unpack_from(">6I", data, 0)
        return CallHeader(xid, prog, vers, proc, NULL_AUTH, NULL_AUTH)

    def _dispatch_into(self, data, reply, caller=None, span=None,
                       received_at=None):
        if self._reply_template is not None:
            header = self._fast_parse_header(data)
            if header is not None:
                if _obs.enabled:
                    _obs.registry.counter(
                        "rpc.server.fastpath_header_hits").inc()
                if span is not None:
                    span.add(tier="fastpath")
                stream = XdrMemStream(data, XdrOp.DECODE,
                                      offset=_FAST_HEADER_SIZE)
                out = XdrMemStream(reply, XdrOp.ENCODE)
                return self._dispatch_call(header, stream, out, caller,
                                           span, received_at)
            if _obs.enabled:
                _obs.registry.counter("rpc.server.fastpath_fallbacks").inc()
        if span is not None:
            span.add(tier="generic")
        stream = XdrMemStream(data, XdrOp.DECODE)
        out = XdrMemStream(reply, XdrOp.ENCODE)
        try:
            header = decode_call_header(stream)
        except RpcProtocolError as exc:
            if "bad RPC version" in str(exc):
                # We can still answer an RPC_MISMATCH if the xid parsed.
                try:
                    xid = int.from_bytes(data[0:4], "big")
                except (TypeError, ValueError):
                    return None
                encode_denied_reply(out, xid, RejectStat.RPC_MISMATCH, (2, 2))
                if _obs.enabled:
                    _count_reply("rpc_mismatch")
                if span is not None:
                    span.add(xid=xid, outcome="rpc_mismatch")
                return out.data()
            logger.debug("dropping undecodable call: %s", exc)
            return None
        except XdrError as exc:
            logger.debug("dropping truncated call: %s", exc)
            return None
        # repro: disable=overbroad-except -- defensive decode: arbitrary bytes must never crash dispatch
        except Exception as exc:
            # Defensive decode: arbitrary bytes must never crash
            # dispatch.  Anything the grammar-level decoders did not
            # already map to a typed error (struct.error, ValueError,
            # IndexError, ...) is counted and dropped like undecodable
            # garbage.
            self.decode_defended += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.server.decode_defended").inc()
            logger.debug("defended undecodable call: %r", exc)
            return None
        return self._dispatch_call(header, stream, out, caller, span,
                                   received_at)

    def _record_reply(self, drc_key, reply):
        """Cache a handler-produced reply for retransmission replay.

        ``reply`` is already immutable ``bytes`` (``XdrMemStream.data``
        copies out of the pooled buffer), so the cache never aliases
        pool-owned memory.
        """
        if drc_key is not None:
            self.drc.put(drc_key, reply)
        return reply

    def _verdict(self, span, header, outcome):
        """Record a dispatch outcome on the span + outcome counter."""
        if _obs.enabled:
            _count_reply(outcome)
        if span is not None:
            span.add(xid=header.xid, prog=header.prog, vers=header.vers,
                     proc=header.proc, outcome=outcome)

    def _dispatch_call(self, header, stream, out, caller=None, span=None,
                       received_at=None):
        remaining = remaining_from_cred(header.cred)
        if remaining is not None:
            # Deadline propagation: the cred carries the budget that
            # remained when the client *built* this message.  Anchored
            # at the transport's receive instant, an expired budget
            # means the caller has already timed out — doomed work is
            # dropped (not answered: there is nobody left to read the
            # reply), before the DRC spends a probe on it.
            now = time.monotonic()
            arrived = received_at if received_at is not None else now
            if arrived + remaining <= now:
                self.doomed_dropped += 1
                if _obs.enabled:
                    _obs.registry.counter("rpc.deadline.doomed").inc()
                if span is not None:
                    span.add(xid=header.xid, outcome="doomed")
                return None
        drc_key = None
        if self.drc is not None and caller is not None:
            drc_key = DuplicateRequestCache.key(
                header.xid, caller, header.prog, header.vers, header.proc
            )
            drc_span = (span.child("server.drc_lookup")
                        if span is not None else None)
            cached = self.drc.get(drc_key)
            if drc_span is not None:
                drc_span.end(hit=cached is not None)
            if cached is not None:
                self._verdict(span, header, "drc_replay")
                return cached
        if self.draining and (header.prog, header.vers) not in \
                self._drain_exempt:
            # Draining: replays (above) and health (exempt) still
            # answer; new work is refused with a typed error reply.
            return self._shed(out, header, "draining", span)
        if self._over_quota(caller, header.prog, header.vers):
            # Over the caller's token budget: answered (never cached),
            # so a retry after the bucket refills reaches the handler.
            return self._shed(out, header, "quota", span)
        key = (header.prog, header.vers)
        if key not in self._programs:
            versions = self.versions_of(header.prog)
            if versions:
                encode_accepted_reply(
                    out, header.xid, AcceptStat.PROG_MISMATCH, NULL_AUTH,
                    mismatch=(versions[0], versions[-1]),
                )
                self._verdict(span, header, "prog_mismatch")
            else:
                encode_accepted_reply(
                    out, header.xid, AcceptStat.PROG_UNAVAIL, NULL_AUTH
                )
                self._verdict(span, header, "prog_unavail")
            return out.data()
        table = self._programs[key]
        if header.proc == NULLPROC and NULLPROC not in table:
            encode_accepted_reply(out, header.xid, AcceptStat.SUCCESS,
                                  NULL_AUTH)
            self._verdict(span, header, "success")
            return out.data()
        if header.proc not in table:
            encode_accepted_reply(out, header.xid, AcceptStat.PROC_UNAVAIL,
                                  NULL_AUTH)
            self._verdict(span, header, "proc_unavail")
            return out.data()
        proc = table[header.proc]
        decode_span = (span.child("server.decode_args")
                       if span is not None else None)
        try:
            if proc.decode_args is not None:
                args = proc.decode_args(stream)
            elif proc.xdr_args is not None:
                args = proc.xdr_args(stream, None)
            else:
                args = None
        # repro: disable=overbroad-except -- fuzzed bytes raise beyond XdrError; all map to GARBAGE_ARGS
        except Exception as exc:
            # XdrError is the designed signal, but fuzzed bytes can
            # make body filters raise UnicodeDecodeError, ValueError
            # (enum discriminants), struct.error, ... — all of them are
            # GARBAGE_ARGS per the message grammar, never a crash.
            if not isinstance(exc, XdrError):
                self.decode_defended += 1
                if _obs.enabled:
                    _obs.registry.counter(
                        "rpc.server.decode_defended").inc()
            if decode_span is not None:
                decode_span.end(outcome="garbage_args")
            logger.debug("garbage args: %r", exc)
            encode_accepted_reply(out, header.xid, AcceptStat.GARBAGE_ARGS,
                                  NULL_AUTH)
            self._verdict(span, header, "garbage_args")
            return out.data()
        if decode_span is not None:
            decode_span.end()
        if drc_key is not None:
            # Claim the key atomically before executing: with a worker
            # pool, the original and a retransmission of the same xid
            # can both miss the lookup above and sit in the queue
            # together; only the claim owner runs the handler.
            claimed = self.drc.claim(drc_key)
            if claimed is False:
                # Another worker is executing this request right now;
                # drop — the client's next retransmit replays the
                # cached reply.
                return None
            if claimed is not True:
                self._verdict(span, header, "drc_replay")
                return claimed
        try:
            return self._run_handler(proc, args, header, out, drc_key, span)
        except BaseException:
            # Only non-Exception escapes reach here (the handler and
            # encode paths below contain Exception); release the claim
            # so a retransmission is not blocked forever.
            if drc_key is not None:
                self.drc.abandon(drc_key)
            raise

    def _run_handler(self, proc, args, header, out, drc_key, span):
        handler_span = (span.child("server.handler")
                        if span is not None else None)
        try:
            self.handlers_invoked += 1
            result = proc.handler(args)
        # repro: disable=overbroad-except -- any servant crash must become a SYSTEM_ERR reply, not kill dispatch
        except Exception:
            if handler_span is not None:
                handler_span.end(outcome="error")
            logger.exception(
                "handler for prog=%d proc=%d failed", header.prog, header.proc
            )
            if _obs.enabled:
                _obs.registry.counter("rpc.server.handler_errors").inc()
            encode_accepted_reply(out, header.xid, AcceptStat.SYSTEM_ERR,
                                  NULL_AUTH)
            self._verdict(span, header, "system_err")
            return self._record_reply(drc_key, out.data())
        if handler_span is not None:
            handler_span.end()
        encode_span = (span.child("server.encode_reply")
                       if span is not None else None)
        if self._reply_template is not None and out.pos == 0:
            # Fast path: copy the pre-built SUCCESS header, patch xid.
            out.setpos(self._reply_template.write_into(out.buffer,
                                                       header.xid))
        else:
            encode_accepted_reply(out, header.xid, AcceptStat.SUCCESS,
                                  NULL_AUTH)
        outcome = "success"
        try:
            if proc.encode_res is not None:
                proc.encode_res(out, result)
            elif proc.xdr_res is not None:
                proc.xdr_res(out, result)
        # repro: disable=overbroad-except -- unmarshalable handler result must become SYSTEM_ERR, not kill the transport
        except Exception:
            # Result does not fit the reply buffer (XdrError) or the
            # handler returned something the filter cannot marshal:
            # answer SYSTEM_ERR rather than killing the transport.
            logger.exception(
                "reply encoding failed for prog=%d proc=%d",
                header.prog, header.proc,
            )
            out = XdrMemStream(bytearray(self.bufsize), XdrOp.ENCODE)
            encode_accepted_reply(out, header.xid, AcceptStat.SYSTEM_ERR,
                                  NULL_AUTH)
            outcome = "system_err"
        if encode_span is not None:
            encode_span.end(bytes=out.pos)
        self._verdict(span, header, outcome)
        return self._record_reply(drc_key, out.data())


def rpc_service(registry, prog, vers):
    """Decorator helper::

        svc = SvcRegistry()
        service = rpc_service(svc, PROG, VERS)

        @service(1, xdr_args=..., xdr_res=...)
        def rmin(args):
            ...
    """

    def proc_decorator(proc, xdr_args=None, xdr_res=None):
        def wrap(handler):
            registry.register(prog, vers, proc, handler, xdr_args, xdr_res)
            return handler

        return wrap

    return proc_decorator
