"""RPC service dispatch — the transport-independent server half.

A :class:`SvcRegistry` maps (program, version, procedure) to handlers
with their XDR filters, and turns a raw call message into a raw reply
message, covering every accept/deny path of RFC 1057 (PROG_UNAVAIL,
PROG_MISMATCH, PROC_UNAVAIL, GARBAGE_ARGS, SYSTEM_ERR, RPC_MISMATCH).

Like the client, marshaling is pluggable per procedure so the
Tempo-specialized server stubs can replace the generic micro-layers.
"""

import logging
from dataclasses import dataclass

from repro.errors import RpcProtocolError, XdrError
from repro.rpc.auth import NULL_AUTH
from repro.rpc.message import (
    AcceptStat,
    RejectStat,
    decode_call_header,
    encode_accepted_reply,
    encode_denied_reply,
)
from repro.xdr import XdrMemStream, XdrOp

logger = logging.getLogger(__name__)

#: procedure 0 of every program/version is the NULL ping.
NULLPROC = 0


@dataclass
class Procedure:
    """One registered procedure."""

    handler: object
    xdr_args: object
    xdr_res: object
    #: optional specialized (decode_args_fn, encode_res_fn)
    decode_args: object = None
    encode_res: object = None


class SvcRegistry:
    """Dispatch table for any number of programs/versions."""

    def __init__(self, bufsize=8800):
        #: (prog, vers) -> {proc: Procedure}
        self._programs = {}
        self.bufsize = bufsize

    def register(self, prog, vers, proc, handler, xdr_args=None,
                 xdr_res=None):
        """Register ``handler(args) -> result`` for one procedure."""
        table = self._programs.setdefault((prog, vers), {})
        table[proc] = Procedure(handler, xdr_args, xdr_res)

    def install_marshaler(self, prog, vers, proc, decode_args=None,
                          encode_res=None):
        """Plug specialized marshalers into a registered procedure."""
        entry = self._programs[(prog, vers)][proc]
        entry.decode_args = decode_args
        entry.encode_res = encode_res

    def versions_of(self, prog):
        return sorted(vers for p, vers in self._programs if p == prog)

    # -- the dispatcher ---------------------------------------------------

    def dispatch_bytes(self, data):
        """Process one call message; returns the reply message bytes, or
        None when the request is unparseable garbage (dropped, like the
        C svc code drops undecodable datagrams)."""
        stream = XdrMemStream(bytearray(data), XdrOp.DECODE)
        reply = bytearray(self.bufsize)
        out = XdrMemStream(reply, XdrOp.ENCODE)
        try:
            header = decode_call_header(stream)
        except RpcProtocolError as exc:
            if "bad RPC version" in str(exc):
                # We can still answer an RPC_MISMATCH if the xid parsed.
                try:
                    xid = int.from_bytes(data[0:4], "big")
                except Exception:
                    return None
                encode_denied_reply(out, xid, RejectStat.RPC_MISMATCH, (2, 2))
                return out.data()
            logger.debug("dropping undecodable call: %s", exc)
            return None
        except XdrError as exc:
            logger.debug("dropping truncated call: %s", exc)
            return None
        return self._dispatch_call(header, stream, out)

    def _dispatch_call(self, header, stream, out):
        key = (header.prog, header.vers)
        if key not in self._programs:
            versions = self.versions_of(header.prog)
            if versions:
                encode_accepted_reply(
                    out, header.xid, AcceptStat.PROG_MISMATCH, NULL_AUTH,
                    mismatch=(versions[0], versions[-1]),
                )
            else:
                encode_accepted_reply(
                    out, header.xid, AcceptStat.PROG_UNAVAIL, NULL_AUTH
                )
            return out.data()
        table = self._programs[key]
        if header.proc == NULLPROC and NULLPROC not in table:
            encode_accepted_reply(out, header.xid, AcceptStat.SUCCESS,
                                  NULL_AUTH)
            return out.data()
        if header.proc not in table:
            encode_accepted_reply(out, header.xid, AcceptStat.PROC_UNAVAIL,
                                  NULL_AUTH)
            return out.data()
        proc = table[header.proc]
        try:
            if proc.decode_args is not None:
                args = proc.decode_args(stream)
            elif proc.xdr_args is not None:
                args = proc.xdr_args(stream, None)
            else:
                args = None
        except XdrError as exc:
            logger.debug("garbage args: %s", exc)
            encode_accepted_reply(out, header.xid, AcceptStat.GARBAGE_ARGS,
                                  NULL_AUTH)
            return out.data()
        try:
            result = proc.handler(args)
        except Exception:
            logger.exception(
                "handler for prog=%d proc=%d failed", header.prog, header.proc
            )
            encode_accepted_reply(out, header.xid, AcceptStat.SYSTEM_ERR,
                                  NULL_AUTH)
            return out.data()
        encode_accepted_reply(out, header.xid, AcceptStat.SUCCESS, NULL_AUTH)
        try:
            if proc.encode_res is not None:
                proc.encode_res(out, result)
            elif proc.xdr_res is not None:
                proc.xdr_res(out, result)
        except XdrError:
            # Result does not fit the reply buffer: answer SYSTEM_ERR
            # rather than killing the transport.
            logger.exception(
                "reply encoding failed for prog=%d proc=%d",
                header.prog, header.proc,
            )
            out = XdrMemStream(bytearray(self.bufsize), XdrOp.ENCODE)
            encode_accepted_reply(out, header.xid, AcceptStat.SYSTEM_ERR,
                                  NULL_AUTH)
        return out.data()


def rpc_service(registry, prog, vers):
    """Decorator helper::

        svc = SvcRegistry()
        service = rpc_service(svc, PROG, VERS)

        @service(1, xdr_args=..., xdr_res=...)
        def rmin(args):
            ...
    """

    def proc_decorator(proc, xdr_args=None, xdr_res=None):
        def wrap(handler):
            registry.register(prog, vers, proc, handler, xdr_args, xdr_res)
            return handler

        return wrap

    return proc_decorator
