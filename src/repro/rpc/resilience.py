"""``repro.rpc.resilience`` — deadlines, circuit breaking, failover,
and server-side overload control.

The paper's claim is that the specialized fast path is *behaviorally
identical* to the generic micro-layer stack.  That equivalence only
matters if both survive the same failure envelope: the packet level
(loss, duplication, corruption) is covered by :mod:`repro.rpc.faults`
and the DRC; this module covers the *endpoint* level —

* **Deadlines** (:class:`Deadline`): one end-to-end budget per call
  that the retransmission loop, TCP connect/reconnect, and the reply
  wait all draw from.  Exhausting it raises the typed
  :class:`~repro.errors.RpcDeadlineExceeded` — a call can be slow or
  it can fail, but it can never hang past its budget.
* **Circuit breaking** (:class:`CircuitBreaker`): per-endpoint
  closed → open → half-open state machine with an injectable clock so
  tests drive the transitions deterministically.
* **Failover** (:class:`FailoverClient`): one client face over N
  replicated endpoints; rotates on connection failure, timeout, or an
  open breaker, and keeps DRC-safe xid discipline — every endpoint's
  underlying client draws xids from one shared counter, so an xid is
  never reused for two *different* calls, while a retransmission of
  the *same* call keeps its xid and stays coalescible by the server's
  duplicate-request cache.
* **Overload control** (:class:`WorkerPool`, :class:`InflightLimiter`):
  a bounded request queue with workers (UDP) and an in-flight cap
  (TCP); an overloaded server *answers* with a Sun RPC ``SYSTEM_ERR``
  reply instead of silently dropping, so clients fail over instead of
  burning their budget on retransmits.
* **Graceful drain**: the health program constants below plus
  ``SvcRegistry.begin_drain()`` — a draining server finishes in-flight
  calls, keeps serving DRC replays, answers health checks, and sheds
  everything else.

Everything here is threaded through *both* the generic and the
specialized dispatch paths, preserving the paper's equivalence under
failure as well as under load.
"""

import itertools
import os
import queue
import struct
import threading
import time
from collections import OrderedDict

from repro import obs as _obs
from repro.errors import (
    RpcCircuitOpenError,
    RpcConnectionError,
    RpcDeadlineExceeded,
    RpcDeniedError,
    RpcError,
    RpcTimeoutError,
)

__all__ = [
    "Deadline",
    "CircuitBreaker",
    "CallerQuota",
    "FailoverClient",
    "TokenBucket",
    "WorkerPool",
    "InflightLimiter",
    "HEALTH_PROG",
    "HEALTH_VERS",
    "HEALTH_PROC_STATUS",
    "STATUS_SERVING",
    "STATUS_DRAINING",
]

#: the well-known health-check program (user-defined number space).
HEALTH_PROG = 0x20FFFFFF
HEALTH_VERS = 1
#: procedure 1 returns the serving status as an XDR u_long; procedure
#: 0 is the ordinary NULL ping (answered even while draining).
HEALTH_PROC_STATUS = 1
STATUS_SERVING = 1
STATUS_DRAINING = 2


class Deadline:
    """An absolute end-to-end budget for one call.

    Every stage of the call draws from the same budget: encode, each
    retransmission window, TCP connect/reconnect, the reply wait.  The
    clock is injectable (tests pass a fake); ``remaining()`` may go
    negative once expired.
    """

    __slots__ = ("budget_s", "expires_at", "_clock")

    def __init__(self, budget_s, clock=time.monotonic):
        self._clock = clock
        self.budget_s = float(budget_s)
        self.expires_at = clock() + self.budget_s

    @classmethod
    def coerce(cls, value, clock=time.monotonic):
        """None, a Deadline, or a seconds budget → Deadline (or None)."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls(value, clock=clock)

    def remaining(self):
        return self.expires_at - self._clock()

    @property
    def expired(self):
        return self.remaining() <= 0.0

    def check(self, context=""):
        """Raise :class:`RpcDeadlineExceeded` if expired; else return
        the remaining seconds."""
        remaining = self.remaining()
        if remaining <= 0.0:
            where = f" ({context})" if context else ""
            raise RpcDeadlineExceeded(
                f"deadline of {self.budget_s}s exceeded{where}"
            )
        return remaining

    def __repr__(self):
        return (f"Deadline(budget={self.budget_s}s,"
                f" remaining={self.remaining():.3f}s)")


class CircuitBreaker:
    """Per-endpoint closed → open → half-open breaker.

    * **closed** — calls flow; ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — calls are rejected locally (no network) until
      ``recovery_s`` elapses, then the breaker half-opens.
    * **half-open** — up to ``half_open_probes`` trial calls are let
      through; one success closes the breaker, one failure re-opens it
      (and restarts the recovery clock).

    The clock is injectable so tests step time explicitly; all methods
    are thread-safe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold=5, recovery_s=1.0,
                 half_open_probes=1, clock=time.monotonic, name=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_probes = half_open_probes
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = None
        self._probes_left = 0
        #: (state, at) history of every transition, for tests/reports
        self.transitions = []
        self.rejections = 0

    @property
    def state(self):
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, state):
        """Lock held by caller."""
        self._state = state
        self.transitions.append((state, self._clock()))
        if _obs.enabled:
            _obs.registry.counter("rpc.breaker.transitions",
                                  to=state).inc()

    def _maybe_half_open(self):
        """Lock held by caller: open → half-open once recovery_s passed."""
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.recovery_s):
            self._transition(self.HALF_OPEN)
            self._probes_left = self.half_open_probes

    def allow(self):
        """May a call proceed right now?  Half-open consumes a probe."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and self._probes_left > 0:
                self._probes_left -= 1
                return True
            self.rejections += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.breaker.rejections").inc()
            return False

    def record_success(self):
        with self._lock:
            self._failures = 0
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self):
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                    self._state == self.CLOSED
                    and self._failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._transition(self.OPEN)

    def recovery_due_in(self):
        """Seconds until an open breaker half-opens (0 when not open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(
                0.0,
                self.recovery_s - (self._clock() - self._opened_at),
            )

    def summary(self):
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "rejections": self.rejections,
                "transitions": len(self.transitions),
            }

    def __repr__(self):
        return f"CircuitBreaker(state={self.state}, name={self.name!r})"


class InflightLimiter:
    """A non-blocking in-flight counter with an optional cap.

    ``try_acquire`` admits a request (False == over the cap: shed it);
    ``wait_idle`` is what graceful drain blocks on.
    """

    def __init__(self, limit=None):
        self.limit = limit
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def inflight(self):
        with self._lock:
            return self._inflight

    def try_acquire(self):
        with self._lock:
            if self.limit is not None and self._inflight >= self.limit:
                self.rejected += 1
                return False
            self._inflight += 1
            self.admitted += 1
            return True

    def release(self):
        with self._lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    def wait_idle(self, timeout=None):
        """Block until nothing is in flight; True when idle."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._lock:
            while self._inflight > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True


class TokenBucket:
    """One caller's refillable call allowance.

    Classic token bucket: ``rate`` tokens/second accrue up to
    ``burst``; a call costs one token.  Not thread-safe on its own —
    :class:`CallerQuota` serializes access.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate, burst, now):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_at = now

    def try_take(self, now):
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class CallerQuota:
    """Per-caller token-bucket admission, layered under the queue-depth
    and in-flight overload controls.

    Those controls bound *total* load; this one bounds *each caller's
    share*, so one greedy client cannot starve the fleet for everyone
    behind the same replica set.  The caller identity is the transport
    peer's host (not the ephemeral port — a client that reconnects
    keeps drawing from the same budget).  Buckets live in a bounded
    LRU: a long tail of one-shot callers cannot grow memory without
    bound, at the cost that a caller idle long enough to be evicted
    returns to a full burst.

    A denied call is *answered* (``SYSTEM_ERR``, shed reason
    ``quota``), mirroring the overload path — the client fails over or
    backs off instead of burning its deadline on retransmits.
    """

    def __init__(self, rate, burst=None, max_callers=4096,
                 clock=time.monotonic, key=None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1")
        self.max_callers = max_callers
        self._clock = clock
        #: caller -> bucket identity; default groups by host.  Pass
        #: ``key=lambda caller: caller`` to budget each socket
        #: separately (e.g. loopback fleets, where every peer shares
        #: one host).
        self._key = key if key is not None else self.identity
        self._lock = threading.Lock()
        self._buckets = OrderedDict()
        self.admitted = 0
        self.shed = 0
        self.evicted = 0

    @staticmethod
    def identity(caller):
        """The quota identity of a transport caller: host for address
        tuples, the value itself otherwise."""
        if isinstance(caller, tuple) and caller:
            return caller[0]
        return caller

    def admit(self, caller):
        """Charge one call to ``caller``'s bucket; False means shed."""
        ident = self._key(caller)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(ident)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[ident] = bucket
                while len(self._buckets) > self.max_callers:
                    self._buckets.popitem(last=False)
                    self.evicted += 1
            else:
                self._buckets.move_to_end(ident)
            admitted = bucket.try_take(now)
            if admitted:
                self.admitted += 1
            else:
                self.shed += 1
            callers = len(self._buckets)
        if _obs.enabled:
            name = "rpc.quota.admitted" if admitted else "rpc.quota.sheds"
            _obs.registry.counter(name).inc()
            _obs.registry.gauge("rpc.quota.callers").set(callers)
        return admitted

    def summary(self):
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "callers": len(self._buckets),
                "admitted": self.admitted,
                "shed": self.shed,
                "evicted": self.evicted,
            }


_STOP = object()


class WorkerPool:
    """A bounded request queue drained by daemon worker threads.

    ``submit`` never blocks: a full queue returns False and the caller
    sheds the request with a proper RPC error reply instead of letting
    it pile up.  Worker exceptions are contained (counted, never
    propagated), so a hostile request cannot kill a worker.  Graceful
    drain waits on ``wait_idle`` — queue empty *and* no handler mid-
    flight.
    """

    def __init__(self, workers, queue_depth, handler, name="rpc-worker"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.handler = handler
        self._queue = queue.Queue(maxsize=max(1, queue_depth))
        self._limiter = InflightLimiter()
        self._stopped = threading.Event()
        self.worker_errors = 0
        self.submitted = 0
        self.shed = 0
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, item):
        """Enqueue one request; False means the queue is full (shed)."""
        try:
            # Count the item as in flight *before* it is visible to a
            # worker, so wait_idle can never observe a queued-but-
            # uncounted request.
            self._limiter.try_acquire()
            self._queue.put_nowait(item)
        except queue.Full:
            self._limiter.release()
            self.shed += 1
            return False
        self.submitted += 1
        if _obs.enabled:
            _obs.registry.gauge("rpc.server.queue_depth").set(
                self._queue.qsize()
            )
        return True

    def _run(self):
        while True:
            try:
                item = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stopped.is_set():
                    return
                continue
            if item is _STOP:
                return
            try:
                self.handler(item)
            except Exception:
                # Contain everything: a worker must survive any
                # request.  (The dispatcher already answers malformed
                # input with typed RPC errors; this is the last line.)
                self.worker_errors += 1
            finally:
                self._limiter.release()

    @property
    def inflight(self):
        return self._limiter.inflight

    def wait_idle(self, timeout=None):
        """True once the queue is empty and no handler is running."""
        return self._limiter.wait_idle(timeout)

    def stop(self, timeout=2.0):
        self._stopped.set()
        for _ in self._threads:
            try:
                self._queue.put_nowait(_STOP)
            except queue.Full:
                break
        for thread in self._threads:
            thread.join(timeout=timeout)


class FailoverClient:
    """One client face over N replicated endpoints.

    ``endpoints`` is a list of ``(host, port)``; ``transport`` picks
    UDP or TCP.  Each endpoint gets a lazily-created underlying client
    and its own :class:`CircuitBreaker`.  A call tries the current
    endpoint first and rotates on connection failure, timeout, server
    error, or an open breaker; with a deadline it keeps cycling the
    replica set until the budget is spent, then raises
    :class:`~repro.errors.RpcDeadlineExceeded`.

    **Xid discipline:** all underlying clients share one xid counter.
    A retransmission of the same call (inside one endpoint's
    retransmission loop) keeps its xid — the server's DRC coalesces
    it; a *failover* attempt is a new call with a fresh xid — the new
    endpoint has no reply cached for it, so at-least-once execution
    across endpoints is explicit, never accidental xid collision.

    ``call_budget_s`` is the default per-call deadline (None = no
    deadline: one rotation through the replica set, then the last
    error propagates).
    """

    def __init__(self, endpoints, prog, vers, transport="udp",
                 call_budget_s=None, breaker_threshold=3,
                 breaker_recovery_s=1.0, retry_pause_s=0.02,
                 clock=time.monotonic, client_factory=None,
                 **client_kwargs):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        if transport not in ("udp", "tcp", "mux-udp", "mux-tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.endpoints = [tuple(endpoint) for endpoint in endpoints]
        self.prog = prog
        self.vers = vers
        self.transport = transport
        self.call_budget_s = call_budget_s
        self.retry_pause_s = retry_pause_s
        self._clock = clock
        self._client_factory = client_factory
        self._client_kwargs = dict(client_kwargs)
        self._breaker_threshold = breaker_threshold
        self._breaker_recovery_s = breaker_recovery_s
        self._clients = [None] * len(self.endpoints)
        self.breakers = [
            self._make_breaker(host, port)
            for host, port in self.endpoints
        ]
        self._index = 0
        self._lock = threading.Lock()
        start = struct.unpack(">I", os.urandom(4))[0]
        #: one xid sequence shared by every underlying client
        self._xids = itertools.count(start)
        self.failovers = 0
        self.calls_completed = 0
        self.deadline_exceeded = 0
        #: (endpoint, error-type-name) of failures seen, newest last
        self.last_errors = []

    # -- endpoint/client management --------------------------------------

    def _make_breaker(self, host, port):
        return CircuitBreaker(failure_threshold=self._breaker_threshold,
                              recovery_s=self._breaker_recovery_s,
                              clock=self._clock, name=f"{host}:{port}")

    def _make_client(self, index, deadline):
        host, port = self.endpoints[index]
        if self._client_factory is not None:
            return self._client_factory(host, port, self.prog, self.vers,
                                        **self._client_kwargs)
        kwargs = dict(self._client_kwargs)
        if self.transport == "udp":
            from repro.rpc.clnt_udp import UdpClient

            return UdpClient(host, port, self.prog, self.vers, **kwargs)
        if self.transport == "mux-udp":
            from repro.rpc.mux import MuxUdpClient

            return MuxUdpClient(host, port, self.prog, self.vers, **kwargs)
        if deadline is not None:
            kwargs["timeout"] = min(
                kwargs.get("timeout", 25.0), max(deadline.check("connect"),
                                                 1e-3)
            )
        if self.transport == "mux-tcp":
            from repro.rpc.mux import MuxTcpClient

            return MuxTcpClient(host, port, self.prog, self.vers, **kwargs)
        from repro.rpc.clnt_tcp import TcpClient

        return TcpClient(host, port, self.prog, self.vers, **kwargs)

    def _client(self, index, deadline=None):
        client = self._clients[index]
        if client is None:
            client = self._make_client(index, deadline)
            # Shared xid discipline: every endpoint draws from the one
            # counter, so no two distinct calls ever share an xid.
            client._xids = self._xids
            self._clients[index] = client
        return client

    def _drop_client(self, index):
        """Forget a broken client so the next use reconnects."""
        client = self._clients[index]
        self._clients[index] = None
        if client is not None:
            try:
                client.close()
            except OSError:
                pass

    def set_endpoints(self, endpoints):
        """Replace the replica set in place (the fleet watcher's hook).

        Endpoints present in both the old and new sets keep their
        underlying client and breaker state; departed endpoints'
        clients are closed; new endpoints start cold.  The current
        rotation position follows the endpoint it pointed at when that
        endpoint survives.  Returns True when the set actually
        changed; an empty list is rejected — a failover client with
        zero endpoints could never recover.
        """
        fresh = []
        for endpoint in endpoints:
            endpoint = tuple(endpoint)
            if endpoint not in fresh:
                fresh.append(endpoint)
        if not fresh:
            raise ValueError("need at least one endpoint")
        with self._lock:
            if fresh == self.endpoints:
                return False
            clients = dict(zip(self.endpoints, self._clients))
            breakers = dict(zip(self.endpoints, self.breakers))
            current = (self.endpoints[self._index]
                       if self._index < len(self.endpoints) else None)
            keep = set(fresh)
            retired = [client for endpoint, client in clients.items()
                       if client is not None and endpoint not in keep]
            self.endpoints = fresh
            self._clients = [clients.get(endpoint) for endpoint in fresh]
            self.breakers = [
                breakers.get(endpoint) or self._make_breaker(*endpoint)
                for endpoint in fresh
            ]
            self._index = (fresh.index(current) if current in keep else 0)
        for client in retired:
            try:
                client.close()
            except OSError:
                pass
        return True

    # -- the call loop ----------------------------------------------------

    def call(self, proc, args=None, xdr_args=None, xdr_res=None,
             deadline=None):
        budget = deadline if deadline is not None else self.call_budget_s
        deadline = Deadline.coerce(budget, clock=self._clock)
        last_error = None
        while True:
            # Recomputed per rotation: set_endpoints() may swap the
            # replica set between (or during) rotations.
            count = len(self.endpoints)
            if deadline is not None:
                try:
                    deadline.check(f"proc={proc}")
                except RpcDeadlineExceeded:
                    self.deadline_exceeded += 1
                    if last_error is not None:
                        raise RpcDeadlineExceeded(
                            f"deadline exceeded calling proc={proc}; last"
                            f" endpoint error: {last_error}"
                        ) from last_error
                    raise
            attempted = False
            for offset in range(count):
                index = (self._index + offset) % count
                try:
                    if not self.breakers[index].allow():
                        continue
                    if deadline is not None and deadline.expired:
                        break
                    attempted = True
                    value, failed = self._try_endpoint(
                        index, proc, args, xdr_args, xdr_res, deadline
                    )
                except IndexError:
                    # The replica set shrank mid-rotation; restart with
                    # the fresh view.
                    break
                if not failed:
                    with self._lock:
                        if self._index != index:
                            self.failovers += 1
                            if _obs.enabled:
                                _obs.registry.counter(
                                    "rpc.client.failovers").inc()
                        self._index = index
                        self.calls_completed += 1
                    return value
                last_error = value
            if deadline is None:
                # No budget to keep cycling: one full rotation only.
                break
            # Budget remains: pause briefly (bounded by the budget and
            # by the earliest breaker recovery) and cycle again.
            pause = self.retry_pause_s
            if not attempted:
                due = min(
                    breaker.recovery_due_in() for breaker in self.breakers
                )
                pause = max(pause, min(due, 0.25))
            remaining = deadline.remaining()
            if remaining <= 0:
                continue  # the top-of-loop check raises
            time.sleep(min(pause, max(remaining, 0.0)))
        if last_error is not None:
            raise last_error
        raise RpcCircuitOpenError(
            f"all {count} endpoints have open circuit breakers"
        )

    def _try_endpoint(self, index, proc, args, xdr_args, xdr_res,
                      deadline):
        """One attempt on one endpoint.

        Returns ``(value, False)`` on success, ``(error, True)`` on a
        failure that should rotate to the next endpoint.  Deadline
        exhaustion propagates — the budget is global, not
        per-endpoint.
        """
        breaker = self.breakers[index]
        try:
            client = self._client(index, deadline)
        except (RpcConnectionError, OSError) as exc:
            breaker.record_failure()
            self._note_failure(index, exc)
            return self._as_rpc_error(exc), True
        try:
            value = client.call(proc, args, xdr_args=xdr_args,
                                xdr_res=xdr_res, deadline=deadline)
        except RpcDeadlineExceeded:
            breaker.record_failure()
            self.deadline_exceeded += 1
            raise
        except (RpcConnectionError, RpcTimeoutError, RpcDeniedError) as exc:
            breaker.record_failure()
            self._note_failure(index, exc)
            if isinstance(exc, RpcConnectionError):
                self._drop_client(index)
            return exc, True
        breaker.record_success()
        return value, False

    def _note_failure(self, index, exc):
        self.last_errors.append(
            (self.endpoints[index], type(exc).__name__)
        )
        del self.last_errors[:-32]

    @staticmethod
    def _as_rpc_error(exc):
        if isinstance(exc, RpcError):
            return exc
        return RpcConnectionError(f"endpoint unreachable: {exc}")

    # -- convenience -------------------------------------------------------

    def null_call(self, deadline=None):
        return self.call(0, deadline=deadline)

    def health(self, deadline=None):
        """The health program's status (``STATUS_SERVING`` /
        ``STATUS_DRAINING``) from whichever replica answers."""
        from repro.xdr import xdr_u_long

        saved_prog, saved_vers = self.prog, self.vers
        clients = list(self._clients)
        try:
            # Health rides its own program number; underlying clients
            # are per-(prog, vers), so query with a throwaway set.
            self.prog, self.vers = HEALTH_PROG, HEALTH_VERS
            self._clients = [None] * len(self.endpoints)
            return self.call(HEALTH_PROC_STATUS, xdr_res=xdr_u_long,
                             deadline=deadline)
        finally:
            for client in self._clients:
                if client is not None:
                    client.close()
            self.prog, self.vers = saved_prog, saved_vers
            self._clients = clients

    def stats_summary(self):
        return {
            "calls_completed": self.calls_completed,
            "failovers": self.failovers,
            "deadline_exceeded": self.deadline_exceeded,
            "breakers": [breaker.summary() for breaker in self.breakers],
        }

    def close(self):
        for index in range(len(self._clients)):
            self._drop_client(index)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
