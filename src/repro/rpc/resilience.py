"""``repro.rpc.resilience`` — deadlines, circuit breaking, failover,
and server-side overload control.

The paper's claim is that the specialized fast path is *behaviorally
identical* to the generic micro-layer stack.  That equivalence only
matters if both survive the same failure envelope: the packet level
(loss, duplication, corruption) is covered by :mod:`repro.rpc.faults`
and the DRC; this module covers the *endpoint* level —

* **Deadlines** (:class:`Deadline`): one end-to-end budget per call
  that the retransmission loop, TCP connect/reconnect, and the reply
  wait all draw from.  Exhausting it raises the typed
  :class:`~repro.errors.RpcDeadlineExceeded` — a call can be slow or
  it can fail, but it can never hang past its budget.
* **Circuit breaking** (:class:`CircuitBreaker`): per-endpoint
  closed → open → half-open state machine with an injectable clock so
  tests drive the transitions deterministically.
* **Failover** (:class:`FailoverClient`): one client face over N
  replicated endpoints; rotates on connection failure, timeout, or an
  open breaker, and keeps DRC-safe xid discipline — every endpoint's
  underlying client draws xids from one shared counter, so an xid is
  never reused for two *different* calls, while a retransmission of
  the *same* call keeps its xid and stays coalescible by the server's
  duplicate-request cache.
* **Overload control** (:class:`WorkerPool`, :class:`InflightLimiter`):
  a bounded request queue with workers (UDP) and an in-flight cap
  (TCP); an overloaded server *answers* with a Sun RPC ``SYSTEM_ERR``
  reply instead of silently dropping, so clients fail over instead of
  burning their budget on retransmits.
* **Graceful drain**: the health program constants below plus
  ``SvcRegistry.begin_drain()`` — a draining server finishes in-flight
  calls, keeps serving DRC replays, answers health checks, and sheds
  everything else.

Everything here is threaded through *both* the generic and the
specialized dispatch paths, preserving the paper's equivalence under
failure as well as under load.
"""

import itertools
import os
import queue
import struct
import threading
import time
from collections import OrderedDict

from repro import obs as _obs
from repro.errors import (
    RpcCircuitOpenError,
    RpcConnectionError,
    RpcDeadlineExceeded,
    RpcDeniedError,
    RpcError,
    RpcRetryBudgetExhausted,
    RpcTimeoutError,
)
from repro.rpc.overload import CodelQueue, HedgeTrigger, RetryBudget

__all__ = [
    "Deadline",
    "CircuitBreaker",
    "CallerQuota",
    "FailoverClient",
    "TokenBucket",
    "WorkerPool",
    "InflightLimiter",
    "HEALTH_PROG",
    "HEALTH_VERS",
    "HEALTH_PROC_STATUS",
    "STATUS_SERVING",
    "STATUS_DRAINING",
]

#: the well-known health-check program (user-defined number space).
HEALTH_PROG = 0x20FFFFFF
HEALTH_VERS = 1
#: procedure 1 returns the serving status as an XDR u_long; procedure
#: 0 is the ordinary NULL ping (answered even while draining).
HEALTH_PROC_STATUS = 1
STATUS_SERVING = 1
STATUS_DRAINING = 2


class Deadline:
    """An absolute end-to-end budget for one call.

    Every stage of the call draws from the same budget: encode, each
    retransmission window, TCP connect/reconnect, the reply wait.  The
    clock is injectable (tests pass a fake); ``remaining()`` may go
    negative once expired.
    """

    __slots__ = ("budget_s", "expires_at", "_clock")

    def __init__(self, budget_s, clock=time.monotonic):
        self._clock = clock
        self.budget_s = float(budget_s)
        self.expires_at = clock() + self.budget_s

    @classmethod
    def coerce(cls, value, clock=time.monotonic):
        """None, a Deadline, or a seconds budget → Deadline (or None)."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls(value, clock=clock)

    def remaining(self):
        return self.expires_at - self._clock()

    @property
    def expired(self):
        return self.remaining() <= 0.0

    def check(self, context=""):
        """Raise :class:`RpcDeadlineExceeded` if expired; else return
        the remaining seconds."""
        remaining = self.remaining()
        if remaining <= 0.0:
            where = f" ({context})" if context else ""
            raise RpcDeadlineExceeded(
                f"deadline of {self.budget_s}s exceeded{where}"
            )
        return remaining

    def __repr__(self):
        return (f"Deadline(budget={self.budget_s}s,"
                f" remaining={self.remaining():.3f}s)")


class CircuitBreaker:
    """Per-endpoint closed → open → half-open breaker.

    * **closed** — calls flow; ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — calls are rejected locally (no network) until
      ``recovery_s`` elapses, then the breaker half-opens.
    * **half-open** — up to ``half_open_probes`` trial calls are let
      through; one success closes the breaker, one failure re-opens it
      (and restarts the recovery clock).

    The clock is injectable so tests step time explicitly; all methods
    are thread-safe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold=5, recovery_s=1.0,
                 half_open_probes=1, clock=time.monotonic, name=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_probes = half_open_probes
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = None
        self._probes_left = 0
        #: (state, at) history of every transition, for tests/reports
        self.transitions = []
        self.rejections = 0

    @property
    def state(self):
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, state):
        """Lock held by caller."""
        self._state = state
        self.transitions.append((state, self._clock()))
        if _obs.enabled:
            _obs.registry.counter("rpc.breaker.transitions",
                                  to=state).inc()

    def _maybe_half_open(self):
        """Lock held by caller: open → half-open once recovery_s passed."""
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.recovery_s):
            self._transition(self.HALF_OPEN)
            self._probes_left = self.half_open_probes

    def allow(self):
        """May a call proceed right now?  Half-open consumes a probe."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and self._probes_left > 0:
                self._probes_left -= 1
                return True
            self.rejections += 1
            if _obs.enabled:
                _obs.registry.counter("rpc.breaker.rejections").inc()
            return False

    def record_success(self):
        with self._lock:
            self._failures = 0
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self):
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                    self._state == self.CLOSED
                    and self._failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._transition(self.OPEN)

    def recovery_due_in(self):
        """Seconds until an open breaker half-opens (0 when not open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(
                0.0,
                self.recovery_s - (self._clock() - self._opened_at),
            )

    def summary(self):
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "rejections": self.rejections,
                "transitions": len(self.transitions),
            }

    def __repr__(self):
        return f"CircuitBreaker(state={self.state}, name={self.name!r})"


class InflightLimiter:
    """A non-blocking in-flight counter with an optional cap.

    ``try_acquire`` admits a request (False == over the cap: shed it);
    ``wait_idle`` is what graceful drain blocks on.
    """

    def __init__(self, limit=None):
        self.limit = limit
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def inflight(self):
        with self._lock:
            return self._inflight

    def try_acquire(self):
        with self._lock:
            if self.limit is not None and self._inflight >= self.limit:
                self.rejected += 1
                return False
            self._inflight += 1
            self.admitted += 1
            return True

    def release(self):
        with self._lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    def wait_idle(self, timeout=None):
        """Block until nothing is in flight; True when idle."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._lock:
            while self._inflight > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True


class TokenBucket:
    """One caller's refillable call allowance.

    Classic token bucket: ``rate`` tokens/second accrue up to
    ``burst``; a call costs one token.  Not thread-safe on its own —
    :class:`CallerQuota` serializes access.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate, burst, now):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_at = now

    def try_take(self, now):
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class CallerQuota:
    """Per-caller token-bucket admission, layered under the queue-depth
    and in-flight overload controls.

    Those controls bound *total* load; this one bounds *each caller's
    share*, so one greedy client cannot starve the fleet for everyone
    behind the same replica set.  The caller identity is the transport
    peer's host (not the ephemeral port — a client that reconnects
    keeps drawing from the same budget).  Buckets live in a bounded
    LRU: a long tail of one-shot callers cannot grow memory without
    bound, at the cost that a caller idle long enough to be evicted
    returns to a full burst.

    A denied call is *answered* (``SYSTEM_ERR``, shed reason
    ``quota``), mirroring the overload path — the client fails over or
    backs off instead of burning its deadline on retransmits.
    """

    def __init__(self, rate, burst=None, max_callers=4096,
                 clock=time.monotonic, key=None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1")
        self.max_callers = max_callers
        self._clock = clock
        #: caller -> bucket identity; default groups by host.  Pass
        #: ``key=lambda caller: caller`` to budget each socket
        #: separately (e.g. loopback fleets, where every peer shares
        #: one host).
        self._key = key if key is not None else self.identity
        self._lock = threading.Lock()
        self._buckets = OrderedDict()
        self.admitted = 0
        self.shed = 0
        self.evicted = 0

    @staticmethod
    def identity(caller):
        """The quota identity of a transport caller: host for address
        tuples, the value itself otherwise."""
        if isinstance(caller, tuple) and caller:
            return caller[0]
        return caller

    def admit(self, caller):
        """Charge one call to ``caller``'s bucket; False means shed."""
        ident = self._key(caller)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(ident)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[ident] = bucket
                while len(self._buckets) > self.max_callers:
                    self._buckets.popitem(last=False)
                    self.evicted += 1
            else:
                self._buckets.move_to_end(ident)
            admitted = bucket.try_take(now)
            if admitted:
                self.admitted += 1
            else:
                self.shed += 1
            callers = len(self._buckets)
        if _obs.enabled:
            name = "rpc.quota.admitted" if admitted else "rpc.quota.sheds"
            _obs.registry.counter(name).inc()
            _obs.registry.gauge("rpc.quota.callers").set(callers)
        return admitted

    def summary(self):
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "callers": len(self._buckets),
                "admitted": self.admitted,
                "shed": self.shed,
                "evicted": self.evicted,
            }


_STOP = object()


class WorkerPool:
    """A bounded request queue drained by daemon worker threads.

    ``submit`` never blocks: a full queue returns False and the caller
    sheds the request with a proper RPC error reply instead of letting
    it pile up.  The queue itself is a
    :class:`~repro.rpc.overload.CodelQueue`: under sustained sojourn
    above the CoDel target, dequeued items are *shed* (handed to
    ``shed_handler`` so the owner can answer them with a SYSTEM_ERR
    reply) instead of executed, and the ``codel-lifo`` policy serves
    newest-first while overloaded.  ``queue_policy="fifo"`` restores
    the legacy never-shed bounded queue.  Worker exceptions are
    contained (counted, never propagated), so a hostile request cannot
    kill a worker.  Graceful drain waits on ``wait_idle`` — queue
    empty *and* no handler mid-flight.
    """

    def __init__(self, workers, queue_depth, handler, name="rpc-worker",
                 queue_policy=None, queue_target_s=None,
                 queue_interval_s=None, shed_handler=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.handler = handler
        #: called with a dequeued-but-shed item; the owner answers it
        self.shed_handler = shed_handler
        self._queue = CodelQueue(max(1, queue_depth),
                                 target_s=queue_target_s,
                                 interval_s=queue_interval_s,
                                 policy=queue_policy)
        self._limiter = InflightLimiter()
        self._stopped = threading.Event()
        self.worker_errors = 0
        self.submitted = 0
        self.shed = 0
        self.sojourn_shed = 0
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def queue_policy(self):
        return self._queue.policy

    def queue_summary(self):
        return self._queue.summary()

    def submit(self, item):
        """Enqueue one request; False means the queue is full (shed)."""
        try:
            # Count the item as in flight *before* it is visible to a
            # worker, so wait_idle can never observe a queued-but-
            # uncounted request.
            self._limiter.try_acquire()
            self._queue.put_nowait(item)
        except queue.Full:
            self._limiter.release()
            self.shed += 1
            return False
        self.submitted += 1
        if _obs.enabled:
            _obs.registry.gauge("rpc.server.queue_depth").set(
                self._queue.qsize()
            )
        return True

    def _run(self):
        while True:
            try:
                item, _sojourn, shed = self._queue.pop(timeout=0.2)
            except queue.Empty:
                if self._stopped.is_set():
                    return
                continue
            if item is _STOP:
                return
            try:
                if shed:
                    # The CoDel controller says this item sat too long:
                    # answer it (shed_handler sends SYSTEM_ERR) rather
                    # than execute work whose caller has likely moved
                    # on — executing it would only prolong the queue.
                    self.sojourn_shed += 1
                    if self.shed_handler is not None:
                        self.shed_handler(item)
                else:
                    self.handler(item)
            # repro: disable=overbroad-except -- last-line worker containment: a pool thread must survive any request
            except Exception:
                # Contain everything: a worker must survive any
                # request.  (The dispatcher already answers malformed
                # input with typed RPC errors; this is the last line.)
                self.worker_errors += 1
            finally:
                self._limiter.release()

    @property
    def inflight(self):
        return self._limiter.inflight

    def wait_idle(self, timeout=None):
        """True once the queue is empty and no handler is running."""
        return self._limiter.wait_idle(timeout)

    def stop(self, timeout=2.0):
        self._stopped.set()
        for _ in self._threads:
            try:
                self._queue.put_nowait(_STOP)
            except queue.Full:
                break
        for thread in self._threads:
            thread.join(timeout=timeout)


class FailoverClient:
    """One client face over N replicated endpoints.

    ``endpoints`` is a list of ``(host, port)``; ``transport`` picks
    UDP or TCP.  Each endpoint gets a lazily-created underlying client
    and its own :class:`CircuitBreaker`.  A call tries the current
    endpoint first and rotates on connection failure, timeout, server
    error, or an open breaker; with a deadline it keeps cycling the
    replica set until the budget is spent, then raises
    :class:`~repro.errors.RpcDeadlineExceeded`.

    **Xid discipline:** all underlying clients share one xid counter.
    A retransmission of the same call (inside one endpoint's
    retransmission loop) keeps its xid — the server's DRC coalesces
    it; a *failover* attempt is a new call with a fresh xid — the new
    endpoint has no reply cached for it, so at-least-once execution
    across endpoints is explicit, never accidental xid collision.

    ``call_budget_s`` is the default per-call deadline (None = no
    deadline: one rotation through the replica set, then the last
    error propagates).

    **Retry budget:** ``retry_budget_ratio`` > 0 (or the
    ``REPRO_RETRY_BUDGET`` knob) installs a
    :class:`~repro.rpc.overload.RetryBudget` shared by the rotation
    loop — after the first failed attempt, every further attempt
    (rotation or re-cycle) must withdraw a token, and exhaustion
    raises the typed
    :class:`~repro.errors.RpcRetryBudgetExhausted` instead of feeding
    a retry storm.  UDP transports also get a per-endpoint budget
    gating their in-call retransmissions.

    **Hedging:** ``hedge=True`` (or ``REPRO_HEDGE``) arms hedged
    requests on transports with an async surface (``mux-udp`` /
    ``mux-tcp``): once the :class:`~repro.rpc.overload.HedgeTrigger`
    has a latency profile, a call that outlives the adaptive p95 delay
    issues a second request to another replica; the first reply wins.
    The hedge is a *new call with a fresh xid* from the shared
    counter, so the PR 4 xid discipline plus the server DRC guarantee
    the loser coalesces or executes at-most-once — never a duplicate
    execution of the same xid.
    """

    def __init__(self, endpoints, prog, vers, transport="udp",
                 call_budget_s=None, breaker_threshold=3,
                 breaker_recovery_s=1.0, retry_pause_s=0.02,
                 clock=time.monotonic, client_factory=None,
                 retry_budget_ratio=None, retry_budget_burst=10.0,
                 retry_budget_min_rate=1.0, hedge=None,
                 hedge_trigger=None, hedge_quantile=None,
                 hedge_min_delay_s=None, hedge_min_samples=16,
                 **client_kwargs):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        if transport not in ("udp", "tcp", "mux-udp", "mux-tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.endpoints = [tuple(endpoint) for endpoint in endpoints]
        self.prog = prog
        self.vers = vers
        self.transport = transport
        self.call_budget_s = call_budget_s
        self.retry_pause_s = retry_pause_s
        self._clock = clock
        self._client_factory = client_factory
        self._client_kwargs = dict(client_kwargs)
        self._breaker_threshold = breaker_threshold
        self._breaker_recovery_s = breaker_recovery_s
        if retry_budget_ratio is None:
            retry_budget_ratio = float(
                os.environ.get("REPRO_RETRY_BUDGET", "0") or 0.0
            )
        self._retry_budget_ratio = retry_budget_ratio
        self._retry_budget_burst = retry_budget_burst
        self._retry_budget_min_rate = retry_budget_min_rate
        #: gates rotation/re-cycle attempts after the first failure
        self._rotation_budget = self._make_retry_budget()
        #: per-endpoint budgets handed to UDP clients (retransmit gate)
        self._retry_budgets = [
            self._make_retry_budget() for _ in self.endpoints
        ]
        if hedge is None:
            hedge = os.environ.get(
                "REPRO_HEDGE", ""
            ).strip().lower() in ("1", "true", "yes", "on")
        self.hedge_enabled = bool(hedge)
        if hedge_trigger is not None:
            self._hedge_trigger = hedge_trigger
            self.hedge_enabled = True
        elif self.hedge_enabled:
            if hedge_quantile is None:
                hedge_quantile = float(
                    os.environ.get("REPRO_HEDGE_QUANTILE", 0.95)
                )
            if hedge_min_delay_s is None:
                hedge_min_delay_s = float(
                    os.environ.get("REPRO_HEDGE_MIN_DELAY_MS", 1.0)
                ) / 1e3
            self._hedge_trigger = HedgeTrigger(
                quantile=hedge_quantile,
                min_samples=hedge_min_samples,
                min_delay_s=hedge_min_delay_s,
            )
        else:
            self._hedge_trigger = None
        self._clients = [None] * len(self.endpoints)
        self.breakers = [
            self._make_breaker(host, port)
            for host, port in self.endpoints
        ]
        self._index = 0
        self._lock = threading.Lock()
        start = struct.unpack(">I", os.urandom(4))[0]
        #: one xid sequence shared by every underlying client
        self._xids = itertools.count(start)
        self.failovers = 0
        self.calls_completed = 0
        self.deadline_exceeded = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.retry_budget_exhausted = 0
        #: (endpoint, error-type-name) of failures seen, newest last
        self.last_errors = []

    # -- endpoint/client management --------------------------------------

    def _make_breaker(self, host, port):
        return CircuitBreaker(failure_threshold=self._breaker_threshold,
                              recovery_s=self._breaker_recovery_s,
                              clock=self._clock, name=f"{host}:{port}")

    def _make_retry_budget(self):
        if self._retry_budget_ratio <= 0:
            return None
        return RetryBudget(self._retry_budget_ratio,
                           burst=self._retry_budget_burst,
                           min_rate=self._retry_budget_min_rate,
                           clock=self._clock)

    def _make_client(self, index, deadline):
        host, port = self.endpoints[index]
        if self._client_factory is not None:
            return self._client_factory(host, port, self.prog, self.vers,
                                        **self._client_kwargs)
        kwargs = dict(self._client_kwargs)
        if self.transport in ("udp", "mux-udp"):
            # UDP transports retransmit: hand them this endpoint's
            # retry budget so in-call retransmissions draw from the
            # same accounting as rotation attempts.
            budget = self._retry_budgets[index]
            if budget is not None:
                kwargs.setdefault("retry_budget", budget)
        if self.transport == "udp":
            from repro.rpc.clnt_udp import UdpClient

            return UdpClient(host, port, self.prog, self.vers, **kwargs)
        if self.transport == "mux-udp":
            from repro.rpc.mux import MuxUdpClient

            return MuxUdpClient(host, port, self.prog, self.vers, **kwargs)
        if deadline is not None:
            kwargs["timeout"] = min(
                kwargs.get("timeout", 25.0), max(deadline.check("connect"),
                                                 1e-3)
            )
        if self.transport == "mux-tcp":
            from repro.rpc.mux import MuxTcpClient

            return MuxTcpClient(host, port, self.prog, self.vers, **kwargs)
        from repro.rpc.clnt_tcp import TcpClient

        return TcpClient(host, port, self.prog, self.vers, **kwargs)

    def _client(self, index, deadline=None):
        client = self._clients[index]
        if client is None:
            client = self._make_client(index, deadline)
            # Shared xid discipline: every endpoint draws from the one
            # counter, so no two distinct calls ever share an xid.
            client._xids = self._xids
            self._clients[index] = client
        return client

    def _drop_client(self, index):
        """Forget a broken client so the next use reconnects."""
        client = self._clients[index]
        self._clients[index] = None
        if client is not None:
            try:
                client.close()
            except OSError:
                pass

    def set_endpoints(self, endpoints):
        """Replace the replica set in place (the fleet watcher's hook).

        Endpoints present in both the old and new sets keep their
        underlying client and breaker state; departed endpoints'
        clients are closed; new endpoints start cold.  The current
        rotation position follows the endpoint it pointed at when that
        endpoint survives.  Returns True when the set actually
        changed; an empty list is rejected — a failover client with
        zero endpoints could never recover.
        """
        fresh = []
        for endpoint in endpoints:
            endpoint = tuple(endpoint)
            if endpoint not in fresh:
                fresh.append(endpoint)
        if not fresh:
            raise ValueError("need at least one endpoint")
        with self._lock:
            if fresh == self.endpoints:
                return False
            clients = dict(zip(self.endpoints, self._clients))
            breakers = dict(zip(self.endpoints, self.breakers))
            budgets = dict(zip(self.endpoints, self._retry_budgets))
            current = (self.endpoints[self._index]
                       if self._index < len(self.endpoints) else None)
            keep = set(fresh)
            retired = [client for endpoint, client in clients.items()
                       if client is not None and endpoint not in keep]
            self.endpoints = fresh
            self._clients = [clients.get(endpoint) for endpoint in fresh]
            self.breakers = [
                breakers.get(endpoint) or self._make_breaker(*endpoint)
                for endpoint in fresh
            ]
            self._retry_budgets = [
                budgets.get(endpoint) or self._make_retry_budget()
                for endpoint in fresh
            ]
            self._index = (fresh.index(current) if current in keep else 0)
        for client in retired:
            try:
                client.close()
            except OSError:
                pass
        return True

    # -- the call loop ----------------------------------------------------

    def call(self, proc, args=None, xdr_args=None, xdr_res=None,
             deadline=None):
        budget = deadline if deadline is not None else self.call_budget_s
        deadline = Deadline.coerce(budget, clock=self._clock)
        last_error = None
        rotation_budget = self._rotation_budget
        if rotation_budget is not None:
            rotation_budget.note_call()
        tried = 0
        while True:
            # Recomputed per rotation: set_endpoints() may swap the
            # replica set between (or during) rotations.
            count = len(self.endpoints)
            if deadline is not None:
                try:
                    deadline.check(f"proc={proc}")
                except RpcDeadlineExceeded:
                    self.deadline_exceeded += 1
                    if last_error is not None:
                        raise RpcDeadlineExceeded(
                            f"deadline exceeded calling proc={proc}; last"
                            f" endpoint error: {last_error}"
                        ) from last_error
                    raise
            attempted = False
            for offset in range(count):
                index = (self._index + offset) % count
                try:
                    if not self.breakers[index].allow():
                        continue
                    if deadline is not None and deadline.expired:
                        break
                    if (tried and rotation_budget is not None
                            and not rotation_budget.try_retry()):
                        # Every attempt after the first is a retry in
                        # the budget's eyes: a dry bucket fails the
                        # call typed instead of feeding the storm.
                        self.retry_budget_exhausted += 1
                        raise RpcRetryBudgetExhausted(
                            f"retry budget exhausted calling"
                            f" proc={proc} after {tried} attempt(s);"
                            f" last endpoint error: {last_error!r}"
                        ) from last_error
                    attempted = True
                    tried += 1
                    value, failed = self._try_endpoint(
                        index, proc, args, xdr_args, xdr_res, deadline
                    )
                except IndexError:
                    # The replica set shrank mid-rotation; restart with
                    # the fresh view.
                    break
                if not failed:
                    with self._lock:
                        if self._index != index:
                            self.failovers += 1
                            if _obs.enabled:
                                _obs.registry.counter(
                                    "rpc.client.failovers").inc()
                        self._index = index
                        self.calls_completed += 1
                    return value
                last_error = value
            if deadline is None:
                # No budget to keep cycling: one full rotation only.
                break
            # Budget remains: pause briefly (bounded by the budget and
            # by the earliest breaker recovery) and cycle again.
            pause = self.retry_pause_s
            if not attempted:
                due = min(
                    breaker.recovery_due_in() for breaker in self.breakers
                )
                pause = max(pause, min(due, 0.25))
            remaining = deadline.remaining()
            if remaining <= 0:
                continue  # the top-of-loop check raises
            time.sleep(min(pause, max(remaining, 0.0)))
        if last_error is not None:
            raise last_error
        raise RpcCircuitOpenError(
            f"all {count} endpoints have open circuit breakers"
        )

    def _try_endpoint(self, index, proc, args, xdr_args, xdr_res,
                      deadline):
        """One attempt on one endpoint.

        Returns ``(value, False)`` on success, ``(error, True)`` on a
        failure that should rotate to the next endpoint.  Deadline
        exhaustion propagates — the budget is global, not
        per-endpoint.

        Breaker discipline: only failures that are evidence the
        *endpoint* is unhealthy (connection death, silence, deadline
        burn) charge its :class:`CircuitBreaker`.  An *answered*
        denial — a SYSTEM_ERR overload shed, a quota shed, an auth
        refusal — proves the endpoint is alive and deliberately
        refusing, so it rotates without a breaker charge; otherwise
        load shedding would cascade into spurious circuit opens.
        Retry-budget denials are local policy, never endpoint
        evidence.
        """
        breaker = self.breakers[index]
        trigger = self._hedge_trigger
        try:
            client = self._client(index, deadline)
        except (RpcConnectionError, OSError) as exc:
            breaker.record_failure()
            self._note_failure(index, exc)
            return self._as_rpc_error(exc), True
        if (self.hedge_enabled and trigger is not None
                and len(self.endpoints) > 1
                and hasattr(client, "call_async")):
            return self._call_hedged(index, client, proc, args,
                                     xdr_args, xdr_res, deadline)
        started = self._clock() if trigger is not None else None
        try:
            value = client.call(proc, args, xdr_args=xdr_args,
                                xdr_res=xdr_res, deadline=deadline)
        except RpcDeadlineExceeded:
            breaker.record_failure()
            self.deadline_exceeded += 1
            raise
        except RpcRetryBudgetExhausted as exc:
            # Local budget policy, not endpoint evidence: no breaker.
            self._note_failure(index, exc)
            return exc, True
        except RpcDeniedError as exc:
            # The endpoint answered (shed/quota/auth): alive, no
            # breaker charge — just rotate.
            self._note_failure(index, exc)
            return exc, True
        except (RpcConnectionError, RpcTimeoutError) as exc:
            breaker.record_failure()
            self._note_failure(index, exc)
            if isinstance(exc, RpcConnectionError):
                self._drop_client(index)
            return exc, True
        breaker.record_success()
        if started is not None:
            trigger.observe(self._clock() - started)
        return value, False

    # -- hedged requests ---------------------------------------------------

    def _call_hedged(self, index, client, proc, args, xdr_args,
                     xdr_res, deadline):
        """One attempt on endpoint ``index`` with a hedge race.

        The primary goes out immediately; if it outlives the adaptive
        trigger delay, a *second, fresh-xid* call goes to another
        replica and the first successful reply wins.  The loser is
        left to resolve in the background — the mux engine guarantees
        every pending call a typed outcome, and the server DRC
        coalesces any late retransmission, so no xid ever executes
        twice.
        """
        breaker = self.breakers[index]
        trigger = self._hedge_trigger
        started = self._clock()
        try:
            primary = client.call_async(proc, args, xdr_args=xdr_args,
                                        xdr_res=xdr_res,
                                        deadline=deadline)
        except RpcDeadlineExceeded:
            breaker.record_failure()
            self.deadline_exceeded += 1
            raise
        except RpcRetryBudgetExhausted as exc:
            self._note_failure(index, exc)
            return exc, True
        except (RpcConnectionError, RpcTimeoutError) as exc:
            breaker.record_failure()
            self._note_failure(index, exc)
            if isinstance(exc, RpcConnectionError):
                self._drop_client(index)
            return exc, True
        delay = trigger.delay()
        if delay is None or primary.wait(delay):
            # No latency profile yet, or the primary answered inside
            # the hedge window: no hedge needed.
            return self._settle_alone(index, primary, started)
        hedge_index = self._hedge_target(index)
        if hedge_index is None:
            return self._settle_alone(index, primary, started)
        try:
            hedge_client = self._client(hedge_index, deadline)
            if not hasattr(hedge_client, "call_async"):
                return self._settle_alone(index, primary, started)
            # A fresh xid from the shared counter — this is a new
            # call, not a retransmission, so the two replicas can
            # never confuse their DRC entries.
            secondary = hedge_client.call_async(
                proc, args, xdr_args=xdr_args, xdr_res=xdr_res,
                deadline=deadline
            )
        except RpcDeadlineExceeded:
            return self._settle_alone(index, primary, started)
        except (RpcConnectionError, RpcTimeoutError,
                RpcDeniedError) as exc:
            self._fail_racer(hedge_index, exc)
            return self._settle_alone(index, primary, started)
        except OSError as exc:
            self.breakers[hedge_index].record_failure()
            self._note_failure(hedge_index, self._as_rpc_error(exc))
            return self._settle_alone(index, primary, started)
        self.hedges += 1
        if _obs.enabled:
            _obs.registry.counter("rpc.hedge.attempts").inc()
        racers = ((index, primary), (hedge_index, secondary))
        while True:
            resolved = [(i, call) for i, call in racers if call.done()]
            winners = [(i, call) for i, call in resolved
                       if call.exception(0) is None]
            if winners:
                win_index, win_call = winners[0]
                value = win_call.result(0)
                self.breakers[win_index].record_success()
                trigger.observe(self._clock() - started)
                won_by_hedge = win_index != index
                if won_by_hedge:
                    self.hedge_wins += 1
                if _obs.enabled:
                    _obs.registry.counter(
                        "rpc.hedge.wins",
                        winner="hedge" if won_by_hedge else "primary",
                    ).inc()
                return value, False
            if len(resolved) == len(racers):
                for racer_index, call in racers:
                    self._fail_racer(racer_index, call.exception(0))
                primary_error = primary.exception(0)
                if isinstance(primary_error, RpcDeadlineExceeded):
                    self.deadline_exceeded += 1
                    raise primary_error
                return primary_error, True
            # Block briefly on whichever racer is still pending; a
            # completion on either side wakes the next loop turn.
            for _racer_index, call in racers:
                if not call.done():
                    call.wait(0.002)
                    break

    def _settle_alone(self, index, call, started):
        """Wait out a pending call with no hedge in flight, mapping
        its outcome exactly like the synchronous attempt path."""
        breaker = self.breakers[index]
        trigger = self._hedge_trigger
        try:
            value = call.result()
        except RpcDeadlineExceeded:
            breaker.record_failure()
            self.deadline_exceeded += 1
            raise
        except RpcRetryBudgetExhausted as exc:
            self._note_failure(index, exc)
            return exc, True
        except RpcDeniedError as exc:
            self._note_failure(index, exc)
            return exc, True
        except (RpcConnectionError, RpcTimeoutError) as exc:
            breaker.record_failure()
            self._note_failure(index, exc)
            if isinstance(exc, RpcConnectionError):
                self._drop_client(index)
            return exc, True
        breaker.record_success()
        if trigger is not None:
            trigger.observe(self._clock() - started)
        return value, False

    def _hedge_target(self, index):
        """The next live endpoint to hedge to (never ``index``), or
        None when every other breaker refuses."""
        count = len(self.endpoints)
        for offset in range(1, count):
            candidate = (index + offset) % count
            try:
                if self.breakers[candidate].allow():
                    return candidate
            except IndexError:
                return None
        return None

    def _fail_racer(self, index, exc):
        """Charge one hedge racer's failure with the same breaker
        discipline as the synchronous path."""
        if exc is None:
            return
        self._note_failure(index, exc)
        if isinstance(exc, (RpcRetryBudgetExhausted, RpcDeniedError)):
            return  # answered/local: no breaker charge
        try:
            self.breakers[index].record_failure()
            if isinstance(exc, RpcConnectionError):
                self._drop_client(index)
        except IndexError:
            pass

    def _note_failure(self, index, exc):
        self.last_errors.append(
            (self.endpoints[index], type(exc).__name__)
        )
        del self.last_errors[:-32]

    @staticmethod
    def _as_rpc_error(exc):
        if isinstance(exc, RpcError):
            return exc
        return RpcConnectionError(f"endpoint unreachable: {exc}")

    # -- convenience -------------------------------------------------------

    def null_call(self, deadline=None):
        return self.call(0, deadline=deadline)

    def health(self, deadline=None):
        """The health program's status (``STATUS_SERVING`` /
        ``STATUS_DRAINING``) from whichever replica answers."""
        from repro.xdr import xdr_u_long

        saved_prog, saved_vers = self.prog, self.vers
        clients = list(self._clients)
        try:
            # Health rides its own program number; underlying clients
            # are per-(prog, vers), so query with a throwaway set.
            self.prog, self.vers = HEALTH_PROG, HEALTH_VERS
            self._clients = [None] * len(self.endpoints)
            return self.call(HEALTH_PROC_STATUS, xdr_res=xdr_u_long,
                             deadline=deadline)
        finally:
            for client in self._clients:
                if client is not None:
                    client.close()
            self.prog, self.vers = saved_prog, saved_vers
            self._clients = clients

    def stats_summary(self):
        summary = {
            "calls_completed": self.calls_completed,
            "failovers": self.failovers,
            "deadline_exceeded": self.deadline_exceeded,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "retry_budget_exhausted": self.retry_budget_exhausted,
            "breakers": [breaker.summary() for breaker in self.breakers],
        }
        if self._rotation_budget is not None:
            summary["retry_budget"] = self._rotation_budget.summary()
        return summary

    def close(self):
        for index in range(len(self._clients)):
            self._drop_client(index)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
