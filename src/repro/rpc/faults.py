"""Deterministic fault injection for the RPC transports.

The paper argues the specialized fast path is *behavior-preserving
under the Sun RPC failure model* — at-least-once UDP semantics with
client retransmission.  Exercising that claim needs a hostile network
on demand: this module injects datagram faults deterministically so
the same seeded plan drives unit tests, loopback integration tests,
the fault bench (``python -m repro.bench faults``), and the simulator
(:class:`repro.simulator.network.FaultyLink`).

* :class:`FaultPlan` is a seeded schedule: each :meth:`FaultPlan.decide`
  call draws one fixed-length tuple of uniforms from a private
  ``random.Random(seed)`` and turns the configured rates into a set of
  fault actions for the next datagram.  Same seed + same rates → same
  fault sequence, independent of wall clock or interleaving order of
  *other* plans.

* :class:`FaultySocket` wraps a real socket and applies a plan's
  decisions per send/receive.  It duck-types the socket surface the
  transports use (``sendto``/``sendall``/``recvfrom``/``recv_into``/
  ``recvfrom_into``/``recv``/``fileno``/…), so it drops into
  :class:`~repro.rpc.clnt_udp.UdpClient`,
  :class:`~repro.rpc.svc_udp.UdpServer`, and the TCP transports
  unchanged.

Datagram (UDP) semantics per action:

``drop``       the payload is discarded (send) or delivered as a
               zero-length datagram (receive — both peers' dispatchers
               treat an empty datagram as undecodable and drop it, so
               the effect is a loss without blocking the reader).
``duplicate``  the payload is sent twice back to back.
``reorder``    the payload is held back and sent *after* the next one.
``delay``      ``delay_s`` seconds of sleep before delivery.
``corrupt``    one byte is XOR-flipped at a seeded offset.
``truncate``   the payload is cut to a seeded fraction of its length.

Stream (TCP) semantics differ because TCP hides loss below the record
layer: ``drop`` aborts the connection (the local sender gets
:class:`~repro.errors.FaultInjected`, the peer a
:class:`~repro.errors.RpcConnectionError`), ``truncate`` sends a
partial record then closes (the peer sees an EOF mid-record), and
``duplicate``/``reorder`` are no-ops (counted as ``skipped``).

On top of the probabilistic schedule a plan supports two *timed
phases* driven by the overload bench (``python -m repro.bench
overload``): a **latency spike** (:meth:`FaultPlan.begin_spike` —
every faulted datagram sleeps an extra fixed delay) and a **one-way
partition** (:meth:`FaultPlan.begin_partition` — the faulted
direction(s) drop every payload; wrap only the server socket to drop
replies while requests still arrive).  Both phases consume *no* RNG
draws and don't count against ``max_faults``, so the seeded fault
sequence stays byte-for-byte identical with or without them.
"""

import socket
import threading
import time

from repro import obs as _obs
from repro.errors import FaultInjected

#: every fault kind a plan can inject, in application order: ``drop``
#: wins outright; payload mutations (corrupt, truncate) apply before
#: scheduling faults (delay, reorder, duplicate).
FAULT_KINDS = ("drop", "duplicate", "reorder", "delay", "corrupt",
               "truncate")

#: stat keys that never count against the ``max_faults`` budget:
#: ``skipped`` records a no-op, ``spike``/``partition`` record timed
#: phases (explicitly begun, not drawn from the seeded schedule).
_UNBUDGETED = frozenset(("skipped", "spike", "partition"))


class _DeterministicRandom:
    """Thin lock around ``random.Random`` so one plan may be shared by
    a client and a server thread without perturbing determinism of the
    *sequence* (each decide() consumes a fixed number of draws)."""

    def __init__(self, seed):
        import random

        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def draws(self, n):
        with self._lock:
            return [self._rng.random() for _ in range(n)]


class FaultPlan:
    """A seeded, deterministic per-datagram fault schedule.

    ``drop``/``duplicate``/``reorder``/``delay``/``corrupt``/
    ``truncate`` are independent probabilities in ``[0, 1]``;
    ``delay_s`` is the injected latency; ``max_faults`` stops injecting
    (the plan turns into a clean wire) once that many datagrams have
    been faulted — handy for "break the first k messages" tests.

    Every :meth:`decide` consumes exactly ``len(FAULT_KINDS) + 2``
    uniform draws whatever the rates are, so two plans built from the
    same seed make identical decisions even with different rate
    configurations (the extra two draws pre-commit the corrupt offset
    and truncate fraction).
    """

    def __init__(self, seed=0, drop=0.0, duplicate=0.0, reorder=0.0,
                 delay=0.0, corrupt=0.0, truncate=0.0, delay_s=0.002,
                 max_faults=None):
        self.seed = seed
        self.rates = {
            "drop": drop,
            "duplicate": duplicate,
            "reorder": reorder,
            "delay": delay,
            "corrupt": corrupt,
            "truncate": truncate,
        }
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate {rate} outside [0, 1]")
        self.delay_s = delay_s
        self.max_faults = max_faults
        self._rng = _DeterministicRandom(seed)
        #: datagrams seen (decide() calls)
        self.decisions = 0
        #: faults actually applied, per kind (skips included)
        self.injected = {kind: 0 for kind in FAULT_KINDS}
        self.injected["skipped"] = 0
        self.injected["spike"] = 0
        self.injected["partition"] = 0
        #: timed-phase state (see begin_spike / begin_partition)
        self._spike_delay_s = None
        self._spike_until = None
        self._partitioned = False
        self._partition_until = None

    # -- decisions --------------------------------------------------------

    @property
    def total_injected(self):
        return sum(count for kind, count in self.injected.items()
                   if kind not in _UNBUDGETED)

    def decide(self):
        """The fault actions for the next datagram.

        Returns a :class:`FaultDecision`; empty when the datagram
        passes clean.  ``drop`` excludes every other action.
        """
        draws = self._rng.draws(len(FAULT_KINDS) + 2)
        self.decisions += 1
        exhausted = (self.max_faults is not None
                     and self.total_injected >= self.max_faults)
        actions = set()
        if not exhausted:
            for kind, draw in zip(FAULT_KINDS, draws):
                if draw < self.rates[kind]:
                    actions.add(kind)
            if "drop" in actions:
                actions = {"drop"}
        return FaultDecision(self, actions, corrupt_at=draws[-2],
                             truncate_to=draws[-1])

    def note(self, kind):
        """Record one applied (or skipped) fault for the stats."""
        self.injected[kind] += 1
        if _obs.enabled:
            _obs.registry.counter("faults.injected", kind=kind).inc()

    # -- timed phases ------------------------------------------------------

    def begin_spike(self, delay_s, duration_s=None):
        """Enter a latency-spike phase: every faulted datagram sleeps
        ``delay_s`` on top of the probabilistic faults.  The phase ends
        after ``duration_s`` seconds, or at :meth:`end_spike` when no
        duration is given.  Consumes no RNG draws — the seeded fault
        sequence is unchanged."""
        self._spike_delay_s = float(delay_s)
        self._spike_until = (None if duration_s is None
                             else time.monotonic() + duration_s)

    def end_spike(self):
        self._spike_delay_s = None
        self._spike_until = None

    def spike_delay(self):
        """The spike phase's injected latency, or None outside it."""
        if self._spike_delay_s is None:
            return None
        if (self._spike_until is not None
                and time.monotonic() >= self._spike_until):
            self.end_spike()
            return None
        return self._spike_delay_s

    def begin_partition(self, duration_s=None):
        """Enter a one-way partition: the faulted direction(s) drop
        *every* payload.  Wrap only the server socket (the default
        ``on_send``) to drop replies while requests still arrive —
        the shape that makes clients retransmit into a black hole."""
        self._partitioned = True
        self._partition_until = (None if duration_s is None
                                 else time.monotonic() + duration_s)

    def end_partition(self):
        self._partitioned = False
        self._partition_until = None

    def partition_active(self):
        if not self._partitioned:
            return False
        if (self._partition_until is not None
                and time.monotonic() >= self._partition_until):
            self.end_partition()
            return False
        return True

    def summary(self):
        """Counts for reports: decisions, per-kind injections."""
        return {"seed": self.seed, "decisions": self.decisions,
                **self.injected}

    def __repr__(self):
        rates = ", ".join(f"{kind}={rate}" for kind, rate
                          in self.rates.items() if rate)
        return f"FaultPlan(seed={self.seed}, {rates or 'clean'})"


class FaultDecision:
    """The actions chosen for one datagram, plus the pre-committed
    randomness for the payload mutations."""

    __slots__ = ("plan", "actions", "_corrupt_at", "_truncate_to")

    def __init__(self, plan, actions, corrupt_at, truncate_to):
        self.plan = plan
        self.actions = actions
        self._corrupt_at = corrupt_at
        self._truncate_to = truncate_to

    def __contains__(self, kind):
        return kind in self.actions

    def __bool__(self):
        return bool(self.actions)

    def mutate(self, payload):
        """Apply corrupt/truncate to ``payload``; returns new bytes (a
        copy — the caller's buffer, possibly pool-owned, is never
        written)."""
        data = bytes(payload)
        if "truncate" in self.actions and data:
            keep = max(1, int(len(data) * self._truncate_to))
            if keep < len(data):
                data = data[:keep]
                self.plan.note("truncate")
            else:
                self.plan.note("skipped")
        if "corrupt" in self.actions and data:
            index = min(int(self._corrupt_at * len(data)), len(data) - 1)
            flipped = data[index] ^ 0xFF
            data = data[:index] + bytes((flipped,)) + data[index + 1:]
            self.plan.note("corrupt")
        return data


class FaultySocket:
    """A socket wrapper that injects a :class:`FaultPlan`'s faults.

    ``on_send``/``on_recv`` choose the direction(s) faulted; the
    default faults sends only, which is how the loopback tests model a
    lossy wire (wrap the client socket to lose requests, the server
    socket to lose replies).  Everything not overridden — ``fileno``
    (so ``select`` works), ``settimeout``, ``close``, … — delegates to
    the wrapped socket, so the transports accept a ``FaultySocket``
    anywhere they accept a socket.

    Stream sockets (``SOCK_STREAM``) get the stream semantics described
    in the module docstring; pass ``stream=`` to override autodetection
    for socket-like test doubles.
    """

    def __init__(self, sock, plan, on_send=True, on_recv=False,
                 stream=None):
        self._sock = sock
        self.plan = plan
        self.on_send = on_send
        self.on_recv = on_recv
        if stream is None:
            stream = getattr(sock, "type", None) == socket.SOCK_STREAM
        self.stream = stream
        #: the held-back datagram for ``reorder``: (payload, addr|None)
        self._held = None
        self._lock = threading.Lock()
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def __getattr__(self, name):
        return getattr(self._sock, name)

    # -- datagram send side ----------------------------------------------

    def sendto(self, data, addr):
        if not self.on_send:
            return self._sock.sendto(data, addr)
        # decide() runs unconditionally — timed phases must not shift
        # the seeded draw sequence.
        decision = self.plan.decide()
        size = len(data)
        if self.plan.partition_active():
            self.plan.note("partition")
            self._flush_held()
            return size
        spike = self.plan.spike_delay()
        if spike is not None:
            self.plan.note("spike")
            time.sleep(spike)
        if "drop" in decision:
            self.plan.note("drop")
            self._flush_held()
            return size
        payload = decision.mutate(data) if decision else bytes(data)
        if "delay" in decision:
            self.plan.note("delay")
            time.sleep(self.plan.delay_s)
        with self._lock:
            if "reorder" in decision and self._held is None:
                # Hold this one back; it goes out after the next send.
                self.plan.note("reorder")
                self._held = (payload, addr)
                self.datagrams_sent += 1
                return size
        self._sock.sendto(payload, addr)
        self.datagrams_sent += 1
        if "duplicate" in decision:
            self.plan.note("duplicate")
            self._sock.sendto(payload, addr)
            self.datagrams_sent += 1
        self._flush_held()
        return size

    def _flush_held(self):
        with self._lock:
            held, self._held = self._held, None
        if held is not None:
            self._sock.sendto(*held)

    # -- datagram receive side -------------------------------------------

    def recvfrom(self, bufsize, *flags):
        data, addr = self._sock.recvfrom(bufsize, *flags)
        if not self.on_recv:
            return data, addr
        decision = self.plan.decide()
        if self.plan.partition_active():
            self.plan.note("partition")
            return b"", addr
        spike = self.plan.spike_delay()
        if spike is not None:
            self.plan.note("spike")
            time.sleep(spike)
        if "drop" in decision:
            # Deliver an empty datagram: both the client loop and the
            # server dispatcher discard undecodable payloads, so this
            # reads as a loss without blocking the (possibly
            # non-blocking) reader.
            self.plan.note("drop")
            return b"", addr
        if "delay" in decision:
            self.plan.note("delay")
            time.sleep(self.plan.delay_s)
        for kind in ("duplicate", "reorder"):
            if kind in decision:
                self.plan.note("skipped")
        data = decision.mutate(data) if decision else data
        return data, addr

    def recvfrom_into(self, buffer, nbytes=0, *flags):
        data, addr = self.recvfrom(nbytes or len(buffer), *flags)
        buffer[:len(data)] = data
        return len(data), addr

    def recv_into(self, buffer, nbytes=0, *flags):
        if self.stream:
            return self._sock.recv_into(buffer, nbytes, *flags)
        nreceived, _addr = self.recvfrom_into(buffer, nbytes, *flags)
        self.datagrams_received += 1
        return nreceived

    # -- stream side ------------------------------------------------------

    def sendall(self, data):
        if not (self.on_send and self.stream):
            return self._sock.sendall(data)
        decision = self.plan.decide()
        if self.plan.partition_active():
            # One-way partition on a stream: the bytes silently vanish
            # but the connection stays up — the peer just never hears
            # back, exactly the black-hole shape the overload bench
            # needs.
            self.plan.note("partition")
            return None
        spike = self.plan.spike_delay()
        if spike is not None:
            self.plan.note("spike")
            time.sleep(spike)
        if "drop" in decision:
            # TCP hides datagram loss; an application-visible "drop"
            # is a dead connection.
            self.plan.note("drop")
            self._abort("injected stream drop")
        if "delay" in decision:
            self.plan.note("delay")
            time.sleep(self.plan.delay_s)
        for kind in ("duplicate", "reorder"):
            if kind in decision:
                self.plan.note("skipped")
        if "truncate" in decision and len(data) > 1:
            self.plan.note("truncate")
            keep = max(1, len(data) // 2)
            self._sock.sendall(bytes(data)[:keep])
            self._abort("injected stream truncation")
        if "corrupt" in decision:
            # Reuse mutate() but keep the length: corrupt only.
            decision.actions.discard("truncate")
            data = decision.mutate(data)
        return self._sock.sendall(data)

    def send(self, data, *flags):
        if self.stream and self.on_send:
            self.sendall(data)
            return len(data)
        return self._sock.send(data, *flags)

    def recv(self, bufsize, *flags):
        data = self._sock.recv(bufsize, *flags)
        if not (self.on_recv and self.stream) or not data:
            return data
        decision = self.plan.decide()
        if "delay" in decision:
            self.plan.note("delay")
            time.sleep(self.plan.delay_s)
        if "corrupt" in decision:
            decision.actions.discard("truncate")
            data = decision.mutate(data)
        for kind in ("drop", "duplicate", "reorder", "truncate"):
            if kind in decision:
                self.plan.note("skipped")
        return data

    def _abort(self, reason):
        try:
            self._sock.close()
        except OSError:
            pass
        raise FaultInjected(reason)

    def close(self):
        try:
            self._flush_held()
        except OSError:
            pass
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
