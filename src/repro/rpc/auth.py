"""RPC authentication areas (RFC 1057 §7.2, §9).

Only the flavors the 1984 Sun RPC shipped: ``AUTH_NONE`` (null) and
``AUTH_SYS``/``AUTH_UNIX`` (uid/gid assertion).  An auth area is an
*opaque auth*: a flavor discriminant plus up to 400 bytes of body.
"""

from dataclasses import dataclass, field

from repro.errors import RpcProtocolError
from repro.xdr import XdrMemStream, XdrOp, xdr_bytes, xdr_string, xdr_u_long
from repro.xdr.composite import xdr_array
from repro.xdr.primitives import xdr_long

AUTH_NONE = 0
AUTH_SYS = 1
AUTH_SHORT = 2

MAX_AUTH_BYTES = 400


@dataclass(frozen=True)
class OpaqueAuth:
    """One auth area as it rides the wire."""

    flavor: int = AUTH_NONE
    body: bytes = b""

    def __post_init__(self):
        if len(self.body) > MAX_AUTH_BYTES:
            raise RpcProtocolError(
                f"auth body too long: {len(self.body)} > {MAX_AUTH_BYTES}"
            )


NULL_AUTH = OpaqueAuth(AUTH_NONE, b"")


def xdr_opaque_auth(xdrs, value):
    """Filter for an opaque auth area."""
    if xdrs.x_op == XdrOp.ENCODE:
        xdr_u_long(xdrs, value.flavor)
        xdr_bytes(xdrs, value.body, MAX_AUTH_BYTES)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        flavor = xdr_u_long(xdrs, None)
        body = xdr_bytes(xdrs, None, MAX_AUTH_BYTES)
        return OpaqueAuth(flavor, body)
    return value


@dataclass(frozen=True)
class AuthSysParams:
    """The body of an AUTH_SYS credential (RFC 1057 §9.2)."""

    stamp: int
    machinename: str
    uid: int
    gid: int
    gids: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if len(self.machinename) > 255:
            raise RpcProtocolError("machinename too long")
        if len(self.gids) > 16:
            raise RpcProtocolError("too many supplementary gids")


def _xdr_auth_sys(xdrs, value):
    if xdrs.x_op == XdrOp.ENCODE:
        xdr_u_long(xdrs, value.stamp)
        xdr_string(xdrs, value.machinename, 255)
        xdr_u_long(xdrs, value.uid)
        xdr_u_long(xdrs, value.gid)
        xdr_array(xdrs, list(value.gids), 16, xdr_long)
        return value
    if xdrs.x_op == XdrOp.DECODE:
        stamp = xdr_u_long(xdrs, None)
        machinename = xdr_string(xdrs, None, 255)
        uid = xdr_u_long(xdrs, None)
        gid = xdr_u_long(xdrs, None)
        gids = tuple(xdr_array(xdrs, None, 16, xdr_long))
        return AuthSysParams(stamp, machinename, uid, gid, gids)
    return value


def make_auth_none():
    """The null credential/verifier pair."""
    return NULL_AUTH


def make_auth_sys(stamp, machinename, uid, gid, gids=()):
    """Build an AUTH_SYS credential area."""
    params = AuthSysParams(stamp, machinename, uid, gid, tuple(gids))
    buffer = bytearray(MAX_AUTH_BYTES)
    stream = XdrMemStream(buffer, XdrOp.ENCODE)
    _xdr_auth_sys(stream, params)
    return OpaqueAuth(AUTH_SYS, stream.data())


def parse_auth_sys(auth):
    """Decode an AUTH_SYS credential body."""
    if auth.flavor != AUTH_SYS:
        raise RpcProtocolError(f"not an AUTH_SYS credential: {auth.flavor}")
    stream = XdrMemStream(bytearray(auth.body), XdrOp.DECODE)
    return _xdr_auth_sys(stream, None)
