"""Reproduction of *Fast, Optimized Sun RPC Using Automatic Program
Specialization* (Muller, Marlet, Volanschi, Consel, Pu, Goel — INRIA
RR-3220 / ICDCS 1998).

The package is organized as the paper's system is:

``repro.minic``
    A small C subset (the vehicle the specializer operates on).  The Sun
    RPC marshaling micro-layers are expressed in MiniC, statement for
    statement, so the specialization opportunities of the paper (operation
    dispatch, buffer-overflow accounting, exit-status propagation, array
    loops) exist in the same shape here.

``repro.tempo``
    The paper's contribution: an automatic program specializer (partial
    evaluator) with the refinements the paper names — partially-static
    structures, flow sensitivity, context sensitivity and static returns.

``repro.xdr`` / ``repro.rpc`` / ``repro.rpcgen``
    A faithful pure-Python Sun XDR (RFC 1014) and Sun RPC (RFC 1057)
    stack, plus an ``rpcgen``-style stub compiler for ``.x`` interface
    files.  These provide real, runnable distributed-system substrates
    (UDP and TCP loopback round-trips).

``repro.specialized``
    The end-to-end pipeline: IDL -> MiniC stubs -> Tempo -> residual
    program -> compiled Python marshaler.

``repro.simulator``
    Calibrated cost models of the paper's two 1997 platforms (Sun IPX /
    SunOS / ATM and 166 MHz Pentium / Linux / Fast Ethernet) used to
    regenerate the paper's tables and figures from MiniC execution traces.

``repro.bench``
    The experiment harness regenerating every table and figure of the
    paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
