"""``online`` report — profile-guided specialization converging live.

The other live report (:mod:`repro.bench.live`) compares two *static*
configurations.  This one tells the tuning story of
:mod:`repro.specialized.online`: a server and client start fully
generic, the :class:`~repro.specialized.online.OnlineSpecializer`
watches the traffic profile, and after the policy's evidence threshold
it hot-swaps compiled residual codecs into live dispatch.  The report
is a *convergence curve*: per-window throughput over three traffic
phases —

1. **hot** — a stable array length; the curve starts at the generic
   floor and jumps when the promotion lands;
2. **shift** — the workload changes length mid-run; every call is an
   invariant violation answered (correctly) by the generic fallback,
   until the violation threshold triggers a respecialization that
   widens the guard and the curve recovers;
3. **reconverged** — the widened route answers the new length at
   specialized speed.

Correctness is asserted, not sampled: every window replays probe
requests (in-profile *and* deliberately off-profile) against a shadow
generic registry and requires byte-identical wire output.  The bench
aborts on the first wrong byte; ``wrong_bytes`` in the JSON is the
asserted count (always 0 in a successful run).

``REPRO_ONLINE_CALLS`` scales the per-window call count (default 400;
CI uses a small value).  Numbers land in ``BENCH_online.json`` so CI
can hold the conservative floor: converged online throughput must not
be *worse* than generic.

Note: the bench constructs its specializer with ``enabled=True``, but
the ``REPRO_ONLINE_SPEC`` environment kill switch still wins — with
``REPRO_ONLINE_SPEC=0`` in the environment the curve (deliberately)
never converges.
"""

import itertools
import json
import os
import platform
import time

from repro import obs
from repro.bench.report import format_table, ratio
from repro.bench.workloads import (
    PROG_NUMBER,
    VERS_NUMBER,
    WORKLOAD_IDL,
    WORKLOAD_IMPL,
    request_bytes,
)
from repro.rpc import SvcRegistry
from repro.rpc.client import RpcClient
from repro.rpcgen.codegen_py import load_python
from repro.rpcgen.idl_parser import parse_idl
from repro.specialized import (
    OnlinePolicy,
    OnlineSpecializer,
    SpecializationPipeline,
)

DEFAULT_JSON = "BENCH_online.json"

#: the hot length the traffic starts on, and the length it shifts to
HOT_N = 64
SHIFT_N = 16
#: off-profile probe length — exercised every window to prove the
#: violation fallback answers byte-identically while specialized
PROBE_N = 7

PROC_SENDRECV = 1
HOT_WINDOWS = 6
SHIFT_WINDOWS = 5


def _calls_per_window():
    return max(20, int(os.environ.get("REPRO_ONLINE_CALLS", "400")))


def _stubs():
    return load_python(parse_idl(WORKLOAD_IDL), "online_bench_stubs")


def _registry(stubs):
    registry = SvcRegistry()

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XCHG_PROG_1(registry, Impl())
    return registry


def _policy(calls):
    """Deterministic policy for the curve: promotion becomes eligible
    inside the first hot window, respecialization inside the first
    shift window, and cooldown never delays a poll."""
    return OnlinePolicy(
        min_calls=max(20, calls // 2),
        min_rate_hz=0.0,
        stable_fraction=0.9,
        window=64,
        violation_threshold=max(8, calls // 8),
        max_sizes=4,
        cooldown_s=0.0,
    )


def _make_call(stubs, registry, client, xids):
    """One end-to-end in-process round trip: client encode ->
    ``SvcRegistry.dispatch_bytes`` -> client decode.

    Working at the dispatch layer (no sockets) keeps the curve about
    the thing being measured — generic marshaling vs hot-swapped
    residual code — instead of syscall noise, and it is exactly the
    entry point every server tier (svc_udp/svc_tcp/mux) funnels into,
    so the hot swap timed here is the hot swap production traffic
    would see.  ``build_call``/``parse_reply`` route through any
    installed whole-message codec, so the same closure covers the
    generic, hand-specialized, and online clients.
    """
    xdr = stubs.xdr_intarr

    def call(args):
        xid = next(xids)
        data = client.build_call(xid, PROC_SENDRECV, args, xdr)
        reply = registry.dispatch_bytes(data)
        matched, value = client.parse_reply(reply, xid, PROC_SENDRECV,
                                            xdr)
        assert matched
        return value

    return call


def _window_us(call, args, calls):
    """Mean microseconds per call over one un-averaged window (the
    curve wants the trajectory, not best-of)."""
    started = time.perf_counter()
    for _ in range(calls):
        call(args)
    return (time.perf_counter() - started) / calls * 1e6


def _verify_bytes(stubs, online_reg, shadow_reg, ns):
    """Replay identical requests against the online registry and the
    shadow generic registry; every reply must be byte-identical.
    Returns the number of mismatches found (asserted 0 by the caller);
    raises immediately on the first wrong-bytes reply."""
    wrong = 0
    client = RpcClient(PROG_NUMBER, VERS_NUMBER)
    for index, n in enumerate(ns):
        args = stubs.intarr(vals=list(range(n)))
        data = client.build_call(
            0x7F000000 + index, PROC_SENDRECV, args, stubs.xdr_intarr
        )
        got = online_reg.dispatch_bytes(data)
        want = shadow_reg.dispatch_bytes(data)
        if bytes(got or b"") != bytes(want or b""):
            wrong += 1
            raise AssertionError(
                f"wrong-bytes reply for n={n}: online reply differs"
                f" from generic ({len(got or b'')} vs"
                f" {len(want or b'')} bytes)"
            )
    return wrong


def _baseline_us(call, args, calls, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        best = min(best, _window_us(call, args, calls))
    return best


def run(workload=None, json_path=DEFAULT_JSON, calls=None):
    """Print the convergence curve and write ``BENCH_online.json``."""
    del workload  # CLI uniformity; the live stack needs no simulator run
    calls = calls or _calls_per_window()
    stubs = _stubs()
    pipeline = SpecializationPipeline(
        WORKLOAD_IDL, impl_sources=[WORKLOAD_IMPL]
    )
    hot_args = stubs.intarr(vals=list(range(HOT_N)))
    shift_args = stubs.intarr(vals=list(range(SHIFT_N)))

    # -- baseline 1: fully generic ------------------------------------
    generic_reg = _registry(stubs)
    generic_call = _make_call(
        stubs, generic_reg, RpcClient(PROG_NUMBER, VERS_NUMBER),
        itertools.count(1),
    )
    assert generic_call(hot_args).vals == [v + 1 for v in range(HOT_N)]
    generic_us = _baseline_us(generic_call, hot_args, calls)

    # -- baseline 2: hand-specialized (the offline ceiling) -----------
    lens = {"vals": HOT_N}
    hand_client = RpcClient(PROG_NUMBER, VERS_NUMBER)
    pipeline.specialize_client(
        "SENDRECV", arg_lens=lens, res_lens=lens
    ).install(hand_client)
    hand_server = pipeline.specialize_server(
        "SENDRECV", arg_lens=lens, res_lens=lens,
        fallback=_registry(stubs),
    )
    hand_call = _make_call(stubs, hand_server, hand_client,
                           itertools.count(1))
    assert hand_call(hot_args).vals == [v + 1 for v in range(HOT_N)]
    hand_us = _baseline_us(hand_call, hot_args, calls)

    # -- the online run -----------------------------------------------
    online_reg = _registry(stubs)
    shadow_reg = _registry(stubs)  # byte-identity oracle, stays generic
    spec = OnlineSpecializer(pipeline, policy=_policy(calls),
                             enabled=True)
    spec.attach_server(online_reg)
    online_client = RpcClient(PROG_NUMBER, VERS_NUMBER)
    codec = spec.attach_client(online_client, "SENDRECV")
    online_call = _make_call(stubs, online_reg, online_client,
                             itertools.count(1))
    assert online_call(hot_args).vals == [v + 1 for v in range(HOT_N)]

    route_of = lambda: next(
        iter((online_reg._online_routes or {}).values()), None
    )
    windows = []
    wrong_bytes = 0

    def run_window(phase, args, n):
        nonlocal wrong_bytes
        us = _window_us(online_call, args, calls)
        # decisions happen between windows, deterministically
        spec.poll_once()
        # correctness probes: the current length, the *other* phase's
        # length, and a never-specialized length — all must match the
        # generic oracle byte for byte, specialized or not
        wrong_bytes += _verify_bytes(
            stubs, online_reg, shadow_reg, (n, PROBE_N)
        )
        route = route_of()
        windows.append({
            "phase": phase,
            "n": n,
            "us_per_call": us,
            "rps": 1e6 / us if us else 0.0,
            "route_sizes": list(route.sizes) if route else [],
            "route_hits": route.hits if route else 0,
            "route_violations": route.violations if route else 0,
            "client_lens": list(codec.lens),
            "promotions": spec.promotions,
            "respecializations": spec.respecializations,
            "demotions": spec.demotions,
        })
        return us

    for _ in range(HOT_WINDOWS):
        run_window("hot", hot_args, HOT_N)
    assert spec.promotions >= 1, (
        "online specializer never promoted the hot procedure"
    )
    for _ in range(SHIFT_WINDOWS):
        run_window("shift", shift_args, SHIFT_N)
    assert spec.respecializations >= 1, (
        "violation threshold never triggered a respecialization"
    )
    violations_seen = max(w["route_violations"] for w in windows)
    assert violations_seen >= 1, (
        "the invariant-violation fallback was never exercised"
    )
    spec.stop()

    converged_hot = min(
        w["us_per_call"] for w in windows
        if w["phase"] == "hot" and w["route_hits"] > 0
    )
    reconverged = min(
        w["us_per_call"] for w in windows
        if w["phase"] == "shift"
        and request_bytes(SHIFT_N) in w["route_sizes"]
    )
    summary = {
        "generic_us": generic_us,
        "hand_specialized_us": hand_us,
        "online_converged_us": converged_hot,
        "online_reconverged_us": reconverged,
        "speedup_vs_generic": ratio(generic_us, converged_hot),
        "fraction_of_hand_specialized": ratio(hand_us, converged_hot),
        "promotions": spec.promotions,
        "respecializations": spec.respecializations,
        "violations": violations_seen,
        "wrong_bytes": wrong_bytes,
    }

    # a populated metrics snapshot rides along: a short instrumented
    # burst shows what rpc.spec.online.* report for this workload
    prev = obs.enabled
    obs.registry.reset()
    obs.enabled = True
    try:
        for _ in range(8):
            online_call(hot_args)
        online_call(shift_args)
        spec.poll_once()
    finally:
        obs.enabled = prev
    results = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calls_per_window": calls,
            "hot_n": HOT_N,
            "shift_n": SHIFT_N,
            "probe_n": PROBE_N,
        },
        "windows": windows,
        "summary": summary,
        "obs_metrics": obs.collect(),
    }

    rows = [
        (i + 1, w["phase"], w["n"], w["us_per_call"],
         ratio(generic_us, w["us_per_call"]),
         ",".join(str(s) for s in w["route_sizes"]) or "-",
         w["route_violations"])
        for i, w in enumerate(windows)
    ]
    print(format_table(
        "Online convergence — us/call per window (generic floor"
        f" {generic_us:.1f}us, hand-specialized {hand_us:.1f}us)",
        ("win", "phase", "n", "us/call", "vs generic", "route sizes",
         "violations"),
        rows,
        note="hot: stable length -> promotion; shift: new length ->"
             " violations -> respecialization widens the guard",
    ))
    print()
    print(f"converged: {summary['speedup_vs_generic']:.2f}x generic,"
          f" {summary['fraction_of_hand_specialized']:.2f}x of the"
          f" hand-specialized ceiling;"
          f" wrong-bytes replies: {wrong_bytes}")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"\n[wrote {json_path}]")
    return results
