"""Table 2 — complete RPC round-trip time (ms).

Client marshal + request transfer + server decode/dispatch/encode +
reply transfer + client decode, plus the receive-buffer ``bzero`` on
both sides (the paper calls out its growing memory cost)."""

from repro.bench import paper_data
from repro.bench.report import format_table
from repro.bench.workloads import ARRAY_SIZES, BUFSIZE, IntArrayWorkload
from repro.simulator import ipx_sunos, pc_linux
from repro.simulator.roundtrip import RoundTripModel, with_bzero_prologue


def compute(workload=None, sizes=ARRAY_SIZES, warmup_runs=1):
    workload = workload or IntArrayWorkload()
    rows = []
    for n in sizes:
        generic = workload.roundtrip_traces(n, specialized=False)
        special = workload.roundtrip_traces(n, specialized=True)
        row = {"n": n}
        for key, machine_factory in (("ipx", ipx_sunos), ("pc", pc_linux)):
            link = machine_factory().nic
            for tag, (client_trace, server_trace, request, reply) in (
                ("original", generic),
                ("specialized", special),
            ):
                model = RoundTripModel(
                    machine_factory(), machine_factory(), link
                )
                seconds = model.total_seconds(
                    client_trace,
                    with_bzero_prologue(server_trace, BUFSIZE),
                    request,
                    reply,
                    warmup_runs,
                )
                row[f"{key}_{tag}_ms"] = seconds * 1e3
            row[f"{key}_speedup"] = (
                row[f"{key}_original_ms"] / row[f"{key}_specialized_ms"]
            )
        rows.append(row)
    return rows


def render(rows):
    table_rows = []
    for row in rows:
        paper_sp = paper_data.TABLE2_SPEEDUPS.get(row["n"])
        table_rows.append(
            (
                row["n"],
                round(row["ipx_original_ms"], 2),
                round(row["ipx_specialized_ms"], 2),
                round(row["ipx_speedup"], 2),
                paper_sp[0] if paper_sp else "-",
                round(row["pc_original_ms"], 2),
                round(row["pc_specialized_ms"], 2),
                round(row["pc_speedup"], 2),
                paper_sp[1] if paper_sp else "-",
            )
        )
    return format_table(
        "Table 2: round trip performance in ms",
        (
            "n", "IPX orig", "IPX spec", "IPX x", "paper x",
            "PC orig", "PC spec", "PC x", "paper x",
        ),
        table_rows,
        note=(
            "paper (Table 2) original/specialized ms — IPX: "
            + ", ".join(
                f"{n}:{v[0]}/{v[1]}" for n, v in paper_data.TABLE2.items()
            )
            + "; PC: "
            + ", ".join(
                f"{n}:{v[2]}/{v[3]}" for n, v in paper_data.TABLE2.items()
            )
        ),
    )


def run(workload=None, sizes=ARRAY_SIZES):
    rows = compute(workload, sizes)
    print(render(rows))
    return rows
