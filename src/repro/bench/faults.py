"""``faults`` report — latency and goodput under an injected-fault wire.

Drives loopback UDP round trips through seeded
:class:`~repro.rpc.faults.FaultPlan` wrappers at several loss rates
(requests and replies faulted independently), in all four corners of
{generic, fastpath} × {DRC on, DRC off}, and reports per-cell p50/p99
latency, goodput, client retransmission counts, and server
duplicate-cache statistics.  Results are emitted as a table and as
JSON (``BENCH_faults.json`` by default) so CI can archive the
trajectory.

Everything is seeded: the same invocation sees the same fault
sequence, so cell-to-cell differences are the stack's, not the dice's.
"""

import contextlib
import json
import os
import platform
import time

from repro import obs
from repro.bench.report import format_table
from repro.obs.trace import summarize_spans
from repro.bench.workloads import PROG_NUMBER, VERS_NUMBER, WORKLOAD_IDL
from repro.rpc import FaultPlan, SvcRegistry, UdpClient, UdpServer
from repro.rpcgen.codegen_py import load_python
from repro.rpcgen.idl_parser import parse_idl

DEFAULT_JSON = "BENCH_faults.json"
#: injected drop probability per datagram, each direction
LOSS_RATES = (0.0, 0.05, 0.20)
#: injected duplicate probability (exercises the DRC) at lossy rates
DUPLICATE_RATE = 0.10
DEFAULT_CALLS = 200
DEFAULT_SEED = 0x5EED


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(int(fraction * len(sorted_values)),
                len(sorted_values) - 1)
    return sorted_values[index]


def _run_cell(stubs, loss, fastpath, drc, calls, seed):
    """One bench cell; returns the measured dict."""
    registry = SvcRegistry(fastpath=fastpath)
    if drc:
        registry.enable_drc()

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XCHG_PROG_1(registry, Impl())

    duplicate = DUPLICATE_RATE if loss else 0.0
    client_plan = FaultPlan(seed=seed, drop=loss, duplicate=duplicate)
    server_plan = FaultPlan(seed=seed + 1, drop=loss, duplicate=duplicate)
    args = stubs.intarr(vals=list(range(64)))
    want = [v + 1 for v in range(64)]

    with contextlib.ExitStack() as stack:
        server = stack.enter_context(
            UdpServer(registry, fastpath=fastpath, drc=drc,
                      fault_plan=server_plan)
        )
        transport = stack.enter_context(
            UdpClient("127.0.0.1", server.port, PROG_NUMBER, VERS_NUMBER,
                      timeout=30.0, wait=0.005, max_wait=0.25,
                      jitter=0.0, fastpath=fastpath,
                      fault_plan=client_plan)
        )
        client = stubs.XCHG_PROG_1_client(transport)
        latencies = []
        ok = 0
        started = time.perf_counter()
        for _ in range(calls):
            call_started = time.perf_counter()
            reply = client.SENDRECV(args)
            latencies.append(time.perf_counter() - call_started)
            if reply.vals == want:
                ok += 1
        elapsed = time.perf_counter() - started
        retransmissions = transport.retransmissions
        stale = transport.stale_replies
    latencies.sort()
    drc_stats = registry.drc.summary() if registry.drc else None
    return {
        "loss": loss,
        "duplicate_rate": duplicate,
        "fastpath": fastpath,
        "drc": drc,
        "calls": calls,
        "correct": ok,
        "p50_us": _percentile(latencies, 0.50) * 1e6,
        "p99_us": _percentile(latencies, 0.99) * 1e6,
        "goodput_calls_per_s": ok / elapsed if elapsed else 0.0,
        "retransmissions": retransmissions,
        "stale_replies": stale,
        "handlers_invoked": registry.handlers_invoked,
        "drc_stats": drc_stats,
        "client_plan": client_plan.summary(),
        "server_plan": server_plan.summary(),
    }


def run(workload=None, calls=DEFAULT_CALLS, seed=DEFAULT_SEED,
        json_path=DEFAULT_JSON, trace=None):
    """Print the fault-matrix table and write the JSON report.

    The whole matrix runs with metrics enabled and the report embeds
    the resulting ``obs_metrics`` snapshot.  ``trace=True`` (default:
    on when ``REPRO_TRACE`` is set) additionally records every cell's
    spans in memory and attaches a per-cell ``span_summary`` — the
    per-phase time breakdown (encode/send/wait/decode, dispatch/
    drc_lookup/handler/encode_reply) under that cell's fault rate.

    ``workload`` is accepted (and ignored) for CLI uniformity with the
    simulator reports.
    """
    del workload
    if trace is None:
        trace = os.environ.get("REPRO_TRACE", "").lower() in (
            "1", "true", "yes", "on"
        )
    stubs = load_python(parse_idl(WORKLOAD_IDL), "fault_bench_stubs")
    results = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calls": calls,
            "seed": seed,
            "loss_rates": list(LOSS_RATES),
            "duplicate_rate": DUPLICATE_RATE,
            "trace": trace,
        },
        "cells": [],
    }
    rows = []
    prev_enabled, prev_sinks = obs.enabled, obs.tracer.sinks
    obs.registry.reset()
    obs.enabled = True
    sink = None
    if trace:
        # keep any pre-attached sink (e.g. REPRO_TRACE_FILE) and add a
        # memory sink for the per-cell summaries
        sink = obs.MemorySink()
        obs.tracer.sinks = list(prev_sinks) + [sink]
    try:
        for loss in LOSS_RATES:
            for fastpath in (False, True):
                for drc in (True, False):
                    if sink is not None:
                        sink.clear()
                    cell = _run_cell(stubs, loss, fastpath, drc, calls,
                                     seed)
                    if sink is not None:
                        cell["span_summary"] = summarize_spans(
                            sink.records
                        )
                    results["cells"].append(cell)
                    drc_hits = (cell["drc_stats"] or {}).get("hits", "-")
                    rows.append((
                        f"{int(loss * 100)}%",
                        "fast" if fastpath else "generic",
                        "on" if drc else "off",
                        f"{cell['correct']}/{cell['calls']}",
                        f"{cell['p50_us']:.0f}",
                        f"{cell['p99_us']:.0f}",
                        f"{cell['goodput_calls_per_s']:.0f}",
                        cell["retransmissions"],
                        drc_hits,
                    ))
        results["obs_metrics"] = obs.collect()
    finally:
        obs.enabled, obs.tracer.sinks = prev_enabled, prev_sinks
    print(format_table(
        "Fault matrix — loopback UDP under seeded loss/duplication",
        ("loss", "path", "drc", "ok", "p50us", "p99us", "call/s",
         "retrans", "drc hits"),
        rows,
        note=f"drop each direction at the stated rate;"
             f" +{int(DUPLICATE_RATE * 100)}% duplicates when lossy;"
             f" seed {seed:#x}",
    ))
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"\n[wrote {json_path}]")
    return results
