"""Subprocess entry point: the ``mux`` report's loopback server.

The report measures the *client call model* (serial vs. multiplexed),
so the server runs in its own process — its own interpreter, its own
GIL — exactly like a real deployment.  An in-process server would
serialize the client's submit/demux threads against the server's
event loop and understate the pipelining win.

Protocol: print the bound UDP port on stdout, serve until stdin
closes (the parent's handle on our lifetime), then stop.
"""

import sys

from repro.bench.mux import _registry
from repro.rpc import MuxUdpServer


def main():
    server = MuxUdpServer(_registry(), fastpath=True)
    server.start()
    print(server.port, flush=True)
    sys.stdin.read()  # parent closes the pipe to stop us
    server.stop()


if __name__ == "__main__":
    main()
