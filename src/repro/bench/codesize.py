"""Table 3 — code size: generic vs specialized client code.

The paper reports SunOS binary sizes (generic client 20004 bytes,
specialized 24340..111348 bytes growing with the unrolled array size).
Our proxy is the canonical pretty-printed MiniC source size of the
client-path code; the claim under test is the *shape*: the specialized
code is larger than the generic code even at small sizes (residual
error-handling functions) and grows linearly with the unrolled length.
"""

from repro.bench import paper_data
from repro.bench.report import format_table
from repro.bench.workloads import ARRAY_SIZES, IntArrayWorkload
from repro.minic import ast
from repro.minic.pretty import source_size
from repro.tempo.postprocess import prune_unreachable_functions


def client_only_program(workload):
    """The generic client-path code (the paper sizes client code only)."""
    program = ast.Program(
        structs=list(workload.program.structs),
        enums=list(workload.program.enums),
        funcs=list(workload.program.funcs),
        globals=list(workload.program.globals),
    )
    return prune_unreachable_functions(program, "sendrecv_call")


def compute(workload=None, sizes=ARRAY_SIZES):
    workload = workload or IntArrayWorkload()
    generic_size = source_size(client_only_program(workload))
    rows = []
    for n in sizes:
        result = workload.specialized_call(n)
        rows.append(
            {
                "n": n,
                "generic_bytes": generic_size,
                "specialized_bytes": result.source_size(),
                "residual_functions": len(result.program.funcs),
            }
        )
    return rows


def render(rows):
    table_rows = []
    for row in rows:
        paper_spec = paper_data.TABLE3_SPECIALIZED.get(row["n"], "-")
        table_rows.append(
            (
                row["n"],
                row["generic_bytes"],
                row["specialized_bytes"],
                round(row["specialized_bytes"] / row["generic_bytes"], 2),
                paper_spec,
                (
                    round(
                        paper_spec / paper_data.TABLE3_GENERIC, 2
                    )
                    if isinstance(paper_spec, int)
                    else "-"
                ),
            )
        )
    return format_table(
        "Table 3: client code size (bytes of canonical source)",
        ("n", "generic", "specialized", "ratio", "paper spec B",
         "paper ratio"),
        table_rows,
        note=(
            f"paper generic client binary: {paper_data.TABLE3_GENERIC} bytes"
            " (we compare size *ratios*: our axis is source bytes, the"
            " paper's is SunOS binary bytes)"
        ),
    )


def run(workload=None, sizes=ARRAY_SIZES):
    rows = compute(workload, sizes)
    print(render(rows))
    return rows
