"""Cluster soak — durable at-most-once across a multi-**process**
rolling restart (CLI: ``python -m repro.bench cluster``).

The chaos soak (:mod:`repro.bench.chaos`) kills threads; this soak
kills *processes*.  Five fleet nodes (:mod:`repro.bench.cluster_node`
subprocesses) serve a doubling procedure behind 20% reply loss, with
the full durability stack live on every node: DRC + write-ahead
journal (``fsync=always``), incarnation-fenced replication around a
ring, fleet membership heartbeating the orchestrator's in-process
directory, and per-caller quotas.  While load runs, every node is
rolling-restarted — four gracefully (SIGTERM: drain, flush, summary)
and one with ``SIGKILL`` (nothing gets to say goodbye) — and each
restarted incarnation recovers its predecessor's replies from the
journal before taking traffic.

Invariants (any violation raises ``AssertionError``):

* **zero duplicate handler executions across restart boundaries** —
  every node writes an ``O_APPEND`` execution witness from the DRC
  ``on_store`` chain (see :mod:`repro.bench.cluster_node` for why the
  log cannot over-count around a kill); afterwards every key must
  appear at most once across *all* logs of *all* incarnations;
* **restart replay** — a request answered by incarnation *k* and
  retransmitted byte-identically to incarnation *k+1* (same client
  socket, same xid) is answered byte-identically from the recovered
  journal, and the exec logs show one execution;
* **replica replay** — the same retransmission aimed at a ring
  *successor* is answered byte-identically from the replicated entry;
* **100% typed resolution** — every load call returns a value or a
  typed ``RpcError`` within its deadline; no hangs, no raw
  tracebacks;
* **quota** — a greedy burst from one socket is shed (answered
  ``SYSTEM_ERR``), while the well-behaved load is not starved;
* every graceful shutdown writes a summary whose per-incarnation
  counters satisfy the DRC uniqueness proof.

Results go to ``BENCH_cluster.json``.  ``REPRO_CLUSTER_CALLS`` /
``REPRO_CLUSTER_SEED`` override the soak size and fault dice.
"""

import json
import os
import platform
import signal
import socket
import subprocess
import sys
import threading
import time

from repro.bench.cluster_node import PROC_DOUBLE, PROG, VERS
from repro.bench.report import format_table
from repro.errors import RpcError
from repro.rpc import FailoverClient, SvcRegistry, UdpServer
from repro.rpc.client import RpcClient
from repro.rpc.fleet import FleetDirectory, FleetWatcher
from repro.rpc.resilience import HEALTH_PROG, HEALTH_PROC_STATUS, \
    HEALTH_VERS, STATUS_SERVING
from repro.xdr import xdr_u_long

DEFAULT_JSON = "BENCH_cluster.json"
NODES = 5
DEFAULT_CALLS = 300
DEFAULT_SEED = 0xF1EE7
LOSS_RATE = 0.20
DUPLICATE_RATE = 0.10
CALL_BUDGET_S = 5.0
BUDGET_GRACE_S = 0.5
LOAD_THREADS = 3
#: quota knobs for the nodes: the paced load threads (~30 calls/s per
#: client socket at most) stay under the refill rate, while the greedy
#: probe's datagram blast burns the burst in well under a refill
#: second.  DRC replays are never charged, so loss-driven retransmits
#: do not count against anyone's bucket.
QUOTA_RATE = 50.0
QUOTA_BURST = 32.0
#: the well-behaved per-call pacing of the load threads (keeps each
#: client socket's arrival rate below QUOTA_RATE).
LOAD_PACE_S = 0.03


def _free_ports(count):
    """Reserve ``count`` distinct free UDP ports (bind, record, close).

    Fixed ports matter: a restarted node must come back at the *same*
    endpoint so retransmitted requests and replication pushes reach
    its new incarnation.
    """
    ports, socks = [], []
    for _ in range(count):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        socks.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in socks:
        sock.close()
    return ports


class _Node:
    """One node subprocess and its restart bookkeeping."""

    def __init__(self, node_id, port, directory_port, peer_ports, workdir,
                 seed):
        self.node_id = node_id
        self.port = port
        self.directory_port = directory_port
        self.peer_ports = peer_ports
        self.workdir = workdir
        self.seed = seed
        self.incarnation = 0
        self.process = None
        self.summaries = []
        self.exec_log = os.path.join(workdir, f"node{node_id}.exec")
        self.drc_dir = os.path.join(workdir, f"node{node_id}-drc")

    def summary_path(self, incarnation):
        return os.path.join(self.workdir,
                            f"node{self.node_id}-inc{incarnation}.json")

    def start(self):
        self.incarnation += 1
        argv = [
            sys.executable, "-m", "repro.bench.cluster_node",
            "--node-id", str(self.node_id),
            "--port", str(self.port),
            "--incarnation", str(self.incarnation),
            "--directory-port", str(self.directory_port),
            "--peers", ",".join(str(port) for port in self.peer_ports),
            "--drc-dir", self.drc_dir,
            "--exec-log", self.exec_log,
            "--summary", self.summary_path(self.incarnation),
            "--loss", str(LOSS_RATE),
            "--duplicate", str(DUPLICATE_RATE),
            "--seed", str(self.seed),
            "--quota-rate", str(QUOTA_RATE),
            "--quota-burst", str(QUOTA_BURST),
        ]
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(argv, env=env)
        return self

    def wait_serving(self, timeout=10.0):
        """Poll the node's health program until it answers SERVING."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if _health_of(self.port) == STATUS_SERVING:
                return True
            time.sleep(0.05)
        return False

    def terminate(self, timeout=10.0):
        """Graceful SIGTERM restart half: drain, summary, exit 0."""
        self.process.send_signal(signal.SIGTERM)
        code = self.process.wait(timeout=timeout)
        path = self.summary_path(self.incarnation)
        summary = None
        if os.path.exists(path):
            with open(path) as handle:
                summary = json.load(handle)
            self.summaries.append(summary)
        return code, summary

    def kill(self, timeout=10.0):
        """SIGKILL: no drain, no summary, journal must carry the day."""
        self.process.kill()
        return self.process.wait(timeout=timeout)


def _health_of(port, deadline=1.0):
    from repro.rpc.clnt_udp import UdpClient

    client = UdpClient("127.0.0.1", port, HEALTH_PROG, HEALTH_VERS,
                       timeout=deadline, wait=0.05, jitter=0.0)
    try:
        return client.call(HEALTH_PROC_STATUS, xdr_res=xdr_u_long)
    except RpcError as exc:
        return type(exc).__name__
    finally:
        client.close()


class _RawProbe:
    """A hand-rolled UDP caller whose socket (and therefore DRC caller
    identity) persists across server restarts.

    ``send_call`` transmits one exact call message and retransmits it
    until a reply bearing its xid arrives — the same bytes every time,
    so the server sees a true retransmission, never a fresh call.
    """

    def __init__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.settimeout(0.25)
        self._builder = RpcClient(PROG, VERS)

    def build(self, xid, value):
        return self._builder.build_call(xid, PROC_DOUBLE, value, xdr_u_long)

    def send_call(self, request, port, overall_timeout=8.0):
        """The raw reply bytes for ``request``, or None on timeout."""
        xid = int.from_bytes(request[0:4], "big")
        deadline = time.monotonic() + overall_timeout
        while time.monotonic() < deadline:
            self.sock.sendto(request, ("127.0.0.1", port))
            try:
                reply = self.sock.recv(65536)
            except socket.timeout:
                continue
            if len(reply) >= 4 and int.from_bytes(reply[0:4], "big") == xid:
                return reply
        return None

    def close(self):
        self.sock.close()


def _load_thread(thread_id, directory_port, calls, results, stop,
                 violations):
    """One sustained-load client: a FailoverClient fed live endpoints
    by a FleetWatcher, so restarts are followed without any static
    configuration."""
    client = FailoverClient(
        [("127.0.0.1", 1)],  # placeholder; the watcher replaces it
        PROG, VERS, transport="udp", call_budget_s=CALL_BUDGET_S,
        breaker_threshold=3, breaker_recovery_s=0.3,
        timeout=1.0, wait=0.08, jitter=0.2,
    )
    watcher = FleetWatcher(client, ("127.0.0.1", directory_port),
                           period_s=0.2)
    # Do not issue calls until the watcher has a real view.
    for _ in range(100):
        if watcher.last_view != [("127.0.0.1", 1)]:
            break
        time.sleep(0.05)
    try:
        for i in range(calls):
            if stop.is_set():
                break
            value = (thread_id << 16) | i
            started = time.perf_counter()
            try:
                result = client.call(PROC_DOUBLE, value,
                                     xdr_args=xdr_u_long,
                                     xdr_res=xdr_u_long)
                outcome = ("ok" if result == (value * 2) & 0xFFFFFFFF
                           else "wrong_value")
            except RpcError as exc:
                outcome = type(exc).__name__
            except Exception as exc:  # noqa: BLE001 - the invariant
                outcome = f"UNTYPED:{type(exc).__name__}"
            elapsed = time.perf_counter() - started
            results.append((outcome, elapsed))
            if outcome == "wrong_value" or outcome.startswith("UNTYPED"):
                violations.append(f"load[{thread_id}] call {i}: {outcome}")
            if elapsed > CALL_BUDGET_S + BUDGET_GRACE_S:
                violations.append(
                    f"load[{thread_id}] call {i}: {elapsed:.2f}s over"
                    f" budget"
                )
            time.sleep(LOAD_PACE_S)  # stay under the per-caller quota
    finally:
        watcher.stop()
        client.close()


def _read_exec_logs(nodes):
    """Every witnessed execution key across all nodes' logs."""
    keys = []
    for node in nodes:
        if not os.path.exists(node.exec_log):
            continue
        with open(node.exec_log) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    keys.append((node.node_id, line))
    return keys


def _check_incarnation(summary):
    """The per-incarnation DRC uniqueness proof on one node summary."""
    problems = []
    drc = summary["drc"]
    if summary["handlers_invoked"] != drc["stores"]:
        problems.append(
            f"node{summary['node_id']}#{summary['incarnation']}:"
            f" handlers_invoked={summary['handlers_invoked']} !="
            f" drc stores={drc['stores']}"
        )
    if drc["evictions"]:
        problems.append(
            f"node{summary['node_id']}#{summary['incarnation']}:"
            f" drc evicted {drc['evictions']} entries — uniqueness"
            f" proof lost"
        )
    journal = summary.get("journal")
    if journal is not None and journal["append_errors"]:
        problems.append(
            f"node{summary['node_id']}#{summary['incarnation']}:"
            f" {journal['append_errors']} journal append errors"
        )
    return problems


def run(workload=None, calls=None, seed=None, json_path=DEFAULT_JSON):
    """Run the cluster soak; raises ``AssertionError`` on violation.

    ``workload`` is accepted (and ignored) for CLI uniformity.
    """
    del workload
    import tempfile

    calls = calls if calls is not None else int(
        os.environ.get("REPRO_CLUSTER_CALLS", DEFAULT_CALLS))
    seed = seed if seed is not None else int(
        os.environ.get("REPRO_CLUSTER_SEED", DEFAULT_SEED))
    calls_per_thread = max(1, calls // LOAD_THREADS)
    violations = []
    workdir = tempfile.mkdtemp(prefix="repro-cluster-")

    # The membership directory lives in the orchestrator process.
    directory = FleetDirectory(liveness_s=1.5)
    dir_registry = SvcRegistry()
    directory.mount(dir_registry)
    dir_server = UdpServer(dir_registry, port=0, drc=False)
    dir_server.start()

    ports = _free_ports(NODES)
    nodes = []
    for node_id in range(NODES):
        peer_ports = [ports[(node_id + 1) % NODES],
                      ports[(node_id + 2) % NODES]]
        nodes.append(_Node(node_id, ports[node_id], dir_server.port,
                           peer_ports, workdir, seed))
    started_all = time.perf_counter()
    events = []

    def event(name, **details):
        events.append({"t": time.perf_counter() - started_all,
                       "event": name, **details})

    probe = _RawProbe()
    results = []
    stop = threading.Event()
    threads = []
    shed_replies = 0
    try:
        for node in nodes:
            node.start()
        for node in nodes:
            if not node.wait_serving():
                violations.append(
                    f"node{node.node_id} never reached SERVING"
                )
        event("fleet_up", ports=ports)

        threads = [
            threading.Thread(
                target=_load_thread,
                args=(i, dir_server.port, calls_per_thread, results, stop,
                      violations),
                daemon=True,
            )
            for i in range(LOAD_THREADS)
        ]
        for thread in threads:
            thread.start()
        time.sleep(1.0)  # let load establish before the first restart

        # -- restart-replay probe seed: answered by incarnation 1 -----
        probe_xid = 0x5EED0001
        probe_request = probe.build(probe_xid, 21)
        first_reply = probe.send_call(probe_request, nodes[0].port)
        if first_reply is None:
            violations.append("probe: no reply from node0 incarnation 1")
        # -- replica-replay probe: answered by node1, replayed by its
        #    successor node2 after replication catches up --------------
        repl_xid = 0x5EED0002
        repl_request = probe.build(repl_xid, 33)
        repl_reply = probe.send_call(repl_request, nodes[1].port)
        if repl_reply is None:
            violations.append("probe: no reply from node1")
        time.sleep(0.5)  # replication flush interval is 20ms; be kind
        repl_replay = probe.send_call(repl_request, nodes[2].port)
        if repl_replay is None:
            violations.append("probe: no replica replay from node2")
        elif repl_reply is not None and repl_replay != repl_reply:
            violations.append(
                "probe: replica replay differs from the original reply"
            )
        event("replica_replay_checked")

        # -- rolling restart: every node, one of them the hard way ----
        hard_kill_node = 2
        for node in nodes:
            event("restart_begin", node=node.node_id,
                  mode="kill" if node.node_id == hard_kill_node
                  else "drain")
            if node.node_id == hard_kill_node:
                code = node.kill()
                if code == 0:
                    violations.append(
                        f"node{node.node_id}: SIGKILL exited 0?"
                    )
            else:
                code, summary = node.terminate()
                if code != 0:
                    violations.append(
                        f"node{node.node_id}#" f"{node.incarnation}:"
                        f" graceful exit code {code}"
                    )
                if summary is None:
                    violations.append(
                        f"node{node.node_id}#{node.incarnation}: no"
                        f" shutdown summary written"
                    )
                else:
                    violations.extend(_check_incarnation(summary))
            node.start()
            if not node.wait_serving():
                violations.append(
                    f"node{node.node_id}#{node.incarnation}: restart"
                    f" never reached SERVING"
                )
            event("restart_done", node=node.node_id,
                  incarnation=node.incarnation)
            time.sleep(0.3)

        # -- restart replay: same socket, same bytes, new incarnation --
        replay = probe.send_call(probe_request, nodes[0].port)
        if replay is None:
            violations.append(
                "probe: no restart replay from node0 incarnation 2"
            )
        elif first_reply is not None and replay != first_reply:
            violations.append(
                "probe: restart replay differs from the original reply"
                " — journal recovery returned different bytes"
            )
        event("restart_replay_checked")

        # -- quota probe: a greedy burst from one socket is shed -------
        # Blast the datagrams first, collect replies after: a serial
        # call-and-wait loop through 20% loss would arrive far below
        # the refill rate and never trip the bucket.  Every request
        # still lands (only replies are faulted), so once the burst
        # tokens are gone the rest are answered SYSTEM_ERR.
        greedy = _RawProbe()
        burst_size = int(QUOTA_BURST) * 4
        shed_replies = 0
        try:
            for i in range(burst_size):
                request = greedy.build(0x0A0B0000 + i, i)
                greedy.sock.sendto(request, ("127.0.0.1", nodes[4].port))
                if i % 16 == 15:
                    time.sleep(0.002)  # do not just overflow the queue
            quiet_until = time.monotonic() + 3.0
            while time.monotonic() < quiet_until:
                try:
                    reply = greedy.sock.recv(65536)
                except socket.timeout:
                    break
                # A shed is an accepted SYSTEM_ERR reply: accept_stat
                # (the last word of the fixed 24-byte reply) == 5.
                if (len(reply) == 24
                        and int.from_bytes(reply[20:24], "big") == 5):
                    shed_replies += 1
        finally:
            greedy.close()
        if not shed_replies:
            violations.append(
                "quota probe: greedy burst produced zero shed replies"
            )
        event("quota_probed", shed_replies=shed_replies)

        for thread in threads:
            thread.join(timeout=CALL_BUDGET_S * calls_per_thread)
        stop.set()
    finally:
        stop.set()
        # Final graceful stop of every node (collect summaries).
        for node in nodes:
            if node.process is not None and node.process.poll() is None:
                try:
                    code, summary = node.terminate()
                    if summary is not None:
                        violations.extend(_check_incarnation(summary))
                except (subprocess.TimeoutExpired, OSError):
                    node.process.kill()
                    violations.append(
                        f"node{node.node_id}: final terminate timed out"
                    )
        probe.close()
        dir_server.stop()
    elapsed_all = time.perf_counter() - started_all

    # -- the cross-restart uniqueness proof ---------------------------
    witnessed = _read_exec_logs(nodes)
    seen = {}
    duplicate_executions = 0
    for node_id, key in witnessed:
        if key in seen:
            duplicate_executions += 1
            violations.append(
                f"duplicate execution: key '{key}' on node{seen[key]}"
                f" and node{node_id}"
            )
        else:
            seen[key] = node_id

    outcomes = {}
    for outcome, _ in results:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    resolved = len(results)
    expected = calls_per_thread * LOAD_THREADS
    if resolved != expected:
        violations.append(f"only {resolved}/{expected} load calls"
                          f" resolved")

    all_summaries = [summary for node in nodes
                     for summary in node.summaries]
    recovered_total = sum(
        (summary.get("recovery") or {}).get("entries", 0)
        for summary in all_summaries
    )
    repl_entries = sum(summary["sink"]["entries_absorbed"]
                       for summary in all_summaries)
    fenced = sum(summary["sink"]["fenced"] for summary in all_summaries)
    quota_shed_total = sum(summary["quota"]["shed"]
                           for summary in all_summaries)
    if shed_replies and not quota_shed_total:
        violations.append(
            "quota probe: sheds observed on the wire but no node"
            " summary charged them to a quota bucket"
        )
    passed = not violations
    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "nodes": NODES,
            "calls": expected,
            "seed": seed,
            "loss": LOSS_RATE,
            "duplicate_rate": DUPLICATE_RATE,
            "call_budget_s": CALL_BUDGET_S,
            "quota": {"rate": QUOTA_RATE, "burst": QUOTA_BURST},
            "elapsed_s": elapsed_all,
            "workdir": workdir,
        },
        "events": events,
        "outcomes": outcomes,
        "executions_witnessed": len(witnessed),
        "unique_keys": len(seen),
        "duplicate_executions": duplicate_executions,
        "journal_recovered_entries": recovered_total,
        "replicated_entries_absorbed": repl_entries,
        "replication_fenced": fenced,
        "quota_shed_replies_observed": shed_replies,
        "quota_sheds_charged": quota_shed_total,
        "summaries": all_summaries,
        "violations": violations,
        "passed": passed,
    }
    rows = [
        ("load calls resolved", f"{resolved}/{expected}"),
        ("ok", outcomes.get("ok", 0)),
        ("typed errors", resolved - outcomes.get("ok", 0)),
        ("executions witnessed", len(witnessed)),
        ("duplicate executions", duplicate_executions),
        ("journal entries recovered", recovered_total),
        ("replicated entries absorbed", repl_entries),
        ("stale pushes fenced", fenced),
        ("greedy probe sheds (wire / charged)",
         f"{shed_replies} / {quota_shed_total}"),
        ("restarts", f"{NODES} ({NODES - 1} drain + 1 SIGKILL)"),
        ("violations", len(violations)),
        ("verdict", "PASS" if passed else "FAIL"),
    ]
    print(format_table(
        f"Cluster soak — {NODES} processes, {expected} calls,"
        f" {int(LOSS_RATE * 100)}% loss, rolling restart + hard kill",
        ("invariant", "value"),
        rows,
        note=f"seed {seed:#x}; proof: every exec-log key appears at"
             f" most once across all incarnations of all nodes",
    ))
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\n[wrote {json_path}]")
    if not passed:
        for violation in violations[:20]:
            print(f"VIOLATION: {violation}")
        raise AssertionError(
            f"cluster soak failed with {len(violations)} violation(s);"
            f" see {json_path or 'the violations above'}"
        )
    return report
