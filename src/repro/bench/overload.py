"""Overload soak — metastability with and without end-to-end control.

The classic metastable failure: a transient slowdown (a latency spike
on the reply path) builds a queue of requests whose callers have
already given up.  An *uncontrolled* stack — deep FIFO queue, no
deadline propagation, clients retransmitting on a tight fixed clock —
keeps burning worker time on that doomed backlog after the fault
clears, so fresh requests queue behind garbage, miss their deadlines
in turn, and goodput stays collapsed long after the trigger is gone.

The *controlled* stack layers the four `repro.rpc.overload`
mechanisms on the same topology:

* **deadline propagation** — requests carry their remaining budget;
  the server drops doomed work before dispatch (cheap) instead of
  executing it (expensive);
* **retry budgets** — the client's retransmit clock is gated by a
  token bucket, so the fault window does not amplify offered load;
* **CoDel + LIFO-when-overloaded** — the server queue sheds on
  standing sojourn and serves newest-first while overloaded, so
  fresh work meets its deadline while the backlog is drained at
  drop cost, not execution cost;
* **hedged requests** — a `FailoverClient` probe races both replicas
  after an adaptive latency trigger; the xid discipline plus the DRC
  keep duplicate executions at exactly zero.

Both stacks run the same open-loop workload (fixed arrival rate —
arrivals do not slow down when the server does, which is what makes
collapse self-sustaining) against two replicas, with a timed latency
spike injected mid-run via ``FaultPlan.begin_spike``.  Goodput is
bucketed by *send time* so an outcome is attributed to the instant
the load was offered.

Hard floors (asserted, controlled stack only):

* recovery goodput (last two buckets) >= 80% of pre-fault goodput;
* doomed-work drops > 0 (propagation actually saved execution time);
* hedge attempts > 0 and, on every replica of *both* stacks,
  ``handlers_invoked == drc.stores`` with zero evictions — no
  duplicate handler execution under retransmission or hedging;
* no stack trace escapes a server thread.

The uncontrolled stack's recovery ratio is reported for contrast but
not asserted — staying collapsed is the expected (bad) behavior.

CLI: ``python -m repro.bench overload`` -> ``BENCH_overload.json``.
``REPRO_OVERLOAD_CALLS`` scales the run (default 1350 offered calls
per stack at a fixed 150/s — nine seconds per stack).
"""

from __future__ import annotations

import json
import logging
import os
import platform
import threading
import time

from repro.bench.report import format_table
from repro.errors import RpcError
from repro.rpc import (
    FailoverClient,
    FaultPlan,
    HedgeTrigger,
    MuxUdpClient,
    RetryBudget,
    SvcRegistry,
    UdpServer,
)
from repro.xdr import xdr_u_long

PROG = 0x20011BEB
VERS = 1
PROC_WORK = 1

#: handler service time — the unit of work doomed requests waste
HANDLER_SLEEP_S = 0.02
WORKERS = 2
#: deep enough that the uncontrolled stack's only defense is the queue
QUEUE_DEPTH = 4096
DRC_CAPACITY = 4096
REPLICAS = 2

#: open-loop offered rate, split round-robin across replicas
RATE_PER_S = 150.0
#: per-call deadline (client budget; propagated on the controlled stack)
DEADLINE_S = 0.8
#: reply-path latency spike injected during the fault phase
SPIKE_DELAY_S = 0.35

#: phase split of the offered calls: warm / spike / recovery
PHASE_FRACTIONS = (3 / 9, 2 / 9, 4 / 9)
PHASE_BUCKETS = (3, 2, 4)
PHASE_NAMES = ("warm", "spike", "recovery")

#: closed-loop hedged calls raced across both replicas post-recovery
HEDGE_PROBES = 40

RECOVERY_FLOOR = 0.80
DEFAULT_CALLS = 1350
MIN_CALLS = 450
DEFAULT_SEED = 42
DEFAULT_JSON = "BENCH_overload.json"


class _TracebackWatch:
    """Captures anything that would have printed a stack trace: uncaught
    thread exceptions and ERROR-level log records from the stack."""

    def __init__(self):
        self.thread_exceptions = []
        self.error_logs = []
        self._prev_hook = None
        self._handler = None

    def __enter__(self):
        self._prev_hook = threading.excepthook
        threading.excepthook = self._on_thread_exception
        watch = self

        class _Capture(logging.Handler):
            def emit(self, record):
                watch.error_logs.append(
                    f"{record.name}: {record.getMessage()}"
                )

        self._handler = _Capture(level=logging.ERROR)
        logging.getLogger("repro").addHandler(self._handler)
        return self

    def _on_thread_exception(self, args):
        self.thread_exceptions.append(
            f"{args.thread.name if args.thread else '?'}:"
            f" {args.exc_type.__name__}: {args.exc_value}"
        )

    def __exit__(self, *exc_info):
        threading.excepthook = self._prev_hook
        logging.getLogger("repro").removeHandler(self._handler)
        return False

    @property
    def escaped(self):
        return len(self.thread_exceptions) + len(self.error_logs)


class Replica:
    """One UDP replica: DRC-backed registry, worker pool, and a clean
    fault plan used only for the timed spike phase."""

    def __init__(self, name, seed, controlled):
        self.name = name
        self.controlled = controlled
        registry = SvcRegistry(fastpath=True)
        registry.enable_drc(DRC_CAPACITY)
        registry.install_health()

        def work(value):
            time.sleep(HANDLER_SLEEP_S)
            return (value + 1) & 0xFFFFFFFF

        registry.register(PROG, VERS, PROC_WORK, work,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
        self.registry = registry
        self.plan = FaultPlan(seed=seed)
        self.server = UdpServer(
            registry, fastpath=True, drc=True, fault_plan=self.plan,
            workers=WORKERS, queue_depth=QUEUE_DEPTH,
            queue_policy=("codel-lifo" if controlled else "fifo"),
            queue_target_s=0.005, queue_interval_s=0.05,
        )
        self.port = self.server.port
        self.server.start()

    def snapshot(self):
        drc = self.registry.drc.summary()
        return {
            "name": self.name,
            "handlers_invoked": self.registry.handlers_invoked,
            "doomed_dropped": self.registry.doomed_dropped,
            "requests_shed": self.server.requests_shed,
            "sojourn_sheds": getattr(self.server._pool, "sojourn_shed", 0),
            "drc": drc,
        }

    def violations(self):
        found = []
        invoked = self.registry.handlers_invoked
        stores = self.registry.drc.stores
        if invoked != stores:
            found.append(
                f"{self.name}: duplicate-execution invariant broken:"
                f" handlers_invoked={invoked} != drc stores={stores}"
            )
        if self.registry.drc.evictions:
            found.append(
                f"{self.name}: drc evicted"
                f" {self.registry.drc.evictions} entries — the"
                f" at-most-once window is compromised; raise"
                f" DRC_CAPACITY"
            )
        return found

    def stop(self):
        self.server.stop()


def _phase_plan(calls):
    """Bucket boundaries: ``[(phase, start_s, end_s), ...]``."""
    total = calls / RATE_PER_S
    plan = []
    offset = 0.0
    for name, fraction, count in zip(PHASE_NAMES, PHASE_FRACTIONS,
                                     PHASE_BUCKETS):
        duration = total * fraction
        width = duration / count
        for _ in range(count):
            plan.append((name, offset, offset + width))
            offset += width
    # float drift: pin the final edge so bucket_of never misses
    plan[-1] = (plan[-1][0], plan[-1][1], total + 1.0)
    return plan


def _bucket_of(plan, t):
    for index, (_, start, end) in enumerate(plan):
        if start <= t < end:
            return index
    return len(plan) - 1


def _drive(clients, replicas, calls, plan):
    """Open-loop driver: fire ``calls`` at RATE_PER_S round-robin
    across replicas, spike both reply paths during the spike phase,
    classify every outcome by its send-time bucket."""
    buckets = [{"sent": 0, "ok": 0, "errors": {}} for _ in plan]
    pending = []
    warm_end = plan[PHASE_BUCKETS[0]][1]
    spike_end = plan[PHASE_BUCKETS[0] + PHASE_BUCKETS[1]][1]
    spike_started = False
    interval = 1.0 / RATE_PER_S
    started = time.monotonic()
    for i in range(calls):
        at = started + i * interval
        now = time.monotonic()
        if at > now:
            time.sleep(at - now)
        t = time.monotonic() - started
        if not spike_started and t >= warm_end:
            for replica in replicas:
                replica.plan.begin_spike(
                    SPIKE_DELAY_S, duration_s=spike_end - t)
            spike_started = True
        bucket = _bucket_of(plan, t)
        buckets[bucket]["sent"] += 1
        client = clients[i % len(clients)]
        try:
            call = client.call_async(PROC_WORK, i, xdr_args=xdr_u_long,
                                     xdr_res=xdr_u_long,
                                     deadline=DEADLINE_S)
        except RpcError as exc:
            errors = buckets[bucket]["errors"]
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1
            continue
        pending.append((bucket, call))
    # Drain: the engine resolves every pending call by its hard end;
    # the generous timeout only guards against a wedged loop.
    for bucket, call in pending:
        try:
            call.result(DEADLINE_S + 10.0)
            buckets[bucket]["ok"] += 1
        except RpcError as exc:
            errors = buckets[bucket]["errors"]
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1
    return buckets


def _hedge_probe(replicas):
    """Closed-loop hedged calls racing both replicas: the pre-warmed
    trigger fires well inside the handler's service time, so nearly
    every call runs as a two-replica race — the strongest duplicate-
    execution stress the client can generate."""
    # max_delay_s pins the trigger at 5 ms — well inside the 20 ms
    # handler — so every probe hedges instead of only the first few
    # (the adaptive quantile would otherwise learn the true p95 and
    # correctly stop racing a healthy replica).
    trigger = HedgeTrigger(min_samples=1, min_delay_s=0.005,
                           max_delay_s=0.005)
    for _ in range(16):
        trigger.observe(0.005)
    endpoints = [("127.0.0.1", replica.port) for replica in replicas]
    client = FailoverClient(endpoints, PROG, VERS, transport="mux-udp",
                            call_budget_s=2.0, hedge_trigger=trigger,
                            timeout=2.0, wait=0.5, jitter=0.0)
    ok = 0
    try:
        for i in range(HEDGE_PROBES):
            try:
                client.call(PROC_WORK, i, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
                ok += 1
            except RpcError:
                pass
        # let losing racers resolve before the servers go away
        time.sleep(0.3)
        return {"probes": HEDGE_PROBES, "ok": ok,
                "hedges": client.hedges, "hedge_wins": client.hedge_wins}
    finally:
        client.close()


def _run_stack(controlled, calls, seed):
    name = "controlled" if controlled else "uncontrolled"
    plan = _phase_plan(calls)
    replicas = [Replica(f"{name}-r{i}", seed=seed + 100 * i,
                        controlled=controlled)
                for i in range(REPLICAS)]
    clients = []
    for replica in replicas:
        if controlled:
            # budgeted exponential retransmit + propagated deadlines
            clients.append(MuxUdpClient(
                "127.0.0.1", replica.port, PROG, VERS,
                max_inflight=QUEUE_DEPTH, timeout=DEADLINE_S,
                wait=0.1, backoff=2.0, max_wait=0.4, jitter=0.0,
                retry_budget=RetryBudget(ratio=0.2, burst=10.0),
                propagate_deadline=True))
        else:
            # fixed 50 ms retransmit clock, no budget, no propagation:
            # the fault window multiplies offered load unchecked
            clients.append(MuxUdpClient(
                "127.0.0.1", replica.port, PROG, VERS,
                max_inflight=QUEUE_DEPTH, timeout=DEADLINE_S,
                wait=0.05, backoff=1.0, max_wait=0.05, jitter=0.0))
    hedge = None
    try:
        buckets = _drive(clients, replicas, calls, plan)
        if controlled:
            hedge = _hedge_probe(replicas)
    finally:
        for client in clients:
            client.close()
    violations = []
    for replica in replicas:
        replica.stop()
        violations.extend(replica.violations())
    snapshots = [replica.snapshot() for replica in replicas]

    warm_n = PHASE_BUCKETS[0]
    total = calls / RATE_PER_S
    bucket_rates = []
    for (phase, start, end), bucket in zip(plan, buckets):
        width = min(end, total) - start
        bucket_rates.append(bucket["ok"] / width if width > 0 else 0.0)
    warm_goodput = sum(bucket_rates[:warm_n]) / warm_n
    tail = bucket_rates[-2:]
    recovery_goodput = sum(tail) / len(tail)
    ratio = (recovery_goodput / warm_goodput) if warm_goodput else 0.0
    return {
        "name": name,
        "buckets": [
            {"phase": phase, "start_s": round(start, 3),
             "sent": bucket["sent"], "ok": bucket["ok"],
             "goodput_per_s": round(rate, 2),
             "errors": bucket["errors"]}
            for (phase, start, _), bucket, rate
            in zip(plan, buckets, bucket_rates)
        ],
        "warm_goodput_per_s": round(warm_goodput, 2),
        "recovery_goodput_per_s": round(recovery_goodput, 2),
        "recovery_ratio": round(ratio, 4),
        "doomed_dropped": sum(s["doomed_dropped"] for s in snapshots),
        "sojourn_sheds": sum(s["sojourn_sheds"] for s in snapshots),
        "requests_shed": sum(s["requests_shed"] for s in snapshots),
        "hedge_probe": hedge,
        "replicas": snapshots,
        "violations": violations,
    }


def run(workload=None, calls=None, seed=None, json_path=DEFAULT_JSON):
    """Run the overload soak, print the verdict table, write the JSON
    report, and raise ``AssertionError`` on any floor violation.

    ``workload`` is accepted (and ignored) for CLI uniformity.
    """
    del workload
    if calls is None:
        calls = int(os.environ.get("REPRO_OVERLOAD_CALLS", DEFAULT_CALLS))
    calls = max(int(calls), MIN_CALLS)
    if seed is None:
        seed = int(os.environ.get("REPRO_OVERLOAD_SEED", DEFAULT_SEED))
    violations = []
    started = time.perf_counter()
    with _TracebackWatch() as watch:
        uncontrolled = _run_stack(False, calls, seed)
        controlled = _run_stack(True, calls, seed + 5000)
    elapsed = time.perf_counter() - started

    # Floors — controlled stack only; the uncontrolled collapse is the
    # phenomenon under study, not a failure of the bench.
    violations.extend(uncontrolled["violations"])
    violations.extend(controlled["violations"])
    if controlled["recovery_ratio"] < RECOVERY_FLOOR:
        violations.append(
            f"controlled stack failed to recover:"
            f" {controlled['recovery_goodput_per_s']}/s after the fault"
            f" vs {controlled['warm_goodput_per_s']}/s warm"
            f" (ratio {controlled['recovery_ratio']} <"
            f" {RECOVERY_FLOOR})"
        )
    if controlled["doomed_dropped"] <= 0:
        violations.append(
            "deadline propagation dropped zero doomed requests — the"
            " carrier or the pre-dispatch check is not wired through"
        )
    hedge = controlled["hedge_probe"] or {}
    if not hedge.get("hedges"):
        violations.append(
            "hedge probe issued zero hedged requests — the adaptive"
            " trigger never fired"
        )
    if watch.escaped:
        for item in watch.thread_exceptions + watch.error_logs:
            violations.append(f"escaped: {item}")

    results = {
        "meta": {
            "bench": "overload",
            "calls_per_stack": calls,
            "rate_per_s": RATE_PER_S,
            "deadline_s": DEADLINE_S,
            "spike_delay_s": SPIKE_DELAY_S,
            "handler_sleep_s": HANDLER_SLEEP_S,
            "workers": WORKERS,
            "queue_depth": QUEUE_DEPTH,
            "replicas": REPLICAS,
            "seed": seed,
            "recovery_floor": RECOVERY_FLOOR,
            "elapsed_s": round(elapsed, 2),
            "python": platform.python_version(),
        },
        "stacks": {
            "uncontrolled": uncontrolled,
            "controlled": controlled,
        },
        "violations": violations,
        "passed": not violations,
    }

    rows = []
    for stack in (uncontrolled, controlled):
        rows.append((
            stack["name"],
            stack["warm_goodput_per_s"],
            stack["recovery_goodput_per_s"],
            stack["recovery_ratio"],
            stack["doomed_dropped"],
            stack["sojourn_sheds"],
            (stack["hedge_probe"] or {}).get("hedges", 0),
        ))
    print(format_table(
        f"Overload soak — {calls} calls/stack @ {RATE_PER_S:.0f}/s,"
        f" {SPIKE_DELAY_S * 1000:.0f} ms reply spike"
        f" ({elapsed:.1f}s)",
        ("stack", "warm/s", "recovery/s", "ratio", "doomed",
         "sojourn sheds", "hedges"),
        rows,
        note=(f"floors (controlled): recovery ratio >="
              f" {RECOVERY_FLOOR}, doomed drops > 0, hedges > 0,"
              f" handlers_invoked == drc stores on every replica"),
    ))
    phase_rows = []
    for name, stack in (("uncontrolled", uncontrolled),
                        ("controlled", controlled)):
        for bucket in stack["buckets"]:
            phase_rows.append((name, bucket["phase"],
                               bucket["start_s"], bucket["sent"],
                               bucket["ok"], bucket["goodput_per_s"]))
    print()
    print(format_table(
        "Goodput by send-time bucket",
        ("stack", "phase", "t0 (s)", "sent", "ok", "goodput/s"),
        phase_rows,
    ))

    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n[wrote {json_path}]")
    if violations:
        listed = "\n  - ".join(violations[:20])
        raise AssertionError(
            f"overload soak: {len(violations)} violation(s):\n"
            f"  - {listed}"
        )
    return results
