"""Table 1 — client marshaling performance (ms).

The paper's micro-benchmark: encode the RPC call message (header plus an
``n``-integer array) with the generic micro-layers and with the Tempo
residual code, on both platform models.
"""

from repro.bench import paper_data
from repro.bench.report import format_table
from repro.bench.workloads import ARRAY_SIZES, IntArrayWorkload
from repro.simulator import ipx_sunos, pc_linux


def compute(workload=None, sizes=ARRAY_SIZES, warmup_runs=1):
    """Returns a list of per-size dicts with simulated times (ms)."""
    workload = workload or IntArrayWorkload()
    rows = []
    for n in sizes:
        _len_g, request_g, trace_g = workload.generic_marshal_trace(n)
        result = workload.specialized_marshal(n)
        _len_s, request_s, trace_s = workload.specialized_marshal_trace(
            n, result
        )
        assert request_g == request_s, "specialization changed the wire data"
        row = {"n": n}
        for key, machine_factory in (("ipx", ipx_sunos), ("pc", pc_linux)):
            original = machine_factory().steady_state_time(
                trace_g, warmup_runs
            )
            specialized = machine_factory().steady_state_time(
                trace_s, warmup_runs
            )
            row[f"{key}_original_ms"] = original.ms()
            row[f"{key}_specialized_ms"] = specialized.ms()
            row[f"{key}_speedup"] = original.seconds / specialized.seconds
        rows.append(row)
    return rows


def render(rows):
    table_rows = []
    for row in rows:
        paper = paper_data.TABLE1.get(row["n"])
        paper_sp = paper_data.TABLE1_SPEEDUPS.get(row["n"])
        table_rows.append(
            (
                row["n"],
                round(row["ipx_original_ms"], 3),
                round(row["ipx_specialized_ms"], 3),
                round(row["ipx_speedup"], 2),
                paper_sp[0] if paper_sp else "-",
                round(row["pc_original_ms"], 3),
                round(row["pc_specialized_ms"], 3),
                round(row["pc_speedup"], 2),
                paper_sp[1] if paper_sp else "-",
            )
        )
    return format_table(
        "Table 1: client marshaling performance in ms",
        (
            "n", "IPX orig", "IPX spec", "IPX x", "paper x",
            "PC orig", "PC spec", "PC x", "paper x",
        ),
        table_rows,
        note=(
            "paper (Table 1) original/specialized ms — IPX: "
            + ", ".join(
                f"{n}:{v[0]}/{v[1]}" for n, v in paper_data.TABLE1.items()
            )
            + "; PC: "
            + ", ".join(
                f"{n}:{v[2]}/{v[3]}" for n, v in paper_data.TABLE1.items()
            )
        ),
    )


def run(workload=None, sizes=ARRAY_SIZES):
    rows = compute(workload, sizes)
    print(render(rows))
    return rows
