"""One fleet node of the cluster soak (``repro.bench.cluster``).

Run as a subprocess — ``python -m repro.bench.cluster_node --node-id 0
--port 42001 ...`` — so the soak exercises real process boundaries:
a SIGKILL here loses everything the durability tier did not persist,
exactly like a production crash, which no thread-based harness can
model.

Each node is the full durable stack:

* a :class:`~repro.rpc.SvcRegistry` with DRC + write-ahead journal
  (``drc_dir``, ``fsync=always`` so even the hard-killed node loses
  nothing journaled), health program, per-caller token-bucket quota;
* a replication sink + a :class:`~repro.rpc.fleet.DrcReplicator`
  pushing handler-produced entries to the ring successors;
* a :class:`~repro.rpc.fleet.FleetMember` heartbeating the
  orchestrator's directory;
* a lossy server socket (:class:`~repro.rpc.FaultPlan`) so clients
  retransmit and the DRC actually works for a living.

**The execution witness.**  The orchestrator's core assertion — zero
duplicate handler executions across restart boundaries — needs a
record of executions that survives SIGKILL and cannot over- or
under-report around the kill instant.  The node appends one line per
*stored* reply to an ``O_APPEND`` exec log from the DRC's
``on_store`` chain, **after** the journal append: a kill before the
store loses both journal entry and log line (the retransmission
re-executes and logs exactly once); a kill between journal append and
log write leaves the entry journaled-but-unlogged (the restarted node
*replays* it, logging zero times).  Either way a key can never be
logged twice, so "every key at most once across all logs" is exact,
not probabilistic.

On SIGTERM the node drains (in-flight finishes, DRC replays and
health keep answering), flushes the replicator, writes a summary JSON
next to its exec log, and exits 0.  On SIGKILL it simply dies — that
is the point.
"""

import argparse
import json
import os
import signal
import sys
import threading

from repro.rpc import FaultPlan, SvcRegistry, UdpServer
from repro.rpc.fleet import (
    DrcReplicator,
    FleetMember,
    Membership,
    install_replication_sink,
)
from repro.rpc.pmap import IPPROTO_UDP
from repro.xdr import xdr_u_long

PROG = 0x20091235
VERS = 1
#: procedure 1 doubles its argument — cheap, deterministic, and wrong
#: exactly once if it ever re-executes a cached request.
PROC_DOUBLE = 1


def _format_key(key):
    xid, caller, prog, vers, proc = key
    if isinstance(caller, tuple):
        caller = f"{caller[0]}:{caller[1]}"
    return f"{xid} {caller} {prog} {vers} {proc}"


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro-cluster-node")
    parser.add_argument("--node-id", type=int, required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--incarnation", type=int, required=True)
    parser.add_argument("--directory-port", type=int, required=True)
    parser.add_argument("--peers", default="",
                        help="comma-separated replication peer ports")
    parser.add_argument("--drc-dir", required=True)
    parser.add_argument("--exec-log", required=True)
    parser.add_argument("--summary", required=True)
    parser.add_argument("--loss", type=float, default=0.2)
    parser.add_argument("--duplicate", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quota-rate", type=float, default=500.0)
    parser.add_argument("--quota-burst", type=float, default=64.0)
    args = parser.parse_args(argv)

    registry = SvcRegistry(drc=True)
    registry.enable_drc(capacity=8192)
    registry.register(PROG, VERS, PROC_DOUBLE, lambda v: (v * 2) & 0xFFFFFFFF,
                      xdr_u_long, xdr_u_long)
    registry.install_health()
    sink = install_replication_sink(registry)
    # Budget per client *socket*: every soak client shares 127.0.0.1,
    # so the default per-host grouping would pool them into one bucket.
    registry.install_quota(rate=args.quota_rate, burst=args.quota_burst,
                           key=lambda caller: caller)

    plan = FaultPlan(seed=args.seed + args.node_id * 131 + args.incarnation,
                     drop=args.loss, duplicate=args.duplicate)
    # fsync=always: the hard-killed node must not lose journaled
    # replies; on loopback the fsync cost is irrelevant to the soak.
    server = UdpServer(registry, port=args.port, workers=2, queue_depth=32,
                       fault_plan=plan, drc_dir=args.drc_dir,
                       drc_fsync="always")

    peers = [("127.0.0.1", int(port))
             for port in args.peers.split(",") if port]
    replicator = None
    if peers:
        # catch_up: recovered entries are pushed too, so a restarted
        # node re-warms peers that missed pushes while it was down.
        replicator = DrcReplicator(
            registry.drc, peers, origin=f"node{args.node_id}",
            incarnation=args.incarnation, flush_interval_s=0.02,
            catch_up=True,
        )

    # The execution witness hooks *after* journal + replicator (each
    # wrapper runs its predecessor first), so the log line is the last
    # effect of a store — see the module docstring for the kill-window
    # argument.
    exec_fd = os.open(args.exec_log,
                      os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    previous = registry.drc.on_store

    def witness(key, reply):
        if previous is not None:
            previous(key, reply)
        os.write(exec_fd, (_format_key(key) + "\n").encode("ascii"))

    registry.drc.on_store = witness

    member = FleetMember(
        ("127.0.0.1", args.directory_port),
        Membership(f"node{args.node_id}", PROG, VERS, IPPROTO_UDP,
                   "127.0.0.1", args.port, args.incarnation),
        period_s=0.2,
    )

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    server.start()
    stop.wait()

    # Graceful goodbye: drain, flush replication, persist the summary.
    member.stop()
    server.drain(timeout=5.0)
    if replicator is not None:
        replicator.stop(flush=True)
    summary = {
        "node_id": args.node_id,
        "incarnation": args.incarnation,
        "handlers_invoked": registry.handlers_invoked,
        "sheds": registry.sheds,
        "requests_handled": server.requests_handled,
        "drc": registry.drc.summary(),
        "journal": (server.journal.summary()
                    if server.journal is not None else None),
        "recovery": (getattr(server.journal, "recovery", None)
                     if server.journal is not None else None),
        "sink": sink.summary(),
        "replicator": (replicator.summary()
                       if replicator is not None else None),
        "quota": registry.quota.summary(),
        "member": {
            "registrations_sent": member.registrations_sent,
            "heartbeats_sent": member.heartbeats_sent,
        },
    }
    tmp = args.summary + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    os.replace(tmp, args.summary)
    server.stop()
    os.close(exec_fd)
    return 0


if __name__ == "__main__":
    sys.exit(main())
