"""Table 4 — bounded (250-element) loop unrolling on the PC.

Fully unrolled residual code overflows the Pentium's 8 KB L1 I-cache at
large array sizes.  The paper manually re-rolled the residual loop into
250-element chunks and measured lower degradation; our
:mod:`repro.tempo.unroll` post-pass automates the same transformation.
"""

from repro.bench import paper_data
from repro.bench.report import format_table
from repro.bench.workloads import IntArrayWorkload
from repro.simulator import pc_linux

TABLE4_SIZES = (500, 1000, 2000)


def compute(workload=None, sizes=TABLE4_SIZES,
            factor=paper_data.TABLE4_FACTOR, warmup_runs=1):
    workload = workload or IntArrayWorkload()
    rows = []
    for n in sizes:
        _l, _req, trace_generic = workload.generic_marshal_trace(n)
        full = workload.specialized_marshal(n)
        _l, request_full, trace_full = workload.specialized_marshal_trace(
            n, full
        )
        rolled = workload.rerolled_marshal(n, factor)
        _l, request_rolled, trace_rolled = (
            workload.specialized_marshal_trace(n, rolled)
        )
        assert request_full == request_rolled, "re-rolling changed the wire"
        original = pc_linux().steady_state_time(trace_generic, warmup_runs)
        specialized = pc_linux().steady_state_time(trace_full, warmup_runs)
        partial = pc_linux().steady_state_time(trace_rolled, warmup_runs)
        rows.append(
            {
                "n": n,
                "original_ms": original.ms(),
                "specialized_ms": specialized.ms(),
                "speedup": original.seconds / specialized.seconds,
                "rolled_ms": partial.ms(),
                "rolled_speedup": original.seconds / partial.seconds,
            }
        )
    return rows


def render(rows):
    table_rows = []
    for row in rows:
        paper = paper_data.TABLE4.get(row["n"])
        table_rows.append(
            (
                row["n"],
                round(row["original_ms"], 3),
                round(row["specialized_ms"], 3),
                round(row["speedup"], 2),
                paper[2] if paper else "-",
                round(row["rolled_ms"], 3),
                round(row["rolled_speedup"], 2),
                paper[4] if paper else "-",
            )
        )
    return format_table(
        f"Table 4: PC/Linux marshaling with {paper_data.TABLE4_FACTOR}-"
        "element partial unrolling (ms)",
        ("n", "orig", "full spec", "x", "paper x", "250-roll", "x",
         "paper x"),
        table_rows,
        note=(
            "paper Table 4 (PC/Linux): 500: 0.29/0.11/2.65 vs 0.108/2.70;"
            " 1000: 0.51/0.17/3.00 vs 0.15/3.40;"
            " 2000: 0.97/0.29/3.35 vs 0.25/3.90"
        ),
    )


def run(workload=None, sizes=TABLE4_SIZES):
    rows = compute(workload, sizes)
    print(render(rows))
    return rows
