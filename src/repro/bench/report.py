"""Plain-text table/series rendering for the bench CLI."""


def format_table(title, headers, rows, note=None):
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = [
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        text_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for cells in text_rows:
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(cells, widths))
        )
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def format_series(title, x_label, xs, series, width=52):
    """Render series as aligned columns plus an ASCII sparkline chart
    (one row per x, bars proportional to the value)."""
    lines = [title, "=" * len(title)]
    names = list(series)
    peak = max(max(values) for values in series.values()) or 1.0
    header = [x_label.rjust(6)] + [name.rjust(12) for name in names]
    lines.append("  ".join(header))
    for index, x in enumerate(xs):
        cells = [str(x).rjust(6)]
        for name in names:
            cells.append(f"{series[name][index]:.3f}".rjust(12))
        lines.append("  ".join(cells))
    lines.append("")
    for name in names:
        lines.append(f"{name}:")
        for index, x in enumerate(xs):
            value = series[name][index]
            bar = "#" * max(1, int(round(value / peak * width)))
            lines.append(f"  {str(x).rjust(6)} |{bar} {value:.3f}")
    return "\n".join(lines)


def ratio(a, b):
    return a / b if b else float("inf")
