"""Experiment harness regenerating the paper's evaluation section.

Each module regenerates one table/figure:

* :mod:`repro.bench.marshaling` — Table 1 (client marshaling, both
  platforms, array sizes 20..2000);
* :mod:`repro.bench.roundtrip` — Table 2 (full RPC round trip);
* :mod:`repro.bench.codesize` — Table 3 (generic vs specialized code
  size);
* :mod:`repro.bench.unrolling` — Table 4 (250-element partial unroll);
* :mod:`repro.bench.figure6` — Figure 6 (all six panels as series);
* :mod:`repro.bench.ablation` — the design-choice ablations DESIGN.md
  calls out (context sensitivity, static returns, unrolling policy).

Run ``python -m repro.bench all`` (or a specific experiment name) to
print the regenerated rows next to the paper's published numbers.
"""

from repro.bench.workloads import ARRAY_SIZES, IntArrayWorkload

__all__ = ["ARRAY_SIZES", "IntArrayWorkload"]
