"""``repro-bench`` / ``python -m repro.bench`` — regenerate the paper's
tables and figures."""

import argparse
import sys
import time

from repro.bench import ablation, chaos, cluster, codesize, faults, figure6, live, marshaling, mux, online, overload, roundtrip, unrolling
from repro.bench.workloads import ARRAY_SIZES, IntArrayWorkload

EXPERIMENTS = {
    "table1": ("Table 1 — client marshaling", marshaling.run),
    "table2": ("Table 2 — RPC round trip", roundtrip.run),
    "table3": ("Table 3 — code size", codesize.run),
    "table4": ("Table 4 — 250-element partial unroll", unrolling.run),
    "figure6": ("Figure 6 — cross-platform panels", figure6.run),
    "ablation": ("Ablations of specializer refinements", ablation.run),
    "live": ("Live fast path — generic vs staged runtime", live.run),
    "faults": ("Fault matrix — latency/goodput under injected loss",
               faults.run),
    "chaos": ("Chaos soak — resilience invariants under loss, kills,"
              " and drain", chaos.run),
    "mux": ("Concurrent call engine — pipelined/batched goodput vs the"
            " serial client", mux.run),
    "chaos_mux": ("Chaos soak over the mux stack — pipelining preserves"
                  " at-most-once", chaos.run_mux),
    "cluster": ("Cluster soak — durable at-most-once across a"
                " multi-process rolling restart", cluster.run),
    "online": ("Online specialization — convergence curve of the"
               " profile-guided hot swap", online.run),
    "overload": ("Overload soak — metastability with vs without deadline"
                 " propagation, retry budgets, hedging, and CoDel",
                 overload.run),
}

#: experiments whose runner takes only the workload (no sizes tuple)
_NO_SIZES = ("table4", "ablation", "faults", "chaos", "mux", "chaos_mux",
             "cluster", "online", "overload")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the evaluation of 'Fast, Optimized Sun RPC Using"
            " Automatic Program Specialization'"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--sizes",
        type=lambda text: tuple(int(x) for x in text.split(",")),
        default=ARRAY_SIZES,
        help="comma-separated array sizes (default: the paper's"
        " 20,100,250,500,1000,2000)",
    )
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    workload = IntArrayWorkload()
    for name in names:
        title, runner = EXPERIMENTS[name]
        started = time.time()
        print(f"### {title}\n")
        if name in _NO_SIZES:
            runner(workload)
        else:
            runner(workload, args.sizes)
        print(f"\n[{name} done in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
