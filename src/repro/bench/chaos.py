"""``chaos`` report — the end-to-end resilience soak.

Thousands of calls are driven through a :class:`~repro.rpc.resilience.
FailoverClient` against three replicated UDP servers while the harness
injects a hostile schedule: 20% datagram loss in each direction (plus
duplicates), two abrupt kill/restart cycles, one graceful drain, and a
queue-overflow burst.  The run then *proves* the resilience
guarantees rather than eyeballing them:

* every call resolves — a value or a typed :class:`~repro.errors.
  RpcError` — within its deadline budget (nothing hangs, nothing
  leaks an untyped exception);
* per server incarnation, handler invocations equal unique accepted
  requests (``handlers_invoked == drc.stores == len(drc)`` with zero
  evictions): retransmissions and queued duplicates never re-execute
  a handler.  Re-execution after a *restart* (the reply cache dies
  with the process) is the documented at-least-once window;
* no stack trace escapes a server thread (``threading.excepthook``
  stays silent and no ERROR-level log records appear);
* overload is answered, not dropped: the burst phase observes
  queue-full sheds and every shed call still resolves typed.

Results go to ``BENCH_chaos.json``; the run fails loudly (raises
``AssertionError``) on any invariant violation so CI catches
regressions.  ``REPRO_CHAOS_CALLS`` / ``REPRO_CHAOS_SEED`` override
the soak size and the fault dice.

``engine="mux"`` (CLI: ``python -m repro.bench chaos_mux`` →
``BENCH_chaos_mux.json``) runs the identical schedule through the
concurrent call engine: replicas serve via
:class:`~repro.rpc.MuxUdpServer`, the failover client builds
:class:`~repro.rpc.MuxUdpClient` endpoints (many in-flight xids per
socket), and the burst phase keeps ~36 async calls in flight *per
client* instead of a thread per call — proving that pipelining and
batching preserve the exactly-once-per-incarnation DRC proof and the
typed-resolution guarantee.
"""

import json
import logging
import os
import platform
import threading
import time

from repro.bench.report import format_table
from repro.errors import RpcError
from repro.rpc import (
    FailoverClient,
    FaultPlan,
    HEALTH_PROC_STATUS,
    HEALTH_PROG,
    HEALTH_VERS,
    MuxUdpClient,
    MuxUdpServer,
    STATUS_DRAINING,
    SvcRegistry,
    UdpClient,
    UdpServer,
)
from repro.xdr import xdr_u_long

DEFAULT_JSON = "BENCH_chaos.json"
MUX_JSON = "BENCH_chaos_mux.json"
DEFAULT_CALLS = 1000
DEFAULT_SEED = 0xC4A05
REPLICAS = 3
LOSS_RATE = 0.20
DUPLICATE_RATE = 0.10
#: per-call end-to-end budget; every call must resolve within it
CALL_BUDGET_S = 5.0
#: slack allowed on top of the budget for scheduler noise
BUDGET_GRACE_S = 0.5

PROG = 0x20091234
VERS = 1
PROC_INC = 1
PROC_SLEEP = 2
SLEEP_S = 0.02

#: ample reply-cache capacity: zero evictions keeps the per-
#: incarnation uniqueness proof exact (stores == entries)
DRC_CAPACITY = 4096
WORKERS = 2
QUEUE_DEPTH = 32


class Replica:
    """One restartable server replica on a stable port."""

    def __init__(self, name, seed, engine="threaded"):
        self.name = name
        self.seed = seed
        self.engine = engine
        self.port = 0
        self.incarnation = 0
        self.server = None
        self.registry = None
        #: per-incarnation invariant records, one dict per lifetime
        self.incarnations = []

    def start(self):
        """(Re)start with a fresh registry — and a fresh reply cache,
        which is exactly the documented at-least-once window."""
        self.incarnation += 1
        registry = SvcRegistry(fastpath=True)
        registry.enable_drc(DRC_CAPACITY)
        registry.install_health()
        registry.register(PROG, VERS, PROC_INC,
                          lambda value: (value + 1) & 0xFFFFFFFF,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)

        def slow(value):
            time.sleep(SLEEP_S)
            return value

        registry.register(PROG, VERS, PROC_SLEEP, slow,
                          xdr_args=xdr_u_long, xdr_res=xdr_u_long)
        plan = FaultPlan(seed=self.seed + self.incarnation,
                         drop=LOSS_RATE, duplicate=DUPLICATE_RATE)
        self.registry = registry
        server_cls = MuxUdpServer if self.engine == "mux" else UdpServer
        self.server = server_cls(
            registry, port=self.port, fastpath=True, drc=True,
            fault_plan=plan, workers=WORKERS, queue_depth=QUEUE_DEPTH,
        )
        self.port = self.server.port
        self.server.start()
        return self

    def _snapshot(self, kind):
        registry, server = self.registry, self.server
        drc = registry.drc
        record = {
            "replica": self.name,
            "incarnation": self.incarnation,
            "ended_by": kind,
            "handlers_invoked": registry.handlers_invoked,
            "drc": drc.summary(),
            "drc_entries": len(drc),
            "sheds": registry.sheds,
            "requests_handled": server.requests_handled,
            "requests_shed": server.requests_shed,
            "worker_errors": (server._pool.worker_errors
                              if server._pool else 0),
            "violations": [],
        }
        invoked = record["handlers_invoked"]
        stores = record["drc"]["stores"]
        if invoked != stores:
            record["violations"].append(
                f"handlers_invoked={invoked} != drc stores={stores}"
            )
        if record["drc"]["evictions"]:
            record["violations"].append(
                f"drc evicted {record['drc']['evictions']} entries —"
                f" uniqueness proof lost"
            )
        elif stores != record["drc_entries"]:
            record["violations"].append(
                f"drc stores={stores} != entries={record['drc_entries']}:"
                f" some xid was answered twice"
            )
        if record["worker_errors"]:
            record["violations"].append(
                f"{record['worker_errors']} exceptions escaped into the"
                f" worker pool"
            )
        return record

    def kill(self):
        """Abrupt stop (crash): no drain, in-flight work is abandoned
        and the reply cache is lost."""
        record = self._snapshot("kill")
        self.incarnations.append(record)
        self.server.stop()
        return record

    def drain(self, timeout=5.0):
        """Graceful drain: finish in-flight work, keep answering DRC
        replays and health checks, shed everything else."""
        drained = self.server.drain(timeout)
        record = self._snapshot("drain")
        record["drained_idle"] = drained
        if not drained:
            record["violations"].append(
                "drain timed out with requests still in flight"
            )
        self.incarnations.append(record)
        return record

    def stop(self):
        if self.server is None:
            return None
        record = self._snapshot("stop")
        self.incarnations.append(record)
        self.server.stop()
        self.server = None
        return record


class _TracebackWatch:
    """Captures anything that would have printed a stack trace: uncaught
    thread exceptions and ERROR-level log records from the stack."""

    def __init__(self):
        self.thread_exceptions = []
        self.error_logs = []
        self._prev_hook = None
        self._handler = None

    def __enter__(self):
        self._prev_hook = threading.excepthook
        threading.excepthook = self._on_thread_exception
        watch = self

        class _Capture(logging.Handler):
            def emit(self, record):
                watch.error_logs.append(
                    f"{record.name}: {record.getMessage()}"
                )

        self._handler = _Capture(level=logging.ERROR)
        logging.getLogger("repro").addHandler(self._handler)
        return self

    def _on_thread_exception(self, args):
        self.thread_exceptions.append(
            f"{args.thread.name if args.thread else '?'}:"
            f" {args.exc_type.__name__}: {args.exc_value}"
        )

    def __exit__(self, *exc_info):
        threading.excepthook = self._prev_hook
        logging.getLogger("repro").removeHandler(self._handler)
        return False

    @property
    def escaped(self):
        return len(self.thread_exceptions) + len(self.error_logs)


def _burst_phase(replica, seed, threads=None, calls_per_thread=3):
    """Overload one replica past its queue bound with slow calls.

    Demonstrates load *shedding*: the server answers the overflow with
    SYSTEM_ERR (clients see a typed ``RpcDeniedError`` immediately)
    instead of letting it time out against a silent queue.
    """
    if threads is None:
        # Strictly more concurrency than the server can hold (queue
        # slots + executing workers), or nothing ever overflows.
        threads = QUEUE_DEPTH + WORKERS + 14
    results = []
    lock = threading.Lock()

    def worker(worker_index):
        client = UdpClient("127.0.0.1", replica.port, PROG, VERS,
                           timeout=CALL_BUDGET_S, wait=0.05, jitter=0.0)
        try:
            for i in range(calls_per_thread):
                started = time.perf_counter()
                try:
                    client.call(PROC_SLEEP, worker_index * 100 + i,
                                xdr_args=xdr_u_long, xdr_res=xdr_u_long)
                    outcome = "ok"
                except RpcError as exc:
                    outcome = type(exc).__name__
                except Exception as exc:  # untyped = invariant breach
                    outcome = f"UNTYPED:{type(exc).__name__}"
                elapsed = time.perf_counter() - started
                with lock:
                    results.append((outcome, elapsed))
        finally:
            client.close()

    pool = [threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60.0)
    outcomes = {}
    for outcome, _ in results:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    violations = []
    if len(results) != threads * calls_per_thread:
        violations.append(
            f"burst: {threads * calls_per_thread - len(results)} calls"
            f" never resolved"
        )
    for outcome, elapsed in results:
        if outcome.startswith("UNTYPED"):
            violations.append(f"burst: untyped error {outcome}")
        if elapsed > CALL_BUDGET_S + BUDGET_GRACE_S:
            violations.append(
                f"burst: call took {elapsed:.2f}s > budget"
            )
    return {
        "threads": threads,
        "calls": len(results),
        "outcomes": outcomes,
        "server_sheds": replica.registry.sheds,
        "violations": violations,
    }


def _mux_burst_phase(replica, seed, clients=4, calls_per_client=36):
    """Overload one replica with *pipelined* slow calls.

    The threaded burst needs ~48 threads to hold 144 calls against the
    server; the mux burst holds the same load with 4 sockets, each
    carrying ``calls_per_client`` in-flight xids.  Same invariants:
    every call resolves (value or typed error) within budget, and the
    overflow is answered with sheds, not silence.
    """
    muxes = [
        MuxUdpClient("127.0.0.1", replica.port, PROG, VERS,
                     timeout=CALL_BUDGET_S, wait=0.05, jitter=0.0,
                     max_inflight=calls_per_client)
        for _ in range(clients)
    ]
    results = []
    violations = []
    try:
        pending = []
        for client_index, client in enumerate(muxes):
            for i in range(calls_per_client):
                pending.append(client.call_async(
                    PROC_SLEEP, client_index * 100 + i,
                    xdr_args=xdr_u_long, xdr_res=xdr_u_long,
                ))
        for call in pending:
            try:
                call.result(CALL_BUDGET_S + BUDGET_GRACE_S + 5.0)
                outcome = "ok"
            except RpcError as exc:
                outcome = type(exc).__name__
            except Exception as exc:  # untyped = invariant breach
                outcome = f"UNTYPED:{type(exc).__name__}"
            results.append((outcome, call.stats.elapsed_s))
    finally:
        for client in muxes:
            client.close()
    outcomes = {}
    for outcome, _ in results:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    expected = clients * calls_per_client
    if len(results) != expected:
        violations.append(
            f"mux burst: {expected - len(results)} calls never resolved"
        )
    for outcome, elapsed in results:
        if outcome.startswith("UNTYPED"):
            violations.append(f"mux burst: untyped error {outcome}")
        if elapsed > CALL_BUDGET_S + BUDGET_GRACE_S:
            violations.append(
                f"mux burst: call took {elapsed:.2f}s > budget"
            )
    return {
        "clients": clients,
        "inflight_per_client": calls_per_client,
        "calls": len(results),
        "outcomes": outcomes,
        "server_sheds": replica.registry.sheds,
        "violations": violations,
    }


def _health_of(port, deadline=2.0):
    """Direct health probe of one replica (STATUS_* or an error name)."""
    client = UdpClient("127.0.0.1", port, HEALTH_PROG, HEALTH_VERS,
                       timeout=deadline, wait=0.05, jitter=0.0)
    try:
        return client.call(HEALTH_PROC_STATUS, xdr_res=xdr_u_long)
    except RpcError as exc:
        return type(exc).__name__
    finally:
        client.close()


def run_mux(workload=None, calls=None, seed=None, json_path=MUX_JSON):
    """The chaos soak over the mux stack (CLI: ``chaos_mux``)."""
    return run(workload, calls=calls, seed=seed, json_path=json_path,
               engine="mux")


def run(workload=None, calls=None, seed=None, json_path=DEFAULT_JSON,
        engine="threaded"):
    """Run the chaos soak, print the verdict table, write the JSON
    report, and raise ``AssertionError`` on any invariant violation.

    ``workload`` is accepted (and ignored) for CLI uniformity.
    ``engine`` selects the stack under test: ``"threaded"`` (serial
    clients, threaded servers) or ``"mux"`` (pipelined clients,
    event-loop servers).
    """
    del workload
    if engine not in ("threaded", "mux"):
        raise ValueError(f"unknown engine {engine!r}")
    if calls is None:
        calls = int(os.environ.get("REPRO_CHAOS_CALLS", DEFAULT_CALLS))
    if seed is None:
        seed = int(os.environ.get("REPRO_CHAOS_SEED", DEFAULT_SEED))
    replicas = [Replica(f"r{i}", seed=seed + 1000 * i,
                        engine=engine).start()
                for i in range(REPLICAS)]
    # The chaos schedule, by call index: two abrupt kill/restart
    # cycles on r0 and r1, one graceful drain of r2 that is never
    # lifted (it keeps answering health + DRC replays only).
    events = {
        max(1, int(calls * 0.15)): ("kill", 0),
        max(2, int(calls * 0.30)): ("restart", 0),
        max(3, int(calls * 0.45)): ("kill", 1),
        max(4, int(calls * 0.60)): ("restart", 1),
        max(5, int(calls * 0.75)): ("drain", 2),
    }
    client_plan = FaultPlan(seed=seed + 7, drop=LOSS_RATE,
                            duplicate=DUPLICATE_RATE)
    outcomes = {}
    latencies = []
    violations = []
    event_log = []
    health_after_drain = None
    started_all = time.perf_counter()
    with _TracebackWatch() as watch:
        if engine == "mux":
            burst = _mux_burst_phase(replicas[0], seed)
        else:
            burst = _burst_phase(replicas[0], seed)
        violations.extend(burst["violations"])
        if not burst["server_sheds"]:
            violations.append(
                "burst: overload produced zero sheds — queue bound"
                " not exercised"
            )
        factory = None
        if engine == "mux":
            def factory(host, port, prog, vers, **kwargs):
                return MuxUdpClient(host, port, prog, vers, **kwargs)
        client = FailoverClient(
            [("127.0.0.1", replica.port) for replica in replicas],
            PROG, VERS, transport="udp",
            call_budget_s=CALL_BUDGET_S,
            breaker_threshold=3, breaker_recovery_s=0.3,
            retry_pause_s=0.01, client_factory=factory,
            timeout=0.4, wait=0.01, max_wait=0.1, jitter=0.25,
            retrans_seed=seed, fault_plan=client_plan,
        )
        try:
            for i in range(calls):
                event = events.get(i)
                if event is not None:
                    action, target = event
                    replica = replicas[target]
                    if action == "kill":
                        replica.kill()
                    elif action == "restart":
                        replica.start()
                    elif action == "drain":
                        replica.drain()
                        health_after_drain = _health_of(replica.port)
                    event_log.append(
                        {"call": i, "action": action,
                         "replica": replica.name}
                    )
                call_started = time.perf_counter()
                try:
                    value = client.call(PROC_INC, i, xdr_args=xdr_u_long,
                                        xdr_res=xdr_u_long)
                    outcome = ("ok" if value == (i + 1) & 0xFFFFFFFF
                               else "wrong_value")
                except RpcError as exc:
                    outcome = type(exc).__name__
                except Exception as exc:
                    outcome = f"UNTYPED:{type(exc).__name__}"
                elapsed = time.perf_counter() - call_started
                latencies.append(elapsed)
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
                if outcome.startswith("UNTYPED") or \
                        outcome == "wrong_value":
                    violations.append(f"call {i}: {outcome}")
                if elapsed > CALL_BUDGET_S + BUDGET_GRACE_S:
                    violations.append(
                        f"call {i}: {elapsed:.2f}s exceeded the"
                        f" {CALL_BUDGET_S}s budget"
                    )
            client_stats = client.stats_summary()
        finally:
            client.close()
        for replica in replicas:
            replica.stop()
    elapsed_all = time.perf_counter() - started_all
    if health_after_drain != STATUS_DRAINING:
        violations.append(
            f"drained replica reported health {health_after_drain!r},"
            f" expected STATUS_DRAINING ({STATUS_DRAINING})"
        )
    incarnations = [record for replica in replicas
                    for record in replica.incarnations]
    for record in incarnations:
        violations.extend(
            f"{record['replica']}#{record['incarnation']}: {violation}"
            for violation in record["violations"]
        )
    if watch.escaped:
        violations.extend(
            f"escaped traceback: {entry}"
            for entry in (watch.thread_exceptions + watch.error_logs)
        )
    resolved = sum(outcomes.values())
    if resolved != calls:
        violations.append(f"only {resolved}/{calls} calls resolved")
    passed = not violations
    latencies_sorted = sorted(latencies)

    def percentile(fraction):
        if not latencies_sorted:
            return 0.0
        index = min(int(fraction * len(latencies_sorted)),
                    len(latencies_sorted) - 1)
        return latencies_sorted[index]

    results = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calls": calls,
            "seed": seed,
            "engine": engine,
            "replicas": REPLICAS,
            "loss": LOSS_RATE,
            "duplicate_rate": DUPLICATE_RATE,
            "call_budget_s": CALL_BUDGET_S,
            "elapsed_s": elapsed_all,
        },
        "burst": burst,
        "events": event_log,
        "outcomes": outcomes,
        "latency": {
            "p50_ms": percentile(0.50) * 1e3,
            "p99_ms": percentile(0.99) * 1e3,
            "max_ms": (latencies_sorted[-1] * 1e3
                       if latencies_sorted else 0.0),
        },
        "client": client_stats,
        "health_after_drain": health_after_drain,
        "incarnations": incarnations,
        "escaped_tracebacks": (watch.thread_exceptions
                               + watch.error_logs),
        "violations": violations,
        "passed": passed,
    }
    rows = [
        ("calls resolved", f"{resolved}/{calls}"),
        ("ok", outcomes.get("ok", 0)),
        ("typed errors", resolved - outcomes.get("ok", 0)),
        ("failovers", client_stats["failovers"]),
        ("p50 / p99 / max ms",
         f"{results['latency']['p50_ms']:.1f} /"
         f" {results['latency']['p99_ms']:.1f} /"
         f" {results['latency']['max_ms']:.0f}"),
        ("burst sheds", burst["server_sheds"]),
        ("incarnations checked", len(incarnations)),
        ("escaped tracebacks", watch.escaped),
        ("violations", len(violations)),
        ("verdict", "PASS" if passed else "FAIL"),
    ]
    print(format_table(
        f"Chaos soak ({engine}) — {calls} calls, {REPLICAS} replicas,"
        f" {int(LOSS_RATE * 100)}% loss, 2 kills, 1 drain",
        ("invariant", "value"),
        rows,
        note=f"seed {seed:#x}; per-incarnation proof:"
             f" handlers_invoked == drc stores == drc entries,"
             f" zero evictions",
    ))
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"\n[wrote {json_path}]")
    if not passed:
        for violation in violations[:20]:
            print(f"VIOLATION: {violation}")
        raise AssertionError(
            f"chaos soak failed with {len(violations)} violation(s);"
            f" see {json_path or 'the violations above'}"
        )
    return results
