"""The paper's published numbers (Tables 1–4), used for side-by-side
reporting and shape assertions."""

#: Table 1 — client marshaling performance in ms:
#: n -> (IPX original, IPX specialized, PC original, PC specialized)
TABLE1 = {
    20: (0.047, 0.017, 0.071, 0.063),
    100: (0.20, 0.057, 0.11, 0.069),
    250: (0.49, 0.13, 0.17, 0.08),
    500: (0.99, 0.30, 0.29, 0.11),
    1000: (1.96, 0.62, 0.51, 0.17),
    2000: (3.93, 1.38, 0.97, 0.29),
}

#: Table 1 speedups as printed in the paper (rounded to 0.05)
TABLE1_SPEEDUPS = {
    20: (2.75, 1.20),
    100: (3.50, 1.60),
    250: (3.75, 2.10),
    500: (3.30, 2.60),
    1000: (3.15, 3.00),
    2000: (2.85, 3.35),
}

#: Table 2 — round trip performance in ms
TABLE2 = {
    20: (2.32, 2.13, 0.69, 0.66),
    100: (3.32, 2.74, 0.99, 0.87),
    250: (5.02, 3.60, 1.58, 1.25),
    500: (7.86, 5.23, 2.62, 2.01),
    1000: (13.58, 8.82, 4.26, 3.17),
    2000: (25.24, 16.35, 7.61, 5.68),
}

TABLE2_SPEEDUPS = {
    20: (1.10, 1.05),
    100: (1.20, 1.15),
    250: (1.40, 1.25),
    500: (1.50, 1.30),
    1000: (1.55, 1.35),
    2000: (1.55, 1.35),
}

#: Table 3 — SunOS client binary sizes in bytes
TABLE3_GENERIC = 20004
TABLE3_SPECIALIZED = {
    20: 24340,
    100: 27540,
    250: 33540,
    500: 43540,
    1000: 63540,
    2000: 111348,
}

#: Table 4 — PC/Linux marshaling with 250-element partial unroll:
#: n -> (original ms, fully specialized ms, full speedup,
#:       250-unrolled ms, 250-unrolled speedup)
TABLE4 = {
    500: (0.29, 0.11, 2.65, 0.108, 2.70),
    1000: (0.51, 0.17, 3.00, 0.15, 3.40),
    2000: (0.97, 0.29, 3.35, 0.25, 3.90),
}

TABLE4_FACTOR = 250
