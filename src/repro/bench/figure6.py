"""Figure 6 — the six cross-platform comparison panels.

1. client marshaling time, original code (both platforms)
2. client marshaling time, specialized code
3. RPC round-trip time, original code
4. RPC round-trip time, specialized code
5. marshaling speedup ratio
6. round-trip speedup ratio
"""

from repro.bench import marshaling, roundtrip
from repro.bench.report import format_series
from repro.bench.workloads import ARRAY_SIZES, IntArrayWorkload


def compute(workload=None, sizes=ARRAY_SIZES):
    workload = workload or IntArrayWorkload()
    marshal_rows = marshaling.compute(workload, sizes)
    rt_rows = roundtrip.compute(workload, sizes)
    xs = [row["n"] for row in marshal_rows]
    panels = {
        "panel1_marshal_original_ms": {
            "IPX/SunOS": [r["ipx_original_ms"] for r in marshal_rows],
            "PC/Linux": [r["pc_original_ms"] for r in marshal_rows],
        },
        "panel2_marshal_specialized_ms": {
            "IPX/SunOS": [r["ipx_specialized_ms"] for r in marshal_rows],
            "PC/Linux": [r["pc_specialized_ms"] for r in marshal_rows],
        },
        "panel3_roundtrip_original_ms": {
            "IPX/ATM": [r["ipx_original_ms"] for r in rt_rows],
            "PC/Ethernet": [r["pc_original_ms"] for r in rt_rows],
        },
        "panel4_roundtrip_specialized_ms": {
            "IPX/ATM": [r["ipx_specialized_ms"] for r in rt_rows],
            "PC/Ethernet": [r["pc_specialized_ms"] for r in rt_rows],
        },
        "panel5_marshal_speedup": {
            "IPX/SunOS": [r["ipx_speedup"] for r in marshal_rows],
            "PC/Linux": [r["pc_speedup"] for r in marshal_rows],
        },
        "panel6_roundtrip_speedup": {
            "IPX/ATM": [r["ipx_speedup"] for r in rt_rows],
            "PC/Ethernet": [r["pc_speedup"] for r in rt_rows],
        },
    }
    return xs, panels


_TITLES = {
    "panel1_marshal_original_ms":
        "Figure 6-1: client marshaling time (ms) — original code",
    "panel2_marshal_specialized_ms":
        "Figure 6-2: client marshaling time (ms) — specialized code",
    "panel3_roundtrip_original_ms":
        "Figure 6-3: RPC round trip time (ms) — original code",
    "panel4_roundtrip_specialized_ms":
        "Figure 6-4: RPC round trip time (ms) — specialized code",
    "panel5_marshal_speedup":
        "Figure 6-5: speedup ratio for client marshaling",
    "panel6_roundtrip_speedup":
        "Figure 6-6: speedup ratio for RPC round trip",
}


def run(workload=None, sizes=ARRAY_SIZES):
    xs, panels = compute(workload, sizes)
    for key, series in panels.items():
        print(format_series(_TITLES[key], "n", xs, series))
        print()
    return xs, panels
