"""Ablations of the specializer refinements DESIGN.md calls out.

Each ablation disables one of the paper's §4 refinements (or the unroll
policy) and measures the specialized client paths on the PC model:

* ``context`` — scalar context sensitivity off: static scalar arguments
  are widened to dynamic at call boundaries, so the static procedure-id
  marshaling opportunity (§4) is lost;
* ``partially_static`` — partially-static structures off: any field of
  a residually-rooted struct is stored dynamically, so the ``x_handy``
  overflow accounting survives into the residual code;
* ``flow`` — flow sensitivity off: the ``inlen = expected_inlen``
  re-binding of §6.2 no longer recovers a static length, so the reply
  decode stays generic;
* ``static_returns`` — §3.3 off: outlined decode helpers keep returning
  their (constant) statuses and callers keep testing them;
* ``unroll`` — loop unrolling off: marshaling loops are residualized.
"""

from repro.bench.report import format_table
from repro.bench.workloads import (
    BUFSIZE,
    IntArrayWorkload,
    PROG_NUMBER,
    VERS_NUMBER,
    reply_bytes,
)
from repro.simulator import pc_linux
from repro.tempo import Dyn, DynPtr, Known, PtrTo, StructOf, specialize
from repro.tempo.specializer import Options

ABLATIONS = {
    "full": Options(),
    "context": Options(context_sensitive=False),
    "partially_static": Options(partially_static=False),
    "flow": Options(flow_sensitive=False),
    "static_returns": Options(static_returns=False),
    "unroll": Options(max_unroll=0),
}


def _marshal_with(workload, n, options):
    return specialize(
        workload.program,
        "sendrecv_marshal",
        {
            "clnt": PtrTo(
                StructOf(
                    cl_prog=Known(PROG_NUMBER), cl_vers=Known(VERS_NUMBER)
                )
            ),
            "xid": Dyn(),
            "argsp": PtrTo(StructOf(vals_len=Known(n))),
            "outbuf": DynPtr(),
            "outsize": Known(BUFSIZE),
            "expected_vals_len": Known(n),
        },
        options=options,
        typeinfo=workload.typeinfo,
    )


def _recv_with(workload, n, options):
    return specialize(
        workload.program,
        "sendrecv_recv",
        {
            "inbuf": DynPtr(),
            "inlen": Known(reply_bytes(n)),
            "xid": Dyn(),
            "resp": PtrTo(StructOf()),
            "expected_vals_len": Known(n),
        },
        options=options,
        typeinfo=workload.typeinfo,
    )


def compute(workload=None, n=500):
    """Measure each ablation's marshal and reply-decode paths (PC model,
    plus raw event counts)."""
    workload = workload or IntArrayWorkload()
    rows = []
    # Build the reply bytes once with the generic path.
    _outlen, request, _t = workload.generic_marshal_trace(n)
    reply, _t = workload.generic_server_reply(n, request)
    for name, options in ABLATIONS.items():
        marshal = _marshal_with(workload, n, options)
        params = [p for _t2, p in marshal.residual_params]
        outlen, wire, marshal_trace = workload.run_marshal(
            marshal.program, marshal.entry_name, params, n
        )
        assert outlen, f"{name}: marshal failed"
        assert wire == request, f"{name}: wire data changed"
        marshal_time = pc_linux().steady_state_time(marshal_trace)
        recv = _recv_with(workload, n, options)
        recv_trace = _run_recv(workload, recv, n, reply)
        recv_time = pc_linux().steady_state_time(recv_trace)
        rows.append(
            {
                "ablation": name,
                "marshal_events": len(marshal_trace),
                "marshal_ms": marshal_time.ms(),
                "recv_events": len(recv_trace),
                "recv_ms": recv_time.ms(),
                "residual_bytes": marshal.source_size(),
            }
        )
    return rows


def _run_recv(workload, result, n, reply):
    from repro.minic import values as rv
    from repro.minic.cost import Trace
    from repro.minic.interp import Interpreter

    interp = Interpreter(result.program)
    inbuf = interp.make_buffer(BUFSIZE, "inbuf")
    inbuf.data[:len(reply)] = reply
    resp = interp.make_struct("intarr")
    values = {
        "inbuf": rv.BufPtr(inbuf, 0, 1),
        "inlen": len(reply),
        "xid": 0x1234ABCD,
        "resp": interp.ptr_to(resp),
        "expected_vals_len": n,
    }
    params = [p for _t, p in result.residual_params]
    trace = Trace()
    status = interp.call(
        result.entry_name, [values[name] for name in params], trace=trace
    )
    assert status == 1, "reply decode failed"
    want = [(x + 1) for x in workload._test_data(n)]
    got = resp.field("vals").value.values()[:n]
    assert got == want, "reply payload mismatch"
    return trace


def render(rows):
    base = rows[0]
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                row["ablation"],
                row["marshal_events"],
                round(row["marshal_ms"], 3),
                round(row["marshal_ms"] / base["marshal_ms"], 2),
                row["recv_events"],
                round(row["recv_ms"], 3),
                round(row["recv_ms"] / base["recv_ms"], 2),
                row["residual_bytes"],
            )
        )
    return format_table(
        "Ablations (n=500, PC/Linux model): cost of disabling each"
        " specializer refinement",
        ("ablation", "m-events", "m-ms", "vs full", "r-events", "r-ms",
         "vs full", "resid B"),
        table_rows,
    )


def run(workload=None, n=500):
    rows = compute(workload, n)
    print(render(rows))
    return rows
