"""The paper's benchmark workload.

§5: "The test program, which utilizes remote procedure calls, emulates
the behavior of parallel programs that exchange large chunks of
structured data. [...] The client test program loops on a simple RPC
which sends and receives an array of integers."

:class:`IntArrayWorkload` builds everything both measurement modes
need: the generic MiniC program (rpcgen output over the Sun RPC
micro-layers), the Tempo-specialized variants per array size, the
interpreter harnesses that execute either and record cost traces, and
the request/reply sizes for the wire model.
"""

import functools

from repro.minic import values as rv
from repro.minic.cost import Trace
from repro.minic.interp import Interpreter
from repro.minic.parser import parse_program
from repro.minic.typecheck import typecheck_program
from repro.rpcgen.codegen_minic import generate_minic
from repro.rpcgen.idl_parser import parse_idl
from repro.tempo import Dyn, DynPtr, Known, PtrTo, StructOf, specialize
from repro.tempo.unroll import reroll_program

#: the paper's array sizes (4-byte integers)
ARRAY_SIZES = (20, 100, 250, 500, 1000, 2000)

MAXN = 2000
PROG_NUMBER = 0x20000321
VERS_NUMBER = 1
BUFSIZE = 8800

WORKLOAD_IDL = f"""
const MAXN = {MAXN};

struct intarr {{
    int vals<MAXN>;
}};

program XCHG_PROG {{
    version XCHG_VERS {{
        intarr SENDRECV(intarr) = 1;
    }} = {VERS_NUMBER};
}} = {PROG_NUMBER};
"""

#: the remote procedure: echo the array back incremented (so replies
#: are data-dependent and decode results are checkable)
WORKLOAD_IMPL = """
void sendrecv_impl(struct intarr *args, struct intarr *res)
{
    int i;
    res->vals_len = args->vals_len;
    for (i = 0; i < args->vals_len; i++)
        res->vals[i] = args->vals[i] + 1;
}
"""

#: call message: 10 header longs + length + elements
def request_bytes(n):
    return (10 + 1 + n) * 4


#: success reply: 6 header longs + length + elements
def reply_bytes(n):
    return (6 + 1 + n) * 4


class IntArrayWorkload:
    """Builds and runs the generic and specialized RPC code paths."""

    def __init__(self):
        self.interface = parse_idl(WORKLOAD_IDL)
        self.source = generate_minic(
            self.interface, impl_sources=[WORKLOAD_IMPL]
        )
        self.program = parse_program(self.source)
        self.typeinfo = typecheck_program(self.program)

    # ------------------------------------------------------------------
    # specializations (cached per array size)

    @functools.lru_cache(maxsize=None)
    def specialized_marshal(self, n, options=None):
        """Residual of the client marshaling path for arrays of ``n``."""
        return specialize(
            self.program,
            "sendrecv_marshal",
            {
                "clnt": PtrTo(
                    StructOf(
                        cl_prog=Known(PROG_NUMBER),
                        cl_vers=Known(VERS_NUMBER),
                    )
                ),
                "xid": Dyn(),
                "argsp": PtrTo(StructOf(vals_len=Known(n))),
                "outbuf": DynPtr(),
                "outsize": Known(BUFSIZE),
                "expected_vals_len": Known(n),
            },
            options=options,
            typeinfo=self.typeinfo,
        )

    @functools.lru_cache(maxsize=None)
    def specialized_call(self, n, options=None):
        """Residual of the full client call (marshal + net + decode)."""
        return specialize(
            self.program,
            "sendrecv_call",
            {
                "clnt": PtrTo(
                    StructOf(
                        cl_prog=Known(PROG_NUMBER),
                        cl_vers=Known(VERS_NUMBER),
                    )
                ),
                "xid": Dyn(),
                "argsp": PtrTo(StructOf(vals_len=Known(n))),
                "resp": PtrTo(StructOf()),
                "outbuf": DynPtr(),
                "outsize": Known(BUFSIZE),
                "inbuf": DynPtr(),
                "insize": Known(BUFSIZE),
                "expected_inlen": Known(reply_bytes(n)),
                "expected_vals_len": Known(n),
                "expected_vals_len_res": Known(n),
            },
            options=options,
            typeinfo=self.typeinfo,
        )

    @functools.lru_cache(maxsize=None)
    def specialized_server(self, n, options=None):
        """Residual of the server dispatch path."""
        return specialize(
            self.program,
            "svc_handle_xchg_prog_1",
            {
                "inbuf": DynPtr(),
                "inlen": Dyn(),
                "outbuf": DynPtr(),
                "outsize": Known(BUFSIZE),
                "expected_inlen": Known(request_bytes(n)),
                "sendrecv_expected_vals_len": Known(n),
                "sendrecv_expected_vals_len_res": Known(n),
            },
            options=options,
            typeinfo=self.typeinfo,
        )

    def rerolled_marshal(self, n, factor):
        """Table 4: the specialized marshal with the unrolled run
        re-rolled into chunks of ``factor`` elements (the paper's manual
        250-element transformation, automated)."""
        result = self.specialized_marshal(n)
        # Work on a fresh specialization so the cached one stays fully
        # unrolled.
        fresh = specialize(
            self.program,
            "sendrecv_marshal",
            {
                "clnt": PtrTo(
                    StructOf(
                        cl_prog=Known(PROG_NUMBER),
                        cl_vers=Known(VERS_NUMBER),
                    )
                ),
                "xid": Dyn(),
                "argsp": PtrTo(StructOf(vals_len=Known(n))),
                "outbuf": DynPtr(),
                "outsize": Known(BUFSIZE),
                "expected_vals_len": Known(n),
            },
            typeinfo=self.typeinfo,
        )
        reroll_program(fresh.program, factor, entry=fresh.entry_name)
        del result
        return fresh

    # ------------------------------------------------------------------
    # execution harnesses (trace-recording interpreter runs)

    @staticmethod
    def _test_data(n):
        return [(17 * i + 3) & 0x7FFFFFFF for i in range(n)]

    def _client_values(self, interp, n, data, xid=0x1234ABCD):
        clnt = interp.make_struct("CLIENT")
        clnt.field("cl_prog").value = PROG_NUMBER
        clnt.field("cl_vers").value = VERS_NUMBER
        args = interp.make_struct("intarr")
        args.field("vals_len").value = n
        args.field("vals").value.set_values(data)
        resp = interp.make_struct("intarr")
        outbuf = interp.make_buffer(BUFSIZE, "outbuf")
        inbuf = interp.make_buffer(BUFSIZE, "inbuf")
        return {
            "clnt": interp.ptr_to(clnt),
            "xid": xid,
            "argsp": interp.ptr_to(args),
            "resp": interp.ptr_to(resp),
            "outbuf": rv.BufPtr(outbuf, 0, 1),
            "outsize": BUFSIZE,
            "inbuf": rv.BufPtr(inbuf, 0, 1),
            "insize": BUFSIZE,
            "expected_inlen": reply_bytes(n),
            "expected_vals_len": n,
            "expected_vals_len_res": n,
            "_outbuf": outbuf,
            "_inbuf": inbuf,
            "_resp": resp,
        }

    GENERIC_MARSHAL_PARAMS = (
        "clnt", "xid", "argsp", "outbuf", "outsize", "expected_vals_len",
    )
    GENERIC_CALL_PARAMS = (
        "clnt", "xid", "argsp", "resp", "outbuf", "outsize", "inbuf",
        "insize", "expected_inlen", "expected_vals_len",
        "expected_vals_len_res",
    )
    GENERIC_SERVER_PARAMS = (
        "inbuf", "inlen", "outbuf", "outsize", "expected_inlen",
        "sendrecv_expected_vals_len", "sendrecv_expected_vals_len_res",
    )

    def run_marshal(self, program, entry, params, n, trace=None):
        """Run a marshal entry; returns (outlen, request bytes, trace)."""
        interp = Interpreter(program)
        values = self._client_values(interp, n, self._test_data(n))
        trace = trace if trace is not None else Trace()
        outlen = interp.call(
            entry, [values[name] for name in params], trace=trace
        )
        return outlen, bytes(values["_outbuf"].data[:outlen]), trace

    def generic_marshal_trace(self, n):
        return self.run_marshal(
            self.program, "sendrecv_marshal", self.GENERIC_MARSHAL_PARAMS, n
        )

    def specialized_marshal_trace(self, n, result=None):
        result = result or self.specialized_marshal(n)
        params = [name for _t, name in result.residual_params]
        return self.run_marshal(result.program, result.entry_name, params, n)

    def run_server(self, program, entry, params, n, request, trace=None):
        """Run a server entry on request bytes; returns (reply, trace)."""
        interp = Interpreter(program)
        inbuf = interp.make_buffer(BUFSIZE, "srv_in")
        outbuf = interp.make_buffer(BUFSIZE, "srv_out")
        inbuf.data[:len(request)] = request
        values = {
            "inbuf": rv.BufPtr(inbuf, 0, 1),
            "inlen": len(request),
            "outbuf": rv.BufPtr(outbuf, 0, 1),
            "outsize": BUFSIZE,
            "expected_inlen": request_bytes(n),
            "sendrecv_expected_vals_len": n,
            "sendrecv_expected_vals_len_res": n,
        }
        trace = trace if trace is not None else Trace()
        outlen = interp.call(
            entry, [values[name] for name in params], trace=trace
        )
        return bytes(outbuf.data[:outlen]), trace

    def generic_server_reply(self, n, request):
        return self.run_server(
            self.program, "svc_handle_xchg_prog_1",
            self.GENERIC_SERVER_PARAMS, n, request,
        )

    def specialized_server_reply(self, n, request, result=None):
        result = result or self.specialized_server(n)
        params = [name for _t, name in result.residual_params]
        return self.run_server(
            result.program, result.entry_name, params, n, request
        )

    def run_call(self, program, entry, params, n, network, trace=None):
        """Run a full client call with a loopback ``network`` callable;
        returns (status, decoded values, trace)."""
        interp = Interpreter(program)
        interp.network = network
        values = self._client_values(interp, n, self._test_data(n))
        trace = trace if trace is not None else Trace()
        status = interp.call(
            entry, [values[name] for name in params], trace=trace
        )
        resp = values["_resp"]
        decoded = resp.field("vals").value.values()[:n]
        return status, decoded, trace

    def generic_network(self, n):
        """A loopback network running the generic server (untraced)."""

        def network(request):
            reply, _trace = self.generic_server_reply(n, request)
            return reply

        return network

    def specialized_network(self, n):
        server = self.specialized_server(n)
        params = [name for _t, name in server.residual_params]

        def network(request):
            reply, _trace = self.run_server(
                server.program, server.entry_name, params, n, request
            )
            return reply

        return network

    # -- convenience: matched traces for the round-trip model ---------------

    def roundtrip_traces(self, n, specialized):
        """(client trace, server trace, request size, reply size) for
        one complete call in either mode."""
        if specialized:
            marshal = self.specialized_marshal(n)
            _outlen, request, _t = self.specialized_marshal_trace(n, marshal)
            _reply, server_trace = self.specialized_server_reply(n, request)
            call = self.specialized_call(n)
            params = [name for _t2, name in call.residual_params]
            status, decoded, client_trace = self.run_call(
                call.program, call.entry_name, params, n,
                self.specialized_network(n),
            )
        else:
            _outlen, request, _t = self.generic_marshal_trace(n)
            _reply, server_trace = self.generic_server_reply(n, request)
            status, decoded, client_trace = self.run_call(
                self.program, "sendrecv_call", self.GENERIC_CALL_PARAMS, n,
                self.generic_network(n),
            )
        expected = [(v + 1) & 0xFFFFFFFF & 0x7FFFFFFF or v + 1 for v in []]
        del expected
        assert status == 1, f"round trip failed (n={n})"
        want = [(x + 1) for x in self._test_data(n)]
        assert decoded == want, f"bad echo payload (n={n})"
        return client_trace, server_trace, request_bytes(n), reply_bytes(n)
