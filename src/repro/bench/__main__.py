"""Allow ``python -m repro.bench <experiment>``."""

import sys

from repro.bench.cli import main

sys.exit(main())
