"""``live`` report — generic vs. fast-path runtime on this machine.

Unlike the table/figure reports (which reproduce the paper's 1997
numbers in the simulator), this one times the *live* Python RPC stack:
the generic path re-encoding the call header and allocating buffers on
every call, against the runtime fast path (pre-serialized header
templates, pooled exact-size buffers, zero-copy decode — see
:mod:`repro.rpc.fastpath`).  No Tempo run is needed; both paths use
the generic XDR body marshalers, so the delta isolates exactly the
staged constant work.

Numbers are emitted as a table and as JSON (``BENCH_live.json`` by
default) so successive PRs can track the trajectory.
"""

import contextlib
import json
import platform
import time

from repro.bench.report import format_table, ratio
from repro.bench.workloads import PROG_NUMBER, VERS_NUMBER, WORKLOAD_IDL
from repro.rpc import SvcRegistry, UdpClient, UdpServer
from repro.rpc.client import RpcClient
from repro.rpcgen.codegen_py import load_python
from repro.rpcgen.idl_parser import parse_idl

DEFAULT_SIZES = (20, 250, 2000)
DEFAULT_JSON = "BENCH_live.json"


def _best_us(fn, repeats=5, number=200):
    """Best-of-``repeats`` mean microseconds per call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed / number)
    return best * 1e6


def _stubs():
    return load_python(parse_idl(WORKLOAD_IDL), "live_bench_stubs")


def marshal_times(stubs, n, repeats=5, number=200):
    """(generic_us, fastpath_us) for building one call message."""
    args = stubs.intarr(vals=list(range(n)))
    generic = RpcClient(PROG_NUMBER, VERS_NUMBER)
    fast = RpcClient(PROG_NUMBER, VERS_NUMBER).enable_fastpath()
    wire = generic.build_call(7, 1, args, stubs.xdr_intarr)
    assert fast.build_call(7, 1, args, stubs.xdr_intarr) == wire
    generic_us = _best_us(
        lambda: generic.build_call(7, 1, args, stubs.xdr_intarr),
        repeats, number,
    )
    fast_us = _best_us(
        lambda: fast.build_call(7, 1, args, stubs.xdr_intarr),
        repeats, number,
    )
    return generic_us, fast_us


def _registry(stubs, fastpath):
    registry = SvcRegistry(fastpath=fastpath)

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XCHG_PROG_1(registry, Impl())
    return registry


def roundtrip_times(stubs, n, repeats=3, number=200):
    """(generic_us, fastpath_us, fastpath_allocs) for one loopback UDP
    round trip.  ``fastpath_allocs`` counts client buffer-pool
    allocations over the timed calls — 0 means the steady state is
    allocation-free.

    Both endpoints stay up for the whole measurement and the repeats
    are interleaved generic/fastpath, so a noisy scheduling burst hits
    both modes instead of skewing the ratio."""
    args = stubs.intarr(vals=list(range(n)))
    want = [v + 1 for v in range(n)]

    with contextlib.ExitStack() as stack:
        clients = {}
        for fastpath in (False, True):
            registry = _registry(stubs, fastpath)
            server = stack.enter_context(
                UdpServer(registry, fastpath=fastpath)
            )
            transport = stack.enter_context(
                UdpClient("127.0.0.1", server.port, PROG_NUMBER,
                          VERS_NUMBER, fastpath=fastpath)
            )
            client = stubs.XCHG_PROG_1_client(transport)
            assert client.SENDRECV(args).vals == want
            clients[fastpath] = (transport, client)
        fast_transport = clients[True][0]
        allocs_before = (fast_transport._send_pool.allocations
                         + fast_transport._recv_pool.allocations)
        best = {False: float("inf"), True: float("inf")}
        for _ in range(repeats):
            for fastpath in (False, True):
                call = clients[fastpath][1].SENDRECV
                started = time.perf_counter()
                for _ in range(number):
                    call(args)
                elapsed = time.perf_counter() - started
                best[fastpath] = min(best[fastpath], elapsed / number)
        allocs = (fast_transport._send_pool.allocations
                  + fast_transport._recv_pool.allocations
                  - allocs_before)
    return best[False] * 1e6, best[True] * 1e6, allocs


def run(workload=None, sizes=DEFAULT_SIZES, repeats=5, number=200,
        json_path=DEFAULT_JSON):
    """Print the generic-vs-fastpath table and write the JSON report.

    ``workload`` is accepted (and ignored) for CLI uniformity with the
    simulator reports — the live report needs no Tempo run.
    """
    del workload
    stubs = _stubs()
    results = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
            "number": number,
        },
        "marshal": {},
        "roundtrip": {},
    }
    marshal_rows = []
    roundtrip_rows = []
    for n in sizes:
        generic_us, fast_us = marshal_times(stubs, n, repeats, number)
        speedup = ratio(generic_us, fast_us)
        results["marshal"][str(n)] = {
            "generic_us": generic_us,
            "fastpath_us": fast_us,
            "speedup": speedup,
        }
        marshal_rows.append((n, generic_us, fast_us, speedup))
    for n in sizes:
        generic_us, fast_us, allocs = roundtrip_times(
            stubs, n, max(3, repeats - 2), number
        )
        speedup = ratio(generic_us, fast_us)
        results["roundtrip"][str(n)] = {
            "generic_us": generic_us,
            "fastpath_us": fast_us,
            "speedup": speedup,
            "fastpath_pool_allocations": allocs,
        }
        roundtrip_rows.append((n, generic_us, fast_us, speedup))
    print(format_table(
        "Live marshal — generic vs fast path (us/call)",
        ("n", "generic", "fastpath", "speedup"),
        marshal_rows,
    ))
    print()
    print(format_table(
        "Live UDP loopback round trip — generic vs fast path (us/call)",
        ("n", "generic", "fastpath", "speedup"),
        roundtrip_rows,
        note="fast path: header templates + pooled exact-size buffers"
             " + zero-copy decode (repro.rpc.fastpath)",
    ))
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"\n[wrote {json_path}]")
    return results
