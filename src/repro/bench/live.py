"""``live`` report — generic vs. fast-path runtime on this machine.

Unlike the table/figure reports (which reproduce the paper's 1997
numbers in the simulator), this one times the *live* Python RPC stack:
the generic path re-encoding the call header and allocating buffers on
every call, against the runtime fast path (pre-serialized header
templates, pooled exact-size buffers, zero-copy decode — see
:mod:`repro.rpc.fastpath`).  No Tempo run is needed; both paths use
the generic XDR body marshalers, so the delta isolates exactly the
staged constant work.

Numbers are emitted as a table and as JSON (``BENCH_live.json`` by
default) so successive PRs can track the trajectory.
"""

import contextlib
import json
import platform
import time

from repro import obs
from repro.bench.report import format_table, ratio
from repro.bench.workloads import PROG_NUMBER, VERS_NUMBER, WORKLOAD_IDL
from repro.rpc import SvcRegistry, UdpClient, UdpServer
from repro.rpc.client import RpcClient
from repro.rpcgen.codegen_py import load_python
from repro.rpcgen.idl_parser import parse_idl

DEFAULT_SIZES = (20, 250, 2000)
DEFAULT_JSON = "BENCH_live.json"

#: ``if obs.enabled`` guard sites executed by one fast-path loopback
#: round trip with instrumentation off, counted by inspection of the
#: instrumented call path: client call start + ``_finish_call`` +
#: send/recv buffer-pool acquires (4); server datagram counter +
#: dispatch selector + fastpath-header counter + DRC get/put + outcome
#: verdict + reply-pool acquire (7).  Rounded up one for headroom.
OBS_GUARDS_PER_CALL = 12

#: documented bound (docs/OBSERVABILITY.md): the disabled
#: instrumentation may cost at most this fraction of a loopback round
#: trip.  CI asserts ``obs.overhead_pct`` from the JSON report stays
#: under it.
OBS_OVERHEAD_BOUND_PCT = 2.0


def _best_us(fn, repeats=5, number=200):
    """Best-of-``repeats`` mean microseconds per call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed / number)
    return best * 1e6


def _stubs():
    return load_python(parse_idl(WORKLOAD_IDL), "live_bench_stubs")


def marshal_times(stubs, n, repeats=5, number=200):
    """(generic_us, fastpath_us) for building one call message."""
    args = stubs.intarr(vals=list(range(n)))
    generic = RpcClient(PROG_NUMBER, VERS_NUMBER)
    fast = RpcClient(PROG_NUMBER, VERS_NUMBER).enable_fastpath()
    wire = generic.build_call(7, 1, args, stubs.xdr_intarr)
    assert fast.build_call(7, 1, args, stubs.xdr_intarr) == wire
    generic_us = _best_us(
        lambda: generic.build_call(7, 1, args, stubs.xdr_intarr),
        repeats, number,
    )
    fast_us = _best_us(
        lambda: fast.build_call(7, 1, args, stubs.xdr_intarr),
        repeats, number,
    )
    return generic_us, fast_us


def _registry(stubs, fastpath):
    registry = SvcRegistry(fastpath=fastpath)

    class Impl:
        def SENDRECV(self, args):
            return stubs.intarr(vals=[v + 1 for v in args.vals])

    stubs.register_XCHG_PROG_1(registry, Impl())
    return registry


def roundtrip_times(stubs, n, repeats=3, number=200):
    """(generic_us, fastpath_us, fastpath_allocs) for one loopback UDP
    round trip.  ``fastpath_allocs`` counts client buffer-pool
    allocations over the timed calls — 0 means the steady state is
    allocation-free.

    Both endpoints stay up for the whole measurement and the repeats
    are interleaved generic/fastpath, so a noisy scheduling burst hits
    both modes instead of skewing the ratio."""
    args = stubs.intarr(vals=list(range(n)))
    want = [v + 1 for v in range(n)]

    with contextlib.ExitStack() as stack:
        clients = {}
        for fastpath in (False, True):
            registry = _registry(stubs, fastpath)
            server = stack.enter_context(
                UdpServer(registry, fastpath=fastpath)
            )
            transport = stack.enter_context(
                UdpClient("127.0.0.1", server.port, PROG_NUMBER,
                          VERS_NUMBER, fastpath=fastpath)
            )
            client = stubs.XCHG_PROG_1_client(transport)
            assert client.SENDRECV(args).vals == want
            clients[fastpath] = (transport, client)
        fast_transport = clients[True][0]
        allocs_before = (fast_transport._send_pool.allocations
                         + fast_transport._recv_pool.allocations)
        best = {False: float("inf"), True: float("inf")}
        for _ in range(repeats):
            for fastpath in (False, True):
                call = clients[fastpath][1].SENDRECV
                started = time.perf_counter()
                for _ in range(number):
                    call(args)
                elapsed = time.perf_counter() - started
                best[fastpath] = min(best[fastpath], elapsed / number)
        allocs = (fast_transport._send_pool.allocations
                  + fast_transport._recv_pool.allocations
                  - allocs_before)
    return best[False] * 1e6, best[True] * 1e6, allocs


def guard_cost_ns(number=200000, repeats=5):
    """Best-of-``repeats`` per-iteration cost of the disabled
    ``if obs.enabled`` guard, in nanoseconds.

    Times a tight loop of the exact test every instrumented hot-path
    site performs.  The loop overhead is included, so this
    *overestimates* the true guard cost — which keeps the derived
    overhead figure conservative.
    """
    flag = obs
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(number):
            if flag.enabled:
                pass
        best = min(best, time.perf_counter() - started)
    return best / number * 1e9


def obs_overhead(stubs, n=64, repeats=3, number=200):
    """Measure what observability costs a fast-path round trip.

    The headline number is deterministic, not differential: there is
    no uninstrumented build to diff against, so the disabled cost is
    modeled as ``guard_ns × OBS_GUARDS_PER_CALL`` against a measured
    disabled round trip (``overhead_pct``).  The A/B figures —
    the same loopback call timed with obs off, with metrics on, and
    with tracing into a :class:`~repro.obs.trace.MemorySink` — are
    informational: they show what *enabling* costs, which is allowed
    to be much more than 2%.
    """
    prev_enabled, prev_sinks = obs.enabled, obs.tracer.sinks
    obs.enabled, obs.tracer.sinks = False, []
    try:
        guard_ns = guard_cost_ns()
        registry = _registry(stubs, fastpath=True)
        args = stubs.intarr(vals=list(range(n)))
        roundtrip_us = {}
        with contextlib.ExitStack() as stack:
            server = stack.enter_context(
                UdpServer(registry, fastpath=True)
            )
            transport = stack.enter_context(
                UdpClient("127.0.0.1", server.port, PROG_NUMBER,
                          VERS_NUMBER, fastpath=True)
            )
            client = stubs.XCHG_PROG_1_client(transport)
            client.SENDRECV(args)  # warm templates and pools
            memory_sink = obs.MemorySink()
            modes = (
                ("disabled", False, False),
                ("metrics", True, False),
                ("tracing", True, True),
            )
            for name, enabled, tracing in modes:
                obs.enabled = enabled
                obs.tracer.sinks = [memory_sink] if tracing else []
                roundtrip_us[name] = _best_us(
                    lambda: client.SENDRECV(args), repeats, number
                )
                memory_sink.clear()
            obs.enabled, obs.tracer.sinks = False, []
        guarded_ns = guard_ns * OBS_GUARDS_PER_CALL
        overhead_pct = guarded_ns / (roundtrip_us["disabled"] * 1e3) * 100
        return {
            "guard_ns": guard_ns,
            "guards_per_call": OBS_GUARDS_PER_CALL,
            "guarded_ns_per_call": guarded_ns,
            "overhead_pct": overhead_pct,
            "overhead_bound_pct": OBS_OVERHEAD_BOUND_PCT,
            "roundtrip_us": roundtrip_us,
            "n": n,
        }
    finally:
        obs.enabled, obs.tracer.sinks = prev_enabled, prev_sinks


def run(workload=None, sizes=DEFAULT_SIZES, repeats=5, number=200,
        json_path=DEFAULT_JSON):
    """Print the generic-vs-fastpath table and write the JSON report.

    ``workload`` is accepted (and ignored) for CLI uniformity with the
    simulator reports — the live report needs no Tempo run.
    """
    del workload
    stubs = _stubs()
    results = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
            "number": number,
        },
        "marshal": {},
        "roundtrip": {},
    }
    marshal_rows = []
    roundtrip_rows = []
    for n in sizes:
        generic_us, fast_us = marshal_times(stubs, n, repeats, number)
        speedup = ratio(generic_us, fast_us)
        results["marshal"][str(n)] = {
            "generic_us": generic_us,
            "fastpath_us": fast_us,
            "speedup": speedup,
        }
        marshal_rows.append((n, generic_us, fast_us, speedup))
    for n in sizes:
        generic_us, fast_us, allocs = roundtrip_times(
            stubs, n, max(3, repeats - 2), number
        )
        speedup = ratio(generic_us, fast_us)
        results["roundtrip"][str(n)] = {
            "generic_us": generic_us,
            "fastpath_us": fast_us,
            "speedup": speedup,
            "fastpath_pool_allocations": allocs,
        }
        roundtrip_rows.append((n, generic_us, fast_us, speedup))
    overhead = obs_overhead(stubs, repeats=max(3, repeats - 2),
                            number=number)
    results["obs"] = overhead
    # a populated snapshot rides along so the report shows what the
    # instruments see for this exact workload (one metrics-on repeat
    # ran above as part of the A/B measurement)
    snapshot_state = obs.enabled
    obs.registry.reset()
    obs.enabled = True
    try:
        marshal_times(stubs, sizes[0], repeats=1, number=10)
        roundtrip_times(stubs, sizes[0], repeats=1, number=10)
    finally:
        obs.enabled = snapshot_state
    results["obs_metrics"] = obs.collect()
    print(format_table(
        "Live marshal — generic vs fast path (us/call)",
        ("n", "generic", "fastpath", "speedup"),
        marshal_rows,
    ))
    print()
    print(format_table(
        "Live UDP loopback round trip — generic vs fast path (us/call)",
        ("n", "generic", "fastpath", "speedup"),
        roundtrip_rows,
        note="fast path: header templates + pooled exact-size buffers"
             " + zero-copy decode (repro.rpc.fastpath)",
    ))
    rt = overhead["roundtrip_us"]
    print()
    print("Observability: disabled-guard cost"
          f" {overhead['guard_ns']:.1f}ns x"
          f" {overhead['guards_per_call']} guards"
          f" = {overhead['guarded_ns_per_call']:.0f}ns/call"
          f" = {overhead['overhead_pct']:.3f}% of a"
          f" {rt['disabled']:.1f}us round trip"
          f" (bound: {overhead['overhead_bound_pct']:.1f}%)")
    print(f"  enabled A/B (informational): off {rt['disabled']:.1f}us,"
          f" metrics {rt['metrics']:.1f}us,"
          f" metrics+tracing {rt['tracing']:.1f}us")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"\n[wrote {json_path}]")
    return results
