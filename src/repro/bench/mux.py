"""``mux`` report — the concurrent call engine vs. the serial client.

The specialization work (PR 1, ``live``) removed the *CPU* cost of a
call; this report measures removing the *call model* cost.  The serial
client permits one outstanding xid, so loopback throughput is bounded
by one round-trip latency per call however fast marshaling gets.  The
mux engine (:mod:`repro.rpc.mux`) keeps up to N xids in flight over
one socket and coalesces concurrent submissions into batched
datagrams, so throughput scales with concurrency until the server
saturates.

Method: one event-loop UDP server
(:class:`~repro.rpc.svc_mux.MuxUdpServer`, inline dispatch, fastpath +
DRC + a staged residual route for the benched procedure — the fully
specialized production configuration) running in its *own process*,
like a real deployment; the baseline is the threaded serial client
(:class:`~repro.rpc.UdpClient`) exactly as it ships (fastpath tier),
calling in a loop.  A second serial row adds the same hand-staged
whole-message codec the mux rows use, so the call-model delta is also
visible at equal marshaling cost.  The curve drives a
:class:`~repro.rpc.mux.MuxUdpClient` with a sliding window of
``concurrency`` in-flight async calls, which both keeps exactly ``c``
xids in flight and gives the batcher its natural coalescing
opportunity.

Output: a concurrency-vs-goodput table and ``BENCH_mux.json`` with the
full curve, the serial numbers, realized batch sizes, and
``speedup_c64`` — the acceptance headline (target ≥5× locally; CI
asserts ≥3× as a conservative floor under runner noise).

``REPRO_MUX_CALLS`` scales the per-point call count (default 2000).
"""

import json
import os
import platform
import struct
import subprocess
import sys
import time

from repro.bench.report import format_table, ratio
from repro.rpc import MuxUdpClient, SvcRegistry, UdpClient
from repro.rpc.fastpath import ReplyHeaderTemplate
from repro.rpc.message import decode_reply_header, raise_for_reply
from repro.xdr import XdrMemStream, XdrOp, xdr_u_long

DEFAULT_JSON = "BENCH_mux.json"
PROG, VERS = 0x20009999, 1
PROC_INC = 1
CONCURRENCIES = (1, 2, 4, 8, 16, 32, 64)

#: specialized whole-message codec for PROC_INC — the paper's
#: residual marshalers, hand-staged: one struct call per message.
_WORD = struct.Struct(">I")
_REQ = struct.Struct(">I36sI")
_REQ_MID = struct.pack(">9I", 0, 2, PROG, VERS, PROC_INC, 0, 0, 0, 0)
_REP = struct.Struct(">I20sI")
_REP_MID = ReplyHeaderTemplate().prefix[4:]


def _build_request(xid, args):
    return _REQ.pack(xid & 0xFFFFFFFF, _REQ_MID, args & 0xFFFFFFFF)


def _parse_reply(data, xid):
    if len(data) == _REP.size:
        rxid, mid, value = _REP.unpack(data)
        if mid == _REP_MID:
            if rxid != xid & 0xFFFFFFFF:
                return False, None
            return True, value
    # Off the fast shape (denial, shed, mismatch): generic decode so
    # every server verdict still resolves typed.
    stream = XdrMemStream(data, XdrOp.DECODE)
    reply = decode_reply_header(stream)
    if reply.xid != xid & 0xFFFFFFFF:
        return False, None
    raise_for_reply(reply)
    return True, xdr_u_long(stream, None)


def _unpack_args(data, offset):
    return _WORD.unpack_from(data, offset)[0]


def _calls_per_point():
    return int(os.environ.get("REPRO_MUX_CALLS", "2000"))


class _ServerProcess:
    """The loopback server, in its own process (its own GIL).

    Running the server in-process would serialize its event loop
    against the client's submit and demux threads on one interpreter
    lock and understate pipelining; a subprocess is the deployment
    shape the report claims to measure.
    """

    def __enter__(self):
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro.bench._mux_server"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env,
        )
        line = self._proc.stdout.readline().strip()
        if not line:
            stderr = self._proc.stderr.read()
            self._proc.wait(timeout=10)
            raise RuntimeError(f"bench server failed to start: {stderr}")
        self.port = int(line)
        return self

    def __exit__(self, *exc_info):
        self._proc.stdin.close()
        try:
            self._proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self._proc.kill()
            self._proc.wait()
        self._proc.stdout.close()
        self._proc.stderr.close()


def _registry():
    registry = SvcRegistry(fastpath=True)
    registry.enable_drc()
    registry.register(PROG, VERS, PROC_INC, lambda v: (v + 1) & 0xFFFFFFFF,
                      xdr_args=xdr_u_long, xdr_res=xdr_u_long)
    registry.stage_route(PROG, VERS, PROC_INC,
                         unpack_args=_unpack_args, pack_res=_WORD.pack)
    return registry


def _serial_goodput(port, calls, codec):
    """Calls/s of the threaded serial client.

    ``codec=False`` is the production client exactly as it ships
    (fastpath templates) — the baseline the headline speedup divides
    by.  ``codec=True`` additionally installs the same hand-staged
    whole-message codec the mux rows use, reported alongside so the
    call-model delta is visible at equal marshaling cost.

    Median of three trials: the serial loop is pure
    syscall-plus-thread-handoff and its wall time swings widely with
    scheduler noise, so a single sample can misstate the denominator
    of the whole speedup column.
    """
    rates = []
    for _ in range(3):
        client = UdpClient("127.0.0.1", port, PROG, VERS, timeout=5.0,
                           fastpath=True)
        if codec:
            client.install_codec(PROC_INC, _build_request, _parse_reply)
        try:
            assert client.call(PROC_INC, 41, xdr_args=xdr_u_long,
                               xdr_res=xdr_u_long) == 42  # warm
            started = time.perf_counter()
            for i in range(calls):
                client.call(PROC_INC, i, xdr_args=xdr_u_long,
                            xdr_res=xdr_u_long)
            elapsed = time.perf_counter() - started
        finally:
            client.close()
        rates.append(calls / elapsed)
    return sorted(rates)[1]


def _mux_goodput(port, concurrency, calls):
    """(median calls/s, batching stats) of the mux client driven with
    a sliding window of ``concurrency`` in-flight calls.

    A *wave* driver (submit N, wait for all N, repeat) would serialize
    the pipeline — every stage idles while the others work.  The
    sliding window keeps the engine loaded: each completed call is
    immediately replaced, so submissions, flushes, server dispatch,
    and reply demux all overlap.  Median of three trials, like the
    serial baseline, so neither side of the speedup rides one
    scheduler hiccup.
    """
    import collections

    client = MuxUdpClient("127.0.0.1", port, PROG, VERS, timeout=5.0,
                          fastpath=True, max_inflight=concurrency)
    client.install_codec(PROC_INC, _build_request, _parse_reply)
    rates = []
    try:
        warm = client.call_async(PROC_INC, 41, xdr_args=xdr_u_long,
                                 xdr_res=xdr_u_long)
        assert warm.result(10.0) == 42
        base_batches = client.batches_sent
        base_messages = client.messages_batched
        for _ in range(3):
            window = collections.deque()
            submitted = done = 0
            started = time.perf_counter()
            while done < calls:
                while submitted < calls and len(window) < concurrency:
                    window.append((submitted, client.call_async(
                        PROC_INC, submitted, xdr_args=xdr_u_long,
                        xdr_res=xdr_u_long)))
                    submitted += 1
                sent, call = window.popleft()
                value = call.result(10.0)
                if value != (sent + 1) & 0xFFFFFFFF:
                    raise AssertionError(
                        f"wrong value {value} for call {sent}"
                    )
                done += 1
            rates.append(done / (time.perf_counter() - started))
        batches = client.batches_sent - base_batches
        messages = client.messages_batched - base_messages
    finally:
        client.close()
    return sorted(rates)[1], {
        "batches_sent": batches,
        "messages_batched": messages,
        "avg_batch": (messages / batches) if batches else 0.0,
        "retransmissions": client.retransmissions,
    }


def run(workload=None, json_path=DEFAULT_JSON):
    """Print the concurrency curve and write ``BENCH_mux.json``.

    ``workload`` is accepted (and ignored) for CLI uniformity.
    """
    del workload
    calls = _calls_per_point()
    results = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calls_per_point": calls,
            "server": "MuxUdpServer(subprocess, inline, fastpath, drc,"
                      " staged route)",
            "baseline": "UdpClient(specialized codec) serial loop",
        },
        "serial": {},
        "mux": {},
    }
    with _ServerProcess() as server:
        serial_rps = _serial_goodput(server.port, calls, codec=False)
        serial_codec_rps = _serial_goodput(server.port, calls, codec=True)
        results["serial"] = {
            "calls": calls,
            "rps": serial_rps,
            "us_per_call": 1e6 / serial_rps,
        }
        results["serial_specialized"] = {
            "calls": calls,
            "rps": serial_codec_rps,
            "speedup_vs_serial": ratio(serial_codec_rps, serial_rps),
        }
        rows = [
            ("serial", f"{serial_rps:,.0f}", "1.00x", "-"),
            ("serial+codec", f"{serial_codec_rps:,.0f}",
             f"{ratio(serial_codec_rps, serial_rps):.2f}x", "-"),
        ]
        for concurrency in CONCURRENCIES:
            rps, batching = _mux_goodput(server.port, concurrency, calls)
            speedup = ratio(rps, serial_rps)
            results["mux"][str(concurrency)] = {
                "calls": calls,
                "rps": rps,
                "speedup_vs_serial": speedup,
                **batching,
            }
            rows.append((
                f"mux c={concurrency}", f"{rps:,.0f}",
                f"{speedup:.2f}x", f"{batching['avg_batch']:.1f}",
            ))
    results["speedup_c64"] = results["mux"]["64"]["speedup_vs_serial"]
    results["target_speedup"] = 5.0
    results["ci_floor_speedup"] = 3.0
    with open(json_path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print(format_table(
        "Concurrent call engine — loopback UDP goodput"
        f" ({calls} calls/point)",
        ("client", "calls/s", "vs serial", "avg batch"),
        rows,
        note="mux: one socket, xid-demultiplexed pipelining + batching"
             " (repro.rpc.mux) against MuxUdpServer",
    ))
    print(f"\nspeedup at c=64: {results['speedup_c64']:.2f}x"
          f" (target >=5x, CI floor >=3x)")
    print(f"JSON written to {json_path}")
    return results
