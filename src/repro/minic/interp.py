"""Reference interpreter for MiniC.

Two jobs:

1. Define the semantics of MiniC programs — the correctness oracle that
   the Tempo specializer must preserve (tests compare generic-program
   runs against residual-program runs over random inputs).
2. Optionally record an instruction/memory cost trace
   (:mod:`repro.minic.cost`) that the platform simulator replays to
   regenerate the paper's timing tables.

Interpretation is environment-based with explicit control-flow signals.
The memory model is defined in :mod:`repro.minic.values`.
"""

from repro.errors import InterpError
from repro.minic import ast
from repro.minic import builtins
from repro.minic import cost
from repro.minic import types as ct
from repro.minic import values as rv
from repro.minic.typecheck import typecheck_program

_MAX_STEPS_DEFAULT = 50_000_000


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class Frame:
    """One function activation: a chain of block scopes."""

    __slots__ = ("scopes",)

    def __init__(self):
        self.scopes = [{}]

    def push(self):
        self.scopes.append({})

    def pop(self):
        self.scopes.pop()

    def declare(self, name, cell):
        self.scopes[-1][name] = cell

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise InterpError(f"undefined variable {name!r}")


def _address_taken_names(func):
    """Names whose address is taken anywhere in ``func`` (need stack
    slots; other scalar locals are treated as register-resident)."""
    taken = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Unary) and node.op == "&":
            # Only a direct ``&var`` pins the variable itself; ``&p->f``
            # and ``&a[i]`` take the address of the pointee/element.
            if isinstance(node.operand, ast.Var):
                taken.add(node.operand.name)
    return taken


class Interpreter:
    """Executes functions of one MiniC program."""

    def __init__(self, program, typeinfo=None, max_steps=_MAX_STEPS_DEFAULT):
        self.program = program
        self.typeinfo = typeinfo or typecheck_program(program)
        self.layout = cost.CodeLayout(program)
        self.space = rv.AddressSpace()
        self.max_steps = max_steps
        self.trace = None
        #: pluggable loopback network for ``net_sendrecv``; a callable
        #: taking request ``bytes`` and returning reply ``bytes``.
        self.network = None
        self._steps = 0
        self._globals = {}
        self._taken_cache = {}
        for glob in self.program.globals:
            value = rv.make_value(glob.ctype, self.space)
            cell = rv.Cell(value, glob.ctype, self.space.alloc_heap(4))
            self._globals[glob.name] = cell
        # Globals with initializers are evaluated in a pseudo-frame.
        frame = Frame()
        for glob in self.program.globals:
            if glob.init is not None:
                cell = self._globals[glob.name]
                cell.value = ct.wrap_int(
                    self.eval(glob.init, frame), glob.ctype
                )

    # -- public helpers ---------------------------------------------------

    def make_struct(self, name):
        """Allocate a struct instance by struct name."""
        stype = self._struct_type(name)
        return rv.StructVal(stype, space=self.space)

    def make_array(self, base_name, length):
        atype = ct.ArrayType(ct.base_type(base_name), length)
        return rv.ArrayVal(atype, space=self.space)

    def make_buffer(self, size, name="buf"):
        return rv.Buffer(size, space=self.space, name=name)

    @staticmethod
    def ptr_to(value, ctype=None):
        """Build a pointer to ``value`` usable as a call argument."""
        if isinstance(value, rv.StructVal):
            cell = rv.Cell(value, value.stype, value.addr)
            return rv.CellPtr(cell)
        if isinstance(value, rv.ArrayVal):
            return rv.CellPtr(value.elem(0), value, 0)
        cell = rv.Cell(value, ctype or ct.INT)
        return rv.CellPtr(cell)

    def _struct_type(self, name):
        struct = self.program.struct(name)
        return ct.StructType(
            name, tuple((f.name, f.ctype) for f in struct.fields)
        )

    def call(self, name, args, trace=None):
        """Call function ``name`` with already-constructed values."""
        previous_trace, self.trace = self.trace, trace
        self._steps = 0
        try:
            return self._call(name, list(args), node=None)
        finally:
            self.trace = previous_trace

    # -- tracing ------------------------------------------------------------

    def _emit(self, kind, node, mem_addr=0, size=0):
        self.trace.emit(kind, self.layout.addr(node), mem_addr, size)

    def _tick(self):
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpError(f"exceeded {self.max_steps} interpreter steps")

    # -- calls ---------------------------------------------------------------

    def _call(self, name, args, node):
        if builtins.is_builtin(name):
            return self._call_builtin(name, args, node)
        try:
            func = self.program.func(name)
        except KeyError:
            raise InterpError(f"call to undefined function {name!r}") from None
        if len(args) != len(func.params):
            raise InterpError(
                f"{name} expects {len(func.params)} args, got {len(args)}"
            )
        if self.trace is not None and node is not None:
            self._emit(cost.CALL, node)
        frame = Frame()
        if func.name not in self._taken_cache:
            self._taken_cache[func.name] = _address_taken_names(func)
        taken = self._taken_cache[func.name]
        for param, arg in zip(func.params, args):
            if isinstance(param.ctype, (ct.StructType, ct.ArrayType)):
                raise InterpError(
                    f"{name}: aggregates must be passed by pointer"
                )
            addr = self.space.alloc_stack(4) if param.name in taken else None
            value = arg
            if param.ctype.is_integer:
                value = ct.wrap_int(arg, param.ctype)
            frame.declare(param.name, rv.Cell(value, param.ctype, addr))
        try:
            self.exec_stmt(func.body, frame, taken)
        except _Return as signal:
            if self.trace is not None and node is not None:
                self._emit(cost.RET, node)
            return signal.value
        if self.trace is not None and node is not None:
            self._emit(cost.RET, node)
        if not func.ret_type.is_void:
            raise InterpError(f"{name}: fell off the end of a non-void function")
        return None

    def _call_builtin(self, name, args, node):
        trace = self.trace
        if name in ("htonl", "ntohl", "htons", "ntohs"):
            if trace is not None and node is not None:
                self._emit(cost.BYTESWAP, node)
            width = 4 if name.endswith("l") else 2
            mask = (1 << (8 * width)) - 1
            return args[0] & mask
        if name == "bzero":
            ptr, length = args
            length = int(length)
            if isinstance(ptr, rv.BufPtr):
                ptr.buffer.fill_zero(ptr.offset, length)
                if trace is not None and node is not None:
                    self._emit(cost.STORE, node, ptr.mem_addr(), length)
            elif isinstance(ptr, rv.CellPtr) and ptr.array is not None:
                elem_size = ptr.array.atype.base.size()
                for index in range(length // elem_size):
                    ptr.array.elem(ptr.index + index).value = 0
                if trace is not None and node is not None:
                    self._emit(cost.STORE, node, ptr.mem_addr(), length)
            else:
                raise InterpError("bzero needs a buffer or array pointer")
            return None
        if name == "memcpy":
            dst, src, length = args
            length = int(length)
            if isinstance(dst, rv.BufPtr) and isinstance(src, rv.BufPtr):
                dst.buffer.check(dst.offset, length)
                src.buffer.check(src.offset, length)
                dst.buffer.data[dst.offset:dst.offset + length] = (
                    src.buffer.data[src.offset:src.offset + length]
                )
                if trace is not None and node is not None:
                    self._emit(cost.LOAD, node, src.mem_addr(), length)
                    self._emit(cost.STORE, node, dst.mem_addr(), length)
                return None
            raise InterpError("memcpy supports buffer pointers only")
        if name == "net_sendrecv":
            return self._net_sendrecv(args, node)
        if name == "abort":
            raise InterpError("program called abort()")
        raise InterpError(f"unimplemented builtin {name!r}")

    def _net_sendrecv(self, args, node):
        out_ptr, out_len, in_ptr, in_max = args
        out_len = int(out_len)
        in_max = int(in_max)
        if self.network is None:
            raise InterpError("net_sendrecv called with no network attached")
        if not isinstance(out_ptr, rv.BufPtr) or not isinstance(
            in_ptr, rv.BufPtr
        ):
            raise InterpError("net_sendrecv needs buffer pointers")
        request = bytes(
            out_ptr.buffer.data[out_ptr.offset:out_ptr.offset + out_len]
        )
        if self.trace is not None and node is not None:
            self._emit(cost.NET_SEND, node, 0, out_len)
        reply = self.network(request)
        reply = reply[:in_max]
        in_ptr.buffer.check(in_ptr.offset, len(reply))
        in_ptr.buffer.data[in_ptr.offset:in_ptr.offset + len(reply)] = reply
        if self.trace is not None and node is not None:
            self._emit(cost.NET_RECV, node, in_ptr.mem_addr(), len(reply))
        return len(reply)

    # -- statements ------------------------------------------------------------

    def exec_stmt(self, node, frame, taken):
        self._tick()
        trace = self.trace
        if isinstance(node, ast.Block):
            frame.push()
            try:
                for stmt in node.stmts:
                    self.exec_stmt(stmt, frame, taken)
            finally:
                frame.pop()
        elif isinstance(node, ast.ExprStmt):
            self.eval(node.expr, frame)
        elif isinstance(node, ast.Decl):
            self._exec_decl(node, frame, taken)
        elif isinstance(node, ast.If):
            if trace is not None:
                self._emit(cost.BRANCH, node)
            if self._truthy(self.eval(node.cond, frame)):
                self.exec_stmt(node.then, frame, taken)
            elif node.other is not None:
                self.exec_stmt(node.other, frame, taken)
        elif isinstance(node, ast.While):
            while True:
                if trace is not None:
                    self._emit(cost.BRANCH, node)
                if not self._truthy(self.eval(node.cond, frame)):
                    break
                try:
                    self.exec_stmt(node.body, frame, taken)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(node, ast.For):
            frame.push()
            try:
                if isinstance(node.init, ast.Decl):
                    self._exec_decl(node.init, frame, taken)
                elif isinstance(node.init, ast.ExprStmt):
                    self.eval(node.init.expr, frame)
                while True:
                    if node.cond is not None:
                        if trace is not None:
                            self._emit(cost.BRANCH, node)
                        if not self._truthy(self.eval(node.cond, frame)):
                            break
                    try:
                        self.exec_stmt(node.body, frame, taken)
                    except _Break:
                        break
                    except _Continue:
                        pass
                    if node.step is not None:
                        self.eval(node.step, frame)
            finally:
                frame.pop()
        elif isinstance(node, ast.Return):
            value = None
            if node.value is not None:
                value = self.eval(node.value, frame)
            raise _Return(value)
        elif isinstance(node, ast.Break):
            raise _Break()
        elif isinstance(node, ast.Continue):
            raise _Continue()
        else:
            raise InterpError(f"unknown statement {node!r}")

    def _exec_decl(self, node, frame, taken):
        ctype = node.ctype
        if isinstance(ctype, (ct.StructType, ct.ArrayType)):
            value = rv.make_value(ctype, self.space)
            cell = rv.Cell(value, ctype, value.addr)
        else:
            addr = self.space.alloc_stack(4) if node.name in taken else None
            cell = rv.Cell(rv.make_value(ctype), ctype, addr)
        if node.init is not None:
            init = self.eval(node.init, frame)
            if ctype.is_integer:
                init = ct.wrap_int(init, ctype)
            cell.value = init
        frame.declare(node.name, cell)

    # -- expressions -------------------------------------------------------------

    def eval(self, node, frame):
        self._tick()
        trace = self.trace
        if trace is not None:
            self._emit(cost.IFETCH, node)
        if isinstance(node, ast.IntLit):
            return node.value
        if isinstance(node, ast.StrLit):
            return node.value
        if isinstance(node, ast.Var):
            cell = self._lookup(node.name, frame)
            if trace is not None and cell.addr is not None:
                self._emit(cost.LOAD, node, cell.addr, cell.size())
            return cell.value
        if isinstance(node, ast.Unary):
            return self._eval_unary(node, frame)
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, frame)
        if isinstance(node, ast.Assign):
            return self._eval_assign(node, frame)
        if isinstance(node, ast.IncDec):
            return self._eval_incdec(node, frame)
        if isinstance(node, ast.Call):
            args = [self.eval(arg, frame) for arg in node.args]
            return self._call(node.name, args, node)
        if isinstance(node, ast.Member):
            cell = self._member_cell(node, frame)
            if trace is not None and cell.addr is not None:
                self._emit(cost.LOAD, node, cell.addr, cell.size())
            return cell.value
        if isinstance(node, ast.Index):
            location = self._index_loc(node, frame)
            return self._load_loc(location, node)
        if isinstance(node, ast.Cast):
            return self._eval_cast(node, frame)
        if isinstance(node, ast.Cond):
            if trace is not None:
                self._emit(cost.BRANCH, node)
            if self._truthy(self.eval(node.cond, frame)):
                return self.eval(node.then, frame)
            return self.eval(node.other, frame)
        if isinstance(node, ast.SizeOf):
            return node.ctype.size()
        raise InterpError(f"unknown expression {node!r}")

    def _lookup(self, name, frame):
        try:
            return frame.lookup(name)
        except InterpError:
            if name in self._globals:
                return self._globals[name]
            raise

    # -- lvalues --------------------------------------------------------------

    def eval_lvalue(self, node, frame):
        """Evaluate an lvalue to a location: a Cell or a BufPtr."""
        if isinstance(node, ast.Var):
            return self._lookup(node.name, frame)
        if isinstance(node, ast.Member):
            return self._member_cell(node, frame)
        if isinstance(node, ast.Index):
            return self._index_loc(node, frame)
        if isinstance(node, ast.Unary) and node.op == "*":
            pointer = self.eval(node.operand, frame)
            return self._deref_loc(pointer, node)
        raise InterpError(f"not an lvalue: {node!r}")

    def _member_cell(self, node, frame):
        if node.arrow:
            pointer = self.eval(node.obj, frame)
            struct = self._pointee_struct(pointer)
        else:
            struct = self._struct_of(self.eval_lvalue(node.obj, frame))
        return struct.field(node.field)

    @staticmethod
    def _struct_of(location):
        if isinstance(location, rv.Cell) and isinstance(
            location.value, rv.StructVal
        ):
            return location.value
        raise InterpError("member access on a non-struct value")

    @staticmethod
    def _pointee_struct(pointer):
        if isinstance(pointer, rv.CellPtr) and isinstance(
            pointer.cell.value, rv.StructVal
        ):
            return pointer.cell.value
        raise InterpError("-> through a non-struct pointer")

    def _index_loc(self, node, frame):
        index = self.eval(node.index, frame)
        base = node.obj
        base_loc = None
        if isinstance(base, (ast.Var, ast.Member)):
            base_loc = self.eval_lvalue(base, frame)
        if base_loc is not None and isinstance(base_loc.value, rv.ArrayVal):
            return base_loc.value.elem(int(index))
        pointer = self.eval(base, frame)
        return self._deref_loc(
            pointer.add(int(index))
            if isinstance(pointer, (rv.CellPtr, rv.BufPtr))
            else pointer,
            node,
        )

    def _deref_loc(self, pointer, node):
        if isinstance(pointer, rv.CellPtr):
            return pointer.cell
        if isinstance(pointer, rv.BufPtr):
            return pointer
        if isinstance(pointer, rv.NullPtr):
            raise InterpError("NULL pointer dereference")
        raise InterpError(f"dereference of non-pointer {pointer!r}")

    def _load_loc(self, location, node):
        trace = self.trace
        if isinstance(location, rv.Cell):
            if trace is not None and location.addr is not None:
                self._emit(cost.LOAD, node, location.addr, location.size())
            return location.value
        value = location.load()
        if trace is not None:
            self._emit(cost.LOAD, node, location.mem_addr(), location.elem_size)
        return value

    def _store_loc(self, location, value, node):
        trace = self.trace
        if isinstance(location, rv.Cell):
            if location.ctype.is_integer:
                value = ct.wrap_int(value, location.ctype)
            location.value = value
            if trace is not None and location.addr is not None:
                self._emit(cost.STORE, node, location.addr, location.size())
            return value
        location.store(int(value))
        if trace is not None:
            self._emit(cost.STORE, node, location.mem_addr(), location.elem_size)
        return value

    # -- operators ----------------------------------------------------------------

    def _eval_unary(self, node, frame):
        trace = self.trace
        if node.op == "&":
            location = self.eval_lvalue(node.operand, frame)
            if isinstance(location, rv.BufPtr):
                return location
            value = location.value
            if isinstance(value, rv.ArrayVal):
                return rv.CellPtr(value.elem(0), value, 0)
            # Pointer to the cell itself; remember the owning array when
            # the cell is an element so arithmetic stays legal.
            return rv.CellPtr(location)
        if node.op == "*":
            pointer = self.eval(node.operand, frame)
            location = self._deref_loc(pointer, node)
            return self._load_loc(location, node)
        operand = self.eval(node.operand, frame)
        if trace is not None:
            self._emit(cost.ALU, node)
        result_type = self.typeinfo.expr_types.get(node.uid, ct.INT)
        if node.op == "-":
            return ct.wrap_int(-operand, result_type)
        if node.op == "~":
            return ct.wrap_int(~operand, result_type)
        if node.op == "!":
            return 0 if self._truthy(operand) else 1
        raise InterpError(f"unknown unary {node.op!r}")

    @staticmethod
    def _truthy(value):
        if isinstance(value, rv.NullPtr):
            return False
        if isinstance(value, rv.Pointer):
            return True
        return value != 0

    def _eval_binary(self, node, frame):
        trace = self.trace
        op = node.op
        if op in ("&&", "||"):
            left = self.eval(node.left, frame)
            if trace is not None:
                self._emit(cost.BRANCH, node)
            if op == "&&":
                if not self._truthy(left):
                    return 0
                return 1 if self._truthy(self.eval(node.right, frame)) else 0
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self.eval(node.right, frame)) else 0
        left = self.eval(node.left, frame)
        right = self.eval(node.right, frame)
        if trace is not None:
            if op in ("*",):
                self._emit(cost.MUL, node)
            elif op in ("/", "%"):
                self._emit(cost.DIV, node)
            else:
                self._emit(cost.ALU, node)
        left_ptr = isinstance(left, rv.Pointer)
        right_ptr = isinstance(right, rv.Pointer)
        if left_ptr or right_ptr:
            return self._pointer_binary(op, left, right)
        result_type = self.typeinfo.expr_types.get(node.uid, ct.INT)
        return self._int_binary(op, int(left), int(right), result_type)

    def _pointer_binary(self, op, left, right):
        if op == "+":
            if isinstance(left, rv.Pointer):
                return left.add(int(right))
            return right.add(int(left))
        if op == "-":
            if isinstance(right, rv.Pointer):
                return left.diff(right)
            return left.add(-int(right))
        if op in ("==", "!="):
            equal = left == right
            if equal is NotImplemented:
                equal = left is right
            return int(equal) if op == "==" else int(not equal)
        raise InterpError(f"unsupported pointer operation {op!r}")

    @staticmethod
    def _int_binary(op, left, right, result_type):
        if op == "+":
            value = left + right
        elif op == "-":
            value = left - right
        elif op == "*":
            value = left * right
        elif op == "/":
            if right == 0:
                raise InterpError("division by zero")
            value = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                value = -value
        elif op == "%":
            if right == 0:
                raise InterpError("modulo by zero")
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            value = left - quotient * right
        elif op == "&":
            value = left & right
        elif op == "|":
            value = left | right
        elif op == "^":
            value = left ^ right
        elif op == "<<":
            value = left << (right & 31)
        elif op == ">>":
            if not result_type.signed:
                value = (left & 0xFFFFFFFF) >> (right & 31)
            else:
                value = left >> (right & 31)
        elif op == "==":
            return int(left == right)
        elif op == "!=":
            return int(left != right)
        elif op == "<":
            return int(left < right)
        elif op == "<=":
            return int(left <= right)
        elif op == ">":
            return int(left > right)
        elif op == ">=":
            return int(left >= right)
        else:
            raise InterpError(f"unknown binary {op!r}")
        return ct.wrap_int(value, result_type)

    def _eval_assign(self, node, frame):
        location = self.eval_lvalue(node.target, frame)
        value = self.eval(node.value, frame)
        if node.op is not None:
            current = self._load_loc(location, node)
            if self.trace is not None:
                kind = (
                    cost.MUL
                    if node.op == "*"
                    else cost.DIV if node.op in ("/", "%") else cost.ALU
                )
                self._emit(kind, node)
            if isinstance(current, rv.Pointer):
                value = self._pointer_binary(node.op, current, value)
            else:
                result_type = self.typeinfo.expr_types.get(node.uid, ct.INT)
                value = self._int_binary(
                    node.op, int(current), int(value), result_type
                )
        return self._store_loc(location, value, node)

    def _eval_incdec(self, node, frame):
        location = self.eval_lvalue(node.target, frame)
        current = self._load_loc(location, node)
        if self.trace is not None:
            self._emit(cost.ALU, node)
        if isinstance(current, rv.Pointer):
            updated = current.add(1 if node.op == "++" else -1)
        else:
            updated = current + (1 if node.op == "++" else -1)
        self._store_loc(location, updated, node)
        return updated if node.prefix else current

    def _eval_cast(self, node, frame):
        value = self.eval(node.operand, frame)
        ctype = node.ctype
        if isinstance(value, rv.BufPtr) and isinstance(ctype, ct.PointerType):
            return value.with_type(ctype)
        if isinstance(value, rv.Pointer):
            return value
        if ctype.is_integer:
            return ct.wrap_int(int(value), ctype)
        return value
