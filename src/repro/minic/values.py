"""Runtime value model shared by the MiniC interpreter and the Tempo
specializer.

MiniC memory objects:

* :class:`Cell` — one scalar variable / struct field / array element.
  Cells may carry a synthetic data address (``addr``); addressed cells
  generate LOAD/STORE trace events, unaddressed cells model values a
  compiler would keep in registers.
* :class:`StructVal` — a struct instance: named field cells laid out
  contiguously.
* :class:`ArrayVal` — an array instance: element cells laid out
  contiguously.
* :class:`Buffer` — a byte-addressed region (the XDR output/input
  buffers).  Integer stores are big-endian, matching XDR's on-the-wire
  format (MiniC's abstract machine is big-endian, so ``htonl`` is the
  identity — exactly as on the paper's SPARC platform).

Pointers:

* :class:`CellPtr` — address of a cell (possibly an element of an
  :class:`ArrayVal`, in which case pointer arithmetic moves by elements).
* :class:`BufPtr` — byte-granular cursor into a :class:`Buffer` (the
  ``x_private`` cursor of the XDR code).
"""

import struct

from repro.errors import InterpError
from repro.minic import types as ct


class AddressSpace:
    """Bump allocator handing out synthetic data addresses."""

    STACK_BASE = 0x1000_0000
    HEAP_BASE = 0x2000_0000

    def __init__(self):
        self._next_stack = self.STACK_BASE
        self._next_heap = self.HEAP_BASE

    def alloc_stack(self, size):
        addr = self._next_stack
        self._next_stack += _round_up(size, 4)
        return addr

    def alloc_heap(self, size):
        addr = self._next_heap
        self._next_heap += _round_up(size, 8)
        return addr


def _round_up(value, align):
    return (value + align - 1) // align * align


class Cell:
    """A mutable storage location holding one MiniC value."""

    __slots__ = ("value", "ctype", "addr")

    def __init__(self, value=0, ctype=ct.INT, addr=None):
        self.value = value
        self.ctype = ctype
        self.addr = addr

    def size(self):
        if self.ctype.is_pointer:
            return 4
        try:
            return self.ctype.size()
        except Exception:
            return 4

    def __repr__(self):
        return f"Cell({self.value!r}: {self.ctype})"


class StructVal:
    """A struct instance with contiguously addressed field cells."""

    __slots__ = ("stype", "fields", "addr")

    def __init__(self, stype, space=None, addr=None):
        self.stype = stype
        self.addr = addr
        if addr is None and space is not None:
            self.addr = space.alloc_heap(stype.size())
        self.fields = {}
        offset = 0
        for fname, ftype in stype.fields:
            faddr = None if self.addr is None else self.addr + offset
            if isinstance(ftype, ct.StructType):
                self.fields[fname] = Cell(
                    StructVal(ftype, addr=faddr), ftype, faddr
                )
            elif isinstance(ftype, ct.ArrayType):
                self.fields[fname] = Cell(
                    ArrayVal(ftype, addr=faddr), ftype, faddr
                )
            else:
                self.fields[fname] = Cell(_zero_of(ftype), ftype, faddr)
            offset += ftype.size()

    def field(self, name):
        try:
            return self.fields[name]
        except KeyError:
            raise InterpError(
                f"struct {self.stype.name} has no field {name!r}"
            ) from None

    def __repr__(self):
        return f"StructVal({self.stype.name})"


class ArrayVal:
    """An array instance with contiguously addressed element cells."""

    __slots__ = ("atype", "cells", "addr")

    def __init__(self, atype, space=None, addr=None):
        self.atype = atype
        self.addr = addr
        if addr is None and space is not None:
            self.addr = space.alloc_heap(atype.size())
        elem = atype.base
        elem_size = elem.size()
        self.cells = []
        for index in range(atype.length):
            eaddr = None if self.addr is None else self.addr + index * elem_size
            if isinstance(elem, ct.StructType):
                self.cells.append(Cell(StructVal(elem, addr=eaddr), elem, eaddr))
            else:
                self.cells.append(Cell(_zero_of(elem), elem, eaddr))

    def elem(self, index):
        if not 0 <= index < len(self.cells):
            raise InterpError(
                f"array index {index} out of bounds [0, {len(self.cells)})"
            )
        return self.cells[index]

    def values(self):
        return [cell.value for cell in self.cells]

    def set_values(self, values):
        if len(values) > len(self.cells):
            raise InterpError("too many initializer values")
        for cell, value in zip(self.cells, values):
            cell.value = ct.wrap_int(value, cell.ctype)

    def __len__(self):
        return len(self.cells)

    def __repr__(self):
        return f"ArrayVal({self.atype})"


def _zero_of(ctype):
    if isinstance(ctype, ct.PointerType):
        return NULL
    return 0


class Buffer:
    """A byte-addressed memory region; integer access is big-endian."""

    __slots__ = ("data", "addr", "name")

    def __init__(self, size, space=None, addr=None, name="buf"):
        self.data = bytearray(size)
        self.name = name
        self.addr = addr
        if addr is None and space is not None:
            self.addr = space.alloc_heap(size)
        if self.addr is None:
            self.addr = 0

    def __len__(self):
        return len(self.data)

    def check(self, offset, size):
        if offset < 0 or offset + size > len(self.data):
            raise InterpError(
                f"buffer {self.name!r} access [{offset}, {offset + size})"
                f" out of bounds (size {len(self.data)})"
            )

    def store_int(self, offset, value, size, signed):
        self.check(offset, size)
        value &= (1 << (8 * size)) - 1
        self.data[offset:offset + size] = value.to_bytes(size, "big")

    def load_int(self, offset, size, signed):
        self.check(offset, size)
        value = int.from_bytes(self.data[offset:offset + size], "big")
        if signed:
            limit = 1 << (8 * size - 1)
            if value >= limit:
                value -= limit << 1
        return value

    def store_u32(self, offset, value):
        self.check(offset, 4)
        struct.pack_into(">I", self.data, offset, value & 0xFFFFFFFF)

    def load_u32(self, offset):
        self.check(offset, 4)
        return struct.unpack_from(">I", self.data, offset)[0]

    def fill_zero(self, offset, size):
        self.check(offset, size)
        self.data[offset:offset + size] = bytes(size)

    def bytes(self):
        return bytes(self.data)

    def __repr__(self):
        return f"Buffer({self.name!r}, {len(self.data)} bytes)"


class Pointer:
    """Base class for MiniC pointer values."""

    __slots__ = ()


class NullPtr(Pointer):
    __slots__ = ()

    def __repr__(self):
        return "NULL"

    def __bool__(self):
        return False


NULL = NullPtr()


class CellPtr(Pointer):
    """Pointer to a cell.  If the cell came from an :class:`ArrayVal`,
    ``array``/``index`` enable element-granular pointer arithmetic."""

    __slots__ = ("cell", "array", "index")

    def __init__(self, cell, array=None, index=0):
        self.cell = cell
        self.array = array
        self.index = index

    def add(self, elems):
        if self.array is None:
            if elems == 0:
                return self
            raise InterpError("pointer arithmetic past a scalar object")
        new_index = self.index + elems
        return CellPtr(self.array.elem(new_index), self.array, new_index)

    def diff(self, other):
        if not isinstance(other, CellPtr) or other.array is not self.array:
            raise InterpError("subtracting unrelated pointers")
        return self.index - other.index

    def mem_addr(self):
        return self.cell.addr or 0

    def __eq__(self, other):
        if isinstance(other, CellPtr):
            return self.cell is other.cell
        return NotImplemented

    def __hash__(self):
        return id(self.cell)

    def __repr__(self):
        return f"CellPtr({self.cell!r})"


class BufPtr(Pointer):
    """Byte-granular cursor into a :class:`Buffer`.

    ``elem_size`` is the size of the pointed-to element as seen through
    the pointer's static type (``caddr_t`` cursors use 1)."""

    __slots__ = ("buffer", "offset", "elem_size", "signed")

    def __init__(self, buffer, offset=0, elem_size=1, signed=True):
        self.buffer = buffer
        self.offset = offset
        self.elem_size = elem_size
        self.signed = signed

    def add(self, elems):
        return BufPtr(
            self.buffer,
            self.offset + elems * self.elem_size,
            self.elem_size,
            self.signed,
        )

    def diff(self, other):
        if not isinstance(other, BufPtr) or other.buffer is not self.buffer:
            raise InterpError("subtracting unrelated pointers")
        return (self.offset - other.offset) // self.elem_size

    def with_type(self, ctype):
        """Reinterpret the cursor through a new pointee type (C cast)."""
        if isinstance(ctype, ct.PointerType) and ctype.base.is_integer:
            return BufPtr(
                self.buffer, self.offset, ctype.base.size(), ctype.base.signed
            )
        return BufPtr(self.buffer, self.offset, 1, True)

    def load(self):
        return self.buffer.load_int(self.offset, self.elem_size, self.signed)

    def store(self, value):
        self.buffer.store_int(self.offset, value, self.elem_size, self.signed)

    def mem_addr(self):
        return self.buffer.addr + self.offset

    def __eq__(self, other):
        if isinstance(other, BufPtr):
            return self.buffer is other.buffer and self.offset == other.offset
        return NotImplemented

    def __hash__(self):
        return hash((id(self.buffer), self.offset))

    def __repr__(self):
        return f"BufPtr({self.buffer.name!r}+{self.offset})"


def make_value(ctype, space=None):
    """Construct a default value/instance for a declared type."""
    if isinstance(ctype, ct.StructType):
        return StructVal(ctype, space=space)
    if isinstance(ctype, ct.ArrayType):
        return ArrayVal(ctype, space=space)
    if isinstance(ctype, ct.PointerType):
        return NULL
    return 0
