"""Recursive-descent parser for MiniC.

The grammar is the pragmatic C subset needed by the Sun RPC sources:
struct/enum/typedef declarations, function definitions, the full C
expression precedence ladder (without the comma operator), and the
statement forms ``if``/``while``/``for``/``return``/``break``/
``continue``/blocks/declarations.
"""

from repro.errors import ParseError
from repro.minic import ast
from repro.minic import types as ct
from repro.minic.lexer import tokenize
from repro.minic.tokens import CHARLIT, EOF, IDENT, INT, KEYWORD, PUNCT, STRINGLIT


class Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0
        #: typedef name -> CType
        self.typedefs = {}
        #: struct name -> StructType (filled as struct defs are parsed)
        self.struct_types = {}
        #: enum constant name -> int value
        self.enum_consts = {}

    # -- token helpers -------------------------------------------------

    def peek(self, ahead=0):
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def expect_punct(self, text):
        token = self.peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}", token)
        return self.advance()

    def expect_kind(self, kind):
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}", token)
        return self.advance()

    def accept_punct(self, text):
        if self.peek().is_punct(text):
            self.advance()
            return True
        return False

    # -- types ----------------------------------------------------------

    def at_type(self):
        """Is the current token the start of a type?"""
        token = self.peek()
        if token.kind == KEYWORD and (
            ct.is_base_type(token.value) or token.value == "struct"
        ):
            return True
        return token.kind == IDENT and token.value in self.typedefs

    def parse_base_type(self):
        token = self.peek()
        if token.is_keyword("struct"):
            self.advance()
            name = self.expect_kind(IDENT).value
            if name not in self.struct_types:
                # Allow forward references to structs defined later.
                self.struct_types[name] = ct.StructType(name)
            return self.struct_types[name]
        if token.kind == KEYWORD and ct.is_base_type(token.value):
            self.advance()
            return ct.base_type(token.value)
        if token.kind == IDENT and token.value in self.typedefs:
            self.advance()
            return self.typedefs[token.value]
        raise ParseError("expected a type", token)

    def parse_type(self):
        """Parse a base type followed by zero or more ``*``."""
        ctype = self.parse_base_type()
        while self.peek().is_punct("*"):
            self.advance()
            ctype = ct.PointerType(ctype)
        return ctype

    def parse_declarator(self, base):
        """Parse ``name`` optionally followed by ``[N]`` array suffixes."""
        name = self.expect_kind(IDENT).value
        ctype = base
        if self.accept_punct("["):
            length_token = self.peek()
            length = self.parse_const_int()
            if length <= 0:
                raise ParseError("array length must be positive", length_token)
            self.expect_punct("]")
            ctype = ct.ArrayType(ctype, length)
        return ctype, name

    def parse_const_int(self):
        """Parse a compile-time integer (literal or enum constant)."""
        token = self.peek()
        if token.kind == INT:
            self.advance()
            return token.value
        if token.kind == IDENT and token.value in self.enum_consts:
            self.advance()
            return self.enum_consts[token.value]
        raise ParseError("expected integer constant", token)

    # -- top level --------------------------------------------------------

    def parse_program(self):
        program = ast.Program()
        while self.peek().kind != EOF:
            token = self.peek()
            if token.is_keyword("typedef"):
                self.parse_typedef()
            elif token.is_keyword("struct") and self.peek(2).is_punct("{"):
                program.structs.append(self.parse_struct_def())
            elif token.is_keyword("enum"):
                program.enums.append(self.parse_enum_def())
            elif token.is_keyword("const"):
                self.parse_named_const()
            else:
                self.parse_external(program)
        return program

    def parse_typedef(self):
        self.advance()  # typedef
        base = self.parse_type()
        alias = self.expect_kind(IDENT).value
        self.expect_punct(";")
        self.typedefs[alias] = base

    def parse_named_const(self):
        # const int NAME = <int>;
        self.advance()  # const
        self.parse_type()
        name = self.expect_kind(IDENT).value
        self.expect_punct("=")
        value = self.parse_const_int()
        self.expect_punct(";")
        self.enum_consts[name] = value

    def parse_struct_def(self):
        line = self.peek().line
        self.advance()  # struct
        name = self.expect_kind(IDENT).value
        self.expect_punct("{")
        fields = []
        while not self.peek().is_punct("}"):
            base = self.parse_type()
            ctype, fname = self.parse_declarator(base)
            fields.append(ast.Field(ctype, fname, line=self.peek().line))
            while self.accept_punct(","):
                ctype2, fname2 = self.parse_declarator(base)
                fields.append(ast.Field(ctype2, fname2, line=self.peek().line))
            self.expect_punct(";")
        self.expect_punct("}")
        self.expect_punct(";")
        struct_type = ct.StructType(
            name, tuple((f.name, f.ctype) for f in fields)
        )
        self.struct_types[name] = struct_type
        return ast.StructDef(name, fields, line=line)

    def parse_enum_def(self):
        line = self.peek().line
        self.advance()  # enum
        name = None
        if self.peek().kind == IDENT:
            name = self.advance().value
        self.expect_punct("{")
        members = []
        next_value = 0
        while not self.peek().is_punct("}"):
            member = self.expect_kind(IDENT).value
            if self.accept_punct("="):
                next_value = self.parse_const_int()
            members.append((member, next_value))
            self.enum_consts[member] = next_value
            next_value += 1
            if not self.accept_punct(","):
                break
        self.expect_punct("}")
        self.expect_punct(";")
        return ast.EnumDef(name, members, line=line)

    def parse_external(self, program):
        line = self.peek().line
        base = self.parse_type()
        ctype, name = self.parse_declarator(base)
        if self.peek().is_punct("("):
            program.funcs.append(self.parse_func_def(ctype, name, line))
        else:
            init = None
            if self.accept_punct("="):
                init = self.parse_expr()
            self.expect_punct(";")
            program.globals.append(ast.GlobalDecl(ctype, name, init, line=line))

    def parse_func_def(self, ret_type, name, line):
        self.expect_punct("(")
        params = []
        if not self.peek().is_punct(")"):
            if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
                self.advance()
            else:
                params.append(self.parse_param())
                while self.accept_punct(","):
                    params.append(self.parse_param())
        self.expect_punct(")")
        body = self.parse_block()
        return ast.FuncDef(ret_type, name, params, body, line=line)

    def parse_param(self):
        line = self.peek().line
        base = self.parse_type()
        ctype, name = self.parse_declarator(base)
        return ast.Param(ctype, name, line=line)

    # -- statements -------------------------------------------------------

    def parse_block(self):
        line = self.peek().line
        self.expect_punct("{")
        stmts = []
        while not self.peek().is_punct("}"):
            stmts.append(self.parse_stmt())
        self.expect_punct("}")
        return ast.Block(stmts, line=line)

    def parse_stmt(self):
        token = self.peek()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.peek().is_punct(";"):
                value = self.parse_expr()
            self.expect_punct(";")
            return ast.Return(value, line=token.line)
        if token.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.Continue(line=token.line)
        if self.at_type():
            return self.parse_decl()
        expr = self.parse_expr()
        self.expect_punct(";")
        return ast.ExprStmt(expr, line=token.line)

    def parse_decl(self):
        line = self.peek().line
        base = self.parse_type()
        ctype, name = self.parse_declarator(base)
        init = None
        if self.accept_punct("="):
            init = self.parse_expr()
        self.expect_punct(";")
        return ast.Decl(ctype, name, init, line=line)

    def parse_if(self):
        line = self.peek().line
        self.advance()  # if
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        then = self.parse_stmt()
        other = None
        if self.peek().is_keyword("else"):
            self.advance()
            other = self.parse_stmt()
        return ast.If(cond, then, other, line=line)

    def parse_while(self):
        line = self.peek().line
        self.advance()  # while
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_stmt()
        return ast.While(cond, body, line=line)

    def parse_for(self):
        line = self.peek().line
        self.advance()  # for
        self.expect_punct("(")
        init = None
        if not self.peek().is_punct(";"):
            if self.at_type():
                # C99-style: for (int i = 0; ...)
                base = self.parse_type()
                ctype, name = self.parse_declarator(base)
                init_expr = None
                if self.accept_punct("="):
                    init_expr = self.parse_expr()
                init = ast.Decl(ctype, name, init_expr, line=line)
                self.expect_punct(";")
            else:
                init = ast.ExprStmt(self.parse_expr(), line=line)
                self.expect_punct(";")
        else:
            self.expect_punct(";")
        cond = None
        if not self.peek().is_punct(";"):
            cond = self.parse_expr()
        self.expect_punct(";")
        step = None
        if not self.peek().is_punct(")"):
            step = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_stmt()
        return ast.For(init, cond, step, body, line=line)

    # -- expressions (precedence climbing) ---------------------------------

    def parse_expr(self):
        return self.parse_assignment()

    _COMPOUND_OPS = {
        "+=": "+",
        "-=": "-",
        "*=": "*",
        "/=": "/",
        "%=": "%",
        "&=": "&",
        "|=": "|",
        "^=": "^",
        "<<=": "<<",
        ">>=": ">>",
    }

    def parse_assignment(self):
        left = self.parse_conditional()
        token = self.peek()
        if token.is_punct("="):
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(None, left, value, line=token.line)
        if token.kind == PUNCT and token.value in self._COMPOUND_OPS:
            self.advance()
            value = self.parse_assignment()
            op = self._COMPOUND_OPS[token.value]
            return ast.Assign(op, left, value, line=token.line)
        return left

    def parse_conditional(self):
        cond = self.parse_binary(0)
        if self.peek().is_punct("?"):
            line = self.advance().line
            then = self.parse_expr()
            self.expect_punct(":")
            other = self.parse_conditional()
            return ast.Cond(cond, then, other, line=line)
        return cond

    # Binary operator precedence, loosest first.
    _PRECEDENCE = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_binary(self, level):
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = self._PRECEDENCE[level]
        while self.peek().kind == PUNCT and self.peek().value in ops:
            token = self.advance()
            right = self.parse_binary(level + 1)
            left = ast.Binary(token.value, left, right, line=token.line)
        return left

    def parse_unary(self):
        token = self.peek()
        if token.kind == PUNCT and token.value in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(token.value, operand, line=token.line)
        if token.is_punct("++") or token.is_punct("--"):
            self.advance()
            operand = self.parse_unary()
            return ast.IncDec(token.value, operand, True, line=token.line)
        if token.is_keyword("sizeof"):
            self.advance()
            self.expect_punct("(")
            ctype = self.parse_type()
            self.expect_punct(")")
            return ast.SizeOf(ctype, line=token.line)
        if token.is_punct("(") and self._looks_like_cast():
            self.advance()
            ctype = self.parse_type()
            self.expect_punct(")")
            operand = self.parse_unary()
            return ast.Cast(ctype, operand, line=token.line)
        return self.parse_postfix()

    def _looks_like_cast(self):
        """Disambiguate ``(type)expr`` from ``(expr)``."""
        token = self.peek(1)
        if token.kind == KEYWORD and (
            ct.is_base_type(token.value) or token.value == "struct"
        ):
            return True
        return token.kind == IDENT and token.value in self.typedefs

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.is_punct("["):
                self.advance()
                index = self.parse_expr()
                self.expect_punct("]")
                expr = ast.Index(expr, index, line=token.line)
            elif token.is_punct("."):
                self.advance()
                field = self.expect_kind(IDENT).value
                expr = ast.Member(expr, field, False, line=token.line)
            elif token.is_punct("->"):
                self.advance()
                field = self.expect_kind(IDENT).value
                expr = ast.Member(expr, field, True, line=token.line)
            elif token.is_punct("("):
                if not isinstance(expr, ast.Var):
                    raise ParseError("can only call named functions", token)
                self.advance()
                args = []
                if not self.peek().is_punct(")"):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                self.expect_punct(")")
                expr = ast.Call(expr.name, args, line=token.line)
            elif token.is_punct("++") or token.is_punct("--"):
                self.advance()
                expr = ast.IncDec(token.value, expr, False, line=token.line)
            else:
                return expr

    def parse_primary(self):
        token = self.peek()
        if token.kind == INT:
            self.advance()
            return ast.IntLit(token.value, line=token.line)
        if token.kind == CHARLIT:
            self.advance()
            return ast.IntLit(token.value, line=token.line)
        if token.kind == STRINGLIT:
            self.advance()
            return ast.StrLit(token.value, line=token.line)
        if token.kind == IDENT:
            self.advance()
            if token.value in self.enum_consts:
                return ast.IntLit(self.enum_consts[token.value], line=token.line)
            return ast.Var(token.value, line=token.line)
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        raise ParseError("expected an expression", token)


def parse_program(source):
    """Parse MiniC source text into a :class:`repro.minic.ast.Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expr(source):
    """Parse a single MiniC expression (testing helper)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    if parser.peek().kind != EOF:
        raise ParseError("trailing input after expression", parser.peek())
    return expr
