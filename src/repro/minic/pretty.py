"""Pretty printer for MiniC ASTs.

Produces a canonical source rendering used for three purposes: debugging,
round-trip parser tests, and the paper's code-size measurements (Table 3
reports generic-versus-specialized binary sizes; we report the rendered
residual source size, `repro.bench.codesize`).
"""

from repro.minic import ast
from repro.minic import types as ct

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_UNARY_PRECEDENCE = 11
_POSTFIX_PRECEDENCE = 12


def type_str(ctype):
    """Render a CType as MiniC source (without a declarator name)."""
    if isinstance(ctype, ct.PointerType):
        return f"{type_str(ctype.base)} *"
    if isinstance(ctype, ct.StructType):
        return f"struct {ctype.name}"
    return str(ctype)


def declarator_str(ctype, name):
    """Render ``ctype name`` handling array suffixes."""
    if isinstance(ctype, ct.ArrayType):
        return f"{type_str(ctype.base)} {name}[{ctype.length}]"
    return f"{type_str(ctype)} {name}"


def pretty_expr(expr, parent_prec=0):
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr):
    """Return (text, precedence) for an expression node."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value), _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.StrLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"', _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Var):
        return expr.name, _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Unary):
        operand = pretty_expr(expr.operand, _UNARY_PRECEDENCE)
        return f"{expr.op}{operand}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, prec)
        right = pretty_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, ast.Assign):
        target = pretty_expr(expr.target, 1)
        value = pretty_expr(expr.value, 0)
        op = f"{expr.op}=" if expr.op else "="
        return f"{target} {op} {value}", 0
    if isinstance(expr, ast.IncDec):
        target = pretty_expr(expr.target, _POSTFIX_PRECEDENCE)
        if expr.prefix:
            return f"{expr.op}{target}", _UNARY_PRECEDENCE
        return f"{target}{expr.op}", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a, 0) for a in expr.args)
        return f"{expr.name}({args})", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Member):
        obj = pretty_expr(expr.obj, _POSTFIX_PRECEDENCE)
        sep = "->" if expr.arrow else "."
        return f"{obj}{sep}{expr.field}", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Index):
        obj = pretty_expr(expr.obj, _POSTFIX_PRECEDENCE)
        index = pretty_expr(expr.index, 0)
        return f"{obj}[{index}]", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Cast):
        operand = pretty_expr(expr.operand, _UNARY_PRECEDENCE)
        return f"({type_str(expr.ctype)}){operand}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.Cond):
        cond = pretty_expr(expr.cond, 1)
        then = pretty_expr(expr.then, 0)
        other = pretty_expr(expr.other, 0)
        return f"{cond} ? {then} : {other}", 0
    if isinstance(expr, ast.SizeOf):
        return f"sizeof({type_str(expr.ctype)})", _POSTFIX_PRECEDENCE
    raise TypeError(f"unknown expression node: {expr!r}")


class _Printer:
    def __init__(self, indent="    "):
        self.indent = indent
        self.lines = []
        self.depth = 0

    def emit(self, text):
        self.lines.append(f"{self.indent * self.depth}{text}")

    def stmt(self, node):
        if isinstance(node, ast.Block):
            self.emit("{")
            self.depth += 1
            for child in node.stmts:
                self.stmt(child)
            self.depth -= 1
            self.emit("}")
        elif isinstance(node, ast.ExprStmt):
            self.emit(f"{pretty_expr(node.expr)};")
        elif isinstance(node, ast.Decl):
            if node.init is not None:
                self.emit(
                    f"{declarator_str(node.ctype, node.name)} ="
                    f" {pretty_expr(node.init)};"
                )
            else:
                self.emit(f"{declarator_str(node.ctype, node.name)};")
        elif isinstance(node, ast.If):
            self.emit(f"if ({pretty_expr(node.cond)})")
            self._nested(node.then)
            if node.other is not None:
                self.emit("else")
                self._nested(node.other)
        elif isinstance(node, ast.While):
            self.emit(f"while ({pretty_expr(node.cond)})")
            self._nested(node.body)
        elif isinstance(node, ast.For):
            init = ""
            if isinstance(node.init, ast.Decl):
                init = (
                    f"{declarator_str(node.init.ctype, node.init.name)}"
                    f" = {pretty_expr(node.init.init)}"
                    if node.init.init is not None
                    else declarator_str(node.init.ctype, node.init.name)
                )
            elif isinstance(node.init, ast.ExprStmt):
                init = pretty_expr(node.init.expr)
            cond = pretty_expr(node.cond) if node.cond is not None else ""
            step = pretty_expr(node.step) if node.step is not None else ""
            self.emit(f"for ({init}; {cond}; {step})")
            self._nested(node.body)
        elif isinstance(node, ast.Return):
            if node.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {pretty_expr(node.value)};")
        elif isinstance(node, ast.Break):
            self.emit("break;")
        elif isinstance(node, ast.Continue):
            self.emit("continue;")
        else:
            raise TypeError(f"unknown statement node: {node!r}")

    def _nested(self, node):
        if isinstance(node, ast.Block):
            self.stmt(node)
        else:
            self.depth += 1
            self.stmt(node)
            self.depth -= 1

    def struct_def(self, node):
        self.emit(f"struct {node.name} {{")
        self.depth += 1
        for field in node.fields:
            self.emit(f"{declarator_str(field.ctype, field.name)};")
        self.depth -= 1
        self.emit("};")

    def enum_def(self, node):
        name = f" {node.name}" if node.name else ""
        members = ", ".join(f"{m} = {v}" for m, v in node.members)
        self.emit(f"enum{name} {{ {members} }};")

    def func_def(self, node):
        params = ", ".join(
            declarator_str(p.ctype, p.name) for p in node.params
        )
        if not params:
            params = "void"
        self.emit(f"{type_str(node.ret_type)} {node.name}({params})")
        self.stmt(node.body)

    def program(self, node):
        for struct in node.structs:
            self.struct_def(struct)
            self.emit("")
        for enum in node.enums:
            self.enum_def(enum)
            self.emit("")
        for glob in node.globals:
            if glob.init is not None:
                self.emit(
                    f"{declarator_str(glob.ctype, glob.name)} ="
                    f" {pretty_expr(glob.init)};"
                )
            else:
                self.emit(f"{declarator_str(glob.ctype, glob.name)};")
        if node.globals:
            self.emit("")
        for func in node.funcs:
            self.func_def(func)
            self.emit("")


def pretty_stmt(node, indent="    "):
    printer = _Printer(indent)
    printer.stmt(node)
    return "\n".join(printer.lines)


def pretty_func(node, indent="    "):
    printer = _Printer(indent)
    printer.func_def(node)
    return "\n".join(printer.lines)


def pretty_program(program, indent="    "):
    printer = _Printer(indent)
    printer.program(program)
    return "\n".join(printer.lines).rstrip() + "\n"


def source_size(program):
    """Byte size of the canonical rendering (Table 3 proxy)."""
    return len(pretty_program(program).encode("utf-8"))
