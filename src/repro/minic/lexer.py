"""Hand-written lexer for MiniC.

Supports ``//`` and ``/* */`` comments, decimal / hex / octal integer
literals with optional ``u``/``U``/``l``/``L`` suffixes, character
literals, and a ``#define NAME value`` directive that is expanded at the
token level (the Sun RPC sources use ``#define`` for constants such as
``XDR_ENCODE``; MiniC keeps that surface syntax).
"""

from repro.errors import LexError
from repro.minic.tokens import (
    CHARLIT,
    EOF,
    IDENT,
    INT,
    KEYWORD,
    KEYWORDS,
    PUNCT,
    PUNCTUATORS,
    STRINGLIT,
    Token,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


class Lexer:
    """Converts MiniC source text into a list of :class:`Token`."""

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.defines = {}

    def error(self, message):
        raise LexError(message, self.line, self.col)

    def _peek(self, ahead=0):
        index = self.pos + ahead
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    self.error("unterminated block comment")
            elif ch == "#":
                self._lex_directive()
            else:
                return

    def _lex_directive(self):
        start_line = self.line
        line_chars = []
        while self.pos < len(self.source) and self._peek() != "\n":
            line_chars.append(self._peek())
            self._advance()
        text = "".join(line_chars).strip()
        if not text.startswith("#define"):
            raise LexError(f"unsupported directive: {text!r}", start_line, 1)
        parts = text[len("#define"):].split(None, 1)
        if len(parts) != 2:
            raise LexError(f"malformed #define: {text!r}", start_line, 1)
        name, value = parts
        sub_tokens = Lexer(value).tokenize()
        # Drop the EOF marker from the expansion.
        self.defines[name] = [t for t in sub_tokens if t.kind != EOF]

    def _lex_number(self):
        line, col = self.line, self.col
        start = self.pos
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            while self._peek().isalnum():
                self._advance()
            text = self.source[start:self.pos]
            value = int(text.rstrip("uUlL"), 16)
        else:
            while self._peek().isdigit():
                self._advance()
            while self._peek() and self._peek() in "uUlL":
                self._advance()
            text = self.source[start:self.pos].rstrip("uUlL")
            if len(text) > 1 and text.startswith("0"):
                value = int(text, 8)
            else:
                value = int(text, 10)
        return Token(INT, value, line, col)

    def _lex_ident(self):
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        if text in KEYWORDS:
            return Token(KEYWORD, text, line, col)
        return Token(IDENT, text, line, col)

    def _lex_char(self):
        line, col = self.line, self.col
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                self.error(f"unknown escape: \\{escape}")
            value = ord(_ESCAPES[escape])
            self._advance()
        else:
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            self.error("unterminated character literal")
        self._advance()
        return Token(CHARLIT, value, line, col)

    def _lex_string(self):
        line, col = self.line, self.col
        self._advance()  # opening quote
        chars = []
        while True:
            ch = self._peek()
            if ch == "":
                self.error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escape = self._peek()
                if escape not in _ESCAPES:
                    self.error(f"unknown escape: \\{escape}")
                chars.append(_ESCAPES[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        return Token(STRINGLIT, "".join(chars), line, col)

    def _lex_punct(self):
        line, col = self.line, self.col
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(PUNCT, punct, line, col)
        self.error(f"unexpected character {self._peek()!r}")

    def tokenize(self):
        """Lex the whole input, returning tokens terminated by EOF."""
        tokens = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                tokens.append(Token(EOF, None, self.line, self.col))
                return tokens
            ch = self._peek()
            if ch.isdigit():
                tokens.append(self._lex_number())
            elif ch.isalpha() or ch == "_":
                token = self._lex_ident()
                if token.kind == IDENT and token.value in self.defines:
                    tokens.extend(self.defines[token.value])
                else:
                    tokens.append(token)
            elif ch == "'":
                tokens.append(self._lex_char())
            elif ch == '"':
                tokens.append(self._lex_string())
            else:
                tokens.append(self._lex_punct())


def tokenize(source):
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
