"""MiniC — the C subset on which the Tempo specializer operates.

MiniC is large enough to express the Sun RPC marshaling micro-layers
statement-for-statement (structs, pointers, pointer arithmetic over
buffers, compound assignment, ``for``/``while`` loops, function calls)
and small enough that a complete reference interpreter, type checker,
pretty printer and Python backend fit in a few focused modules.

Public entry points:

* :func:`repro.minic.parser.parse_program` — source text to AST.
* :class:`repro.minic.interp.Interpreter` — reference interpreter with a
  byte-accurate buffer model and an optional instruction-cost trace.
* :func:`repro.minic.compile_py.compile_program` — compile a (generic or
  residual) MiniC program to executable Python.
* :func:`repro.minic.pretty.pretty_program` — canonical source rendering,
  also used for the paper's code-size measurements (Table 3).
"""

from repro.minic.parser import parse_program
from repro.minic.pretty import pretty_program
from repro.minic.typecheck import typecheck_program

__all__ = ["parse_program", "pretty_program", "typecheck_program"]
