"""The MiniC type system.

MiniC models a 1997 32-bit machine: ``int``, ``long``, ``unsigned`` and
``u_long`` are all 4 bytes (as on SPARC and i386 of the period), ``char``
is 1 byte, pointers are 4 bytes.  ``bool_t`` is the Sun RPC alias for
``int``.  Arithmetic wraps at 32 bits with C semantics.
"""

from dataclasses import dataclass, field

from repro.errors import TypeCheckError


@dataclass(frozen=True)
class CType:
    """Base class for MiniC types."""

    def size(self):
        raise NotImplementedError

    @property
    def is_pointer(self):
        return isinstance(self, PointerType)

    @property
    def is_integer(self):
        return isinstance(self, IntType)

    @property
    def is_void(self):
        return isinstance(self, VoidType)


@dataclass(frozen=True)
class VoidType(CType):
    def size(self):
        raise TypeCheckError("void has no size")

    def __str__(self):
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    name: str
    width: int  # bytes
    signed: bool

    def size(self):
        return self.width

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    base: CType

    def size(self):
        return 4

    def __str__(self):
        return f"{self.base} *"


@dataclass(frozen=True)
class ArrayType(CType):
    base: CType
    length: int

    def size(self):
        return self.base.size() * self.length

    def __str__(self):
        return f"{self.base} [{self.length}]"


@dataclass(frozen=True)
class StructType(CType):
    """A struct type; fields is a tuple of (name, CType)."""

    name: str
    fields: tuple = field(default=(), compare=False)

    def size(self):
        return sum(ftype.size() for _, ftype in self.fields)

    def field_type(self, name):
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise TypeCheckError(f"struct {self.name} has no field {name!r}")

    def field_offset(self, name):
        offset = 0
        for fname, ftype in self.fields:
            if fname == name:
                return offset
            offset += ftype.size()
        raise TypeCheckError(f"struct {self.name} has no field {name!r}")

    def has_field(self, name):
        return any(fname == name for fname, _ in self.fields)

    def __str__(self):
        return f"struct {self.name}"


@dataclass(frozen=True)
class FuncType(CType):
    ret: CType
    params: tuple

    def size(self):
        raise TypeCheckError("function type has no size")

    def __str__(self):
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret} (*)({params})"


VOID = VoidType()
INT = IntType("int", 4, True)
LONG = IntType("long", 4, True)
UNSIGNED = IntType("unsigned", 4, False)
U_INT = IntType("u_int", 4, False)
U_LONG = IntType("u_long", 4, False)
CHAR = IntType("char", 1, True)
BOOL_T = IntType("bool_t", 4, True)
#: ``caddr_t`` is Sun's "core address" — an untyped byte pointer.
CADDR_T = PointerType(CHAR)

_BASE_TYPES = {
    "void": VOID,
    "int": INT,
    "long": LONG,
    "unsigned": UNSIGNED,
    "u_int": U_INT,
    "u_long": U_LONG,
    "char": CHAR,
    "bool_t": BOOL_T,
    "caddr_t": CADDR_T,
}


def base_type(name):
    """Look up a named base type (KeyError on unknown names)."""
    return _BASE_TYPES[name]


def is_base_type(name):
    return name in _BASE_TYPES


_INT_MASK = {1: 0xFF, 4: 0xFFFFFFFF}


def wrap_int(value, ctype):
    """Wrap a Python int to the C value range of ``ctype``."""
    if not isinstance(ctype, IntType):
        return value
    mask = _INT_MASK[ctype.width]
    value &= mask
    if ctype.signed and value > mask >> 1:
        value -= mask + 1
    return value


def common_arith_type(left, right):
    """Usual arithmetic conversions, simplified to the 32-bit world."""
    if isinstance(left, PointerType):
        return left
    if isinstance(right, PointerType):
        return right
    if isinstance(left, IntType) and isinstance(right, IntType):
        if not left.signed or not right.signed:
            return UNSIGNED
        return INT if left.width <= 4 and right.width <= 4 else LONG
    raise TypeCheckError(f"no common type for {left} and {right}")
