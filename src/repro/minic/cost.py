"""Instruction-cost events emitted by the MiniC interpreter.

The reference interpreter optionally records a flat event trace while it
executes.  The platform simulator (:mod:`repro.simulator`) replays the
trace against a machine model (per-class cycle costs plus I/D caches) to
produce timings for the paper's two 1997 platforms.

Event encoding is a tuple ``(kind, code_addr, mem_addr, size)``:

* ``kind`` — one of the small-int constants below;
* ``code_addr`` — synthetic instruction address of the AST node (drives
  the instruction cache; unrolled residual code has a large footprint);
* ``mem_addr`` — data address for LOAD/STORE (0 otherwise);
* ``size`` — access size in bytes for LOAD/STORE (0 otherwise).
"""

# Event kinds.
IFETCH = 0   # one executed "instruction" (per evaluated AST node)
LOAD = 1     # data load from memory (addressable cells / buffers)
STORE = 2    # data store to memory
ALU = 3      # add/sub/logic/compare
MUL = 4
DIV = 5
BRANCH = 6   # conditional branch (if/while/for/&&/||/?:)
CALL = 7     # function call linkage
RET = 8
BYTESWAP = 9  # htonl/ntohl work on little-endian hosts
NET_SEND = 10  # datagram handed to the NIC (size = payload bytes)
NET_RECV = 11  # datagram received from the NIC

KIND_NAMES = {
    IFETCH: "ifetch",
    LOAD: "load",
    STORE: "store",
    ALU: "alu",
    MUL: "mul",
    DIV: "div",
    BRANCH: "branch",
    CALL: "call",
    RET: "ret",
    BYTESWAP: "byteswap",
    NET_SEND: "net_send",
    NET_RECV: "net_recv",
}


class Trace:
    """A recorded instruction/memory event stream.

    The interpreter appends to :attr:`events`; the simulator replays
    them.  ``counts()`` summarizes by kind for quick assertions.
    """

    __slots__ = ("events",)

    def __init__(self):
        self.events = []

    def emit(self, kind, code_addr, mem_addr=0, size=0):
        self.events.append((kind, code_addr, mem_addr, size))

    def __len__(self):
        return len(self.events)

    def counts(self):
        """Return {kind name: count} over the trace."""
        totals = {}
        for kind, _, _, _ in self.events:
            name = KIND_NAMES[kind]
            totals[name] = totals.get(name, 0) + 1
        return totals

    def memory_traffic(self):
        """Total bytes moved by LOAD and STORE events."""
        return sum(
            size for kind, _, _, size in self.events if kind in (LOAD, STORE)
        )

    def extend(self, other):
        self.events.extend(other.events)


class CodeLayout:
    """Assigns a synthetic, stable code address to every AST node.

    Addresses are laid out in AST order at 2 bytes per node — roughly
    one RISC instruction (4 bytes) per two AST nodes, matching compiled
    code density — so a residual program with an unrolled loop occupies
    proportionally more of the simulated instruction cache, the effect
    behind the paper's Table 4.
    """

    WORD = 2

    def __init__(self, program):
        from repro.minic.ast import walk

        self.addr_of_uid = {}
        next_addr = 0x0001_0000
        for func in program.funcs:
            for node in walk(func):
                if node.uid not in self.addr_of_uid:
                    self.addr_of_uid[node.uid] = next_addr
                    next_addr += self.WORD
        self.code_bytes = next_addr - 0x0001_0000

    def addr(self, node):
        return self.addr_of_uid.get(node.uid, 0)
