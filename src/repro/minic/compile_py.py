"""Compile MiniC programs to executable Python.

Both the generic Sun RPC micro-layers and the Tempo residual programs are
compiled with this backend, which gives an apples-to-apples live-Python
performance comparison (the residual program wins because the *code* is
simpler, not because it runs on a different substrate).

The translation is statement-oriented.  C expressions with side effects
(assignment expressions, ``++``, short-circuit operators with effectful
right-hand sides) are flattened into prelude statements feeding temporary
variables, so the generated Python is simple and debuggable.

Pointers/structs/buffers are represented by :mod:`repro.minic.pyruntime`
values; struct types become generated Python classes with ``__slots__``.
"""

from repro.errors import CompileError
from repro.minic import ast
from repro.minic import builtins
from repro.minic import types as ct
from repro.minic.typecheck import typecheck_program

_RT = "_rt"

_BUILTIN_MAP = {
    "htonl": f"{_RT}.htonl",
    "ntohl": f"{_RT}.ntohl",
    "htons": f"{_RT}.htons",
    "ntohs": f"{_RT}.ntohs",
    "bzero": f"{_RT}.bzero",
    "memcpy": f"{_RT}.memcpy",
    "abort": f"{_RT}.c_abort",
    # Resolved inside the generated module namespace; callers inject a
    # real transport via CompiledModule.attach_network().
    "net_sendrecv": "_net_sendrecv",
}


def _struct_class_name(name):
    return f"S_{name}"


class _FuncCompiler:
    """Compiles one FuncDef into Python source lines."""

    def __init__(self, module, func):
        self.module = module
        self.func = func
        self.types = module.typeinfo.expr_types
        self.lines = []
        self.depth = 1
        self.temp_counter = 0
        #: stack of scope dicts: MiniC name -> python name
        self.scopes = [{}]
        #: python names already used in this function
        self.used_names = set()
        #: MiniC locals that are boxed because their address is taken
        self.boxed = set()
        #: loop context stack: "while" (continue ok) or "for" (see below)
        self.loop_stack = []
        from repro.minic.interp import _address_taken_names

        self.address_taken = _address_taken_names(func)

    # -- emit helpers ---------------------------------------------------

    def emit(self, text):
        self.lines.append("    " * self.depth + text)

    def temp(self):
        self.temp_counter += 1
        return f"_t{self.temp_counter}"

    def py_name(self, minic_name):
        for scope in reversed(self.scopes):
            if minic_name in scope:
                return scope[minic_name]
        if minic_name in self.module.global_names:
            return self.module.global_names[minic_name]
        raise CompileError(f"undefined variable {minic_name!r}")

    def declare(self, minic_name):
        candidate = minic_name
        suffix = 2
        while candidate in self.used_names or candidate in _RESERVED:
            candidate = f"{minic_name}__{suffix}"
            suffix += 1
        self.used_names.add(candidate)
        self.scopes[-1][minic_name] = candidate
        return candidate

    # -- type helpers ------------------------------------------------------

    def type_of(self, expr):
        return self.types.get(expr.uid, ct.INT)

    @staticmethod
    def _wrap_fn(ctype):
        if isinstance(ctype, ct.IntType):
            if ctype.width == 1:
                return f"{_RT}.wrap_i8" if ctype.signed else "lambda v: v & 0xFF"
            return f"{_RT}.wrap_i32" if ctype.signed else f"{_RT}.wrap_u32"
        return None

    def wrap(self, expr_str, ctype):
        fn = self._wrap_fn(ctype)
        if fn is None or fn.startswith("lambda"):
            if fn is not None:
                return f"(({expr_str}) & 0xFF)"
            return expr_str
        return f"{fn}({expr_str})"

    # -- compilation entry -------------------------------------------------

    def compile(self):
        params = []
        self.scopes.append({})
        for param in self.func.params:
            name = self.declare(param.name)
            params.append(name)
        header = f"def {self.module.func_name(self.func.name)}({', '.join(params)}):"
        for param in self.func.params:
            if param.name in self.address_taken:
                self.boxed.add(self.py_name(param.name))
                name = self.py_name(param.name)
                self.emit(f"{name} = [{name}]")
        self.stmt(self.func.body, new_scope=False)
        if not self.lines:
            self.emit("pass")
        if not self.func.ret_type.is_void:
            # C function that may fall off the end; mirror the interpreter.
            pass
        return [header] + self.lines

    # -- expressions --------------------------------------------------------
    #
    # ``expr`` returns a Python expression string; any side effects are
    # emitted as prelude statements before the returned expression is
    # evaluated, preserving C's left-to-right evaluation of our subset.

    def expr(self, node):
        if isinstance(node, ast.IntLit):
            return repr(node.value)
        if isinstance(node, ast.StrLit):
            return repr(node.value)
        if isinstance(node, ast.Var):
            name = self.py_name(node.name)
            if name in self.boxed:
                return f"{name}[0]"
            ntype = self.type_of(node)
            if isinstance(ntype, ct.ArrayType):
                return name
            return name
        if isinstance(node, ast.Unary):
            return self._unary(node)
        if isinstance(node, ast.Binary):
            return self._binary(node)
        if isinstance(node, ast.Assign):
            return self._assign(node)
        if isinstance(node, ast.IncDec):
            return self._incdec(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Member):
            obj = self.expr(node.obj)
            return f"{obj}.{node.field}"
        if isinstance(node, ast.Index):
            return self._index_read(node)
        if isinstance(node, ast.Cast):
            return self._cast(node)
        if isinstance(node, ast.Cond):
            return self._cond(node)
        if isinstance(node, ast.SizeOf):
            return repr(node.ctype.size())
        raise CompileError(f"cannot compile expression {node!r}")

    def _truthy(self, expr_str, node):
        ntype = self.type_of(node)
        if isinstance(ntype, (ct.PointerType, ct.ArrayType)):
            return f"{_RT}.truthy({expr_str})"
        return f"({expr_str}) != 0"

    def _unary(self, node):
        if node.op == "&":
            return self._address_of(node.operand)
        if node.op == "*":
            pointer_type = self.type_of(node.operand)
            operand = self.expr(node.operand)
            if isinstance(pointer_type, ct.PointerType) and isinstance(
                pointer_type.base, ct.StructType
            ):
                return operand  # struct pointers are the object itself
            return f"{operand}.get()"
        operand = self.expr(node.operand)
        if node.op == "-":
            return self.wrap(f"-({operand})", self.type_of(node))
        if node.op == "~":
            return self.wrap(f"~({operand})", self.type_of(node))
        if node.op == "!":
            return f"(0 if {self._truthy(operand, node.operand)} else 1)"
        raise CompileError(f"unknown unary {node.op!r}")

    def _address_of(self, target):
        if isinstance(target, ast.Var):
            name = self.py_name(target.name)
            ttype = self.type_of(target)
            if isinstance(ttype, ct.ArrayType):
                return f"{_RT}.ElemPtr({name}, 0)"
            if isinstance(ttype, ct.StructType):
                return name
            if name not in self.boxed:
                raise CompileError(
                    f"address of unboxed local {target.name!r}"
                    " (address-taken analysis missed it)"
                )
            return f"{_RT}.VarPtr({name})"
        if isinstance(target, ast.Member):
            obj = self.expr(target.obj)
            ftype = self.type_of(target)
            if isinstance(ftype, (ct.StructType,)):
                return f"{obj}.{target.field}"
            if isinstance(ftype, ct.ArrayType):
                return f"{_RT}.ElemPtr({obj}.{target.field}, 0)"
            return f"{_RT}.FieldPtr({obj}, {target.field!r})"
        if isinstance(target, ast.Index):
            base_type = self.type_of(target.obj)
            index = self.expr(target.index)
            if isinstance(base_type, ct.ArrayType):
                base = self.expr(target.obj)
                return f"{_RT}.ElemPtr({base}, {index})"
            base = self.expr(target.obj)
            return f"{_RT}.ptr_add({base}, {index})"
        if isinstance(target, ast.Unary) and target.op == "*":
            return self.expr(target.operand)
        raise CompileError(f"cannot take address of {target!r}")

    def _index_read(self, node):
        base_type = self.type_of(node.obj)
        base = self.expr(node.obj)
        index = self.expr(node.index)
        if isinstance(base_type, ct.ArrayType):
            if isinstance(base_type.base, ct.StructType):
                return f"{base}[{index}]"
            return f"{base}[{index}]"
        return f"{_RT}.ptr_add({base}, {index}).get()"

    def _binary(self, node):
        op = node.op
        if op in ("&&", "||"):
            return self._short_circuit(node)
        left_type = self.type_of(node.left)
        right_type = self.type_of(node.right)
        left = self.expr(node.left)
        right = self.expr(node.right)
        left_ptr = isinstance(left_type, (ct.PointerType, ct.ArrayType))
        right_ptr = isinstance(right_type, (ct.PointerType, ct.ArrayType))
        if left_ptr and isinstance(left_type, ct.ArrayType):
            left = f"{_RT}.ElemPtr({left}, 0)"
        if right_ptr and isinstance(right_type, ct.ArrayType):
            right = f"{_RT}.ElemPtr({right}, 0)"
        if left_ptr or right_ptr:
            return self._pointer_binary(op, left, right, left_ptr, right_ptr)
        result_type = self.type_of(node)
        return self._int_binary(op, left, right, result_type)

    def _pointer_binary(self, op, left, right, left_ptr, right_ptr):
        if op == "+":
            if left_ptr:
                return f"{_RT}.ptr_add({left}, {right})"
            return f"{_RT}.ptr_add({right}, {left})"
        if op == "-":
            if left_ptr and right_ptr:
                return f"{_RT}.ptr_diff({left}, {right})"
            return f"{_RT}.ptr_add({left}, -({right}))"
        if op == "==":
            return f"(1 if ({left}) == ({right}) else 0)"
        if op == "!=":
            return f"(1 if ({left}) != ({right}) else 0)"
        raise CompileError(f"unsupported pointer operation {op!r}")

    def _int_binary(self, op, left, right, result_type):
        simple = {
            "+": f"({left}) + ({right})",
            "-": f"({left}) - ({right})",
            "*": f"({left}) * ({right})",
            "&": f"({left}) & ({right})",
            "|": f"({left}) | ({right})",
            "^": f"({left}) ^ ({right})",
            "<<": f"({left}) << (({right}) & 31)",
        }
        if op in simple:
            return self.wrap(simple[op], result_type)
        if op == "/":
            return f"{_RT}.c_div({left}, {right})"
        if op == "%":
            return f"{_RT}.c_mod({left}, {right})"
        if op == ">>":
            if isinstance(result_type, ct.IntType) and not result_type.signed:
                return f"((({left}) & 0xFFFFFFFF) >> (({right}) & 31))"
            return f"(({left}) >> (({right}) & 31))"
        comparisons = {
            "==": "==",
            "!=": "!=",
            "<": "<",
            "<=": "<=",
            ">": ">",
            ">=": ">=",
        }
        if op in comparisons:
            return f"(1 if ({left}) {comparisons[op]} ({right}) else 0)"
        raise CompileError(f"unknown binary {op!r}")

    def _has_side_effects(self, node):
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.IncDec, ast.Call)):
                return True
        return False

    def _short_circuit(self, node):
        left = self.expr(node.left)
        left_test = self._truthy(left, node.left)
        if not self._has_side_effects(node.right):
            right = self.expr(node.right)
            right_test = self._truthy(right, node.right)
            joiner = "and" if node.op == "&&" else "or"
            return f"(1 if ({left_test}) {joiner} ({right_test}) else 0)"
        # Effectful right side: materialize with a conditional prelude.
        temp = self.temp()
        self.emit(f"{temp} = 1 if {left_test} else 0")
        guard = f"if {temp}:" if node.op == "&&" else f"if not {temp}:"
        self.emit(guard)
        self.depth += 1
        right = self.expr(node.right)
        self.emit(f"{temp} = 1 if {self._truthy(right, node.right)} else 0")
        self.depth -= 1
        return temp

    def _cond(self, node):
        effectful = self._has_side_effects(node.then) or self._has_side_effects(
            node.other
        )
        cond = self.expr(node.cond)
        cond_test = self._truthy(cond, node.cond)
        if not effectful:
            then = self.expr(node.then)
            other = self.expr(node.other)
            return f"(({then}) if ({cond_test}) else ({other}))"
        temp = self.temp()
        self.emit(f"if {cond_test}:")
        self.depth += 1
        then = self.expr(node.then)
        self.emit(f"{temp} = {then}")
        self.depth -= 1
        self.emit("else:")
        self.depth += 1
        other = self.expr(node.other)
        self.emit(f"{temp} = {other}")
        self.depth -= 1
        return temp

    def _call(self, node):
        args = [self.expr(arg) for arg in node.args]
        if builtins.is_builtin(node.name):
            target = _BUILTIN_MAP[node.name]
        else:
            target = self.module.func_name(node.name)
        call = f"{target}({', '.join(args)})"
        ret = self.module.typeinfo.func_types[node.name].ret
        if ret.is_void:
            # Void calls in expression position still need a value slot.
            temp = self.temp()
            self.emit(f"{call}")
            self.emit(f"{temp} = 0")
            return temp
        temp = self.temp()
        self.emit(f"{temp} = {call}")
        return temp

    def _cast(self, node):
        value = self.expr(node.operand)
        target = node.ctype
        operand_type = self.type_of(node.operand)
        if isinstance(target, ct.PointerType):
            if isinstance(operand_type, (ct.PointerType, ct.ArrayType)):
                if target.base.is_integer:
                    return (
                        f"{_RT}.cast_ptr({value}, {target.base.size()},"
                        f" {target.base.signed})"
                    )
                return value
            return value
        if target.is_integer:
            return self.wrap(value, target)
        return value

    # -- assignment ----------------------------------------------------------

    def _store(self, target, value_str):
        """Emit a store of ``value_str`` into lvalue ``target``; return an
        expression that re-reads the stored value."""
        ttype = self.type_of(target)
        wrapped = (
            self.wrap(value_str, ttype) if ttype.is_integer else value_str
        )
        if isinstance(target, ast.Var):
            name = self.py_name(target.name)
            if name in self.boxed:
                self.emit(f"{name}[0] = {wrapped}")
                return f"{name}[0]"
            self.emit(f"{name} = {wrapped}")
            return name
        if isinstance(target, ast.Member):
            obj = self.expr(target.obj)
            self.emit(f"{obj}.{target.field} = {wrapped}")
            return f"{obj}.{target.field}"
        if isinstance(target, ast.Index):
            base_type = self.type_of(target.obj)
            base = self.expr(target.obj)
            index = self.expr(target.index)
            if isinstance(base_type, ct.ArrayType):
                self.emit(f"{base}[{index}] = {wrapped}")
                return f"{base}[{index}]"
            temp = self.temp()
            self.emit(f"{temp} = {_RT}.ptr_add({base}, {index})")
            self.emit(f"{temp}.set({wrapped})")
            return f"{temp}.get()"
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self.expr(target.operand)
            temp = self.temp()
            self.emit(f"{temp} = {pointer}")
            self.emit(f"{temp}.set({wrapped})")
            return f"{temp}.get()"
        raise CompileError(f"cannot store to {target!r}")

    def _read_lvalue(self, target):
        ttype = self.type_of(target)
        if isinstance(target, ast.Unary) and target.op == "*":
            return f"{self.expr(target.operand)}.get()"
        if isinstance(target, ast.Index) and not isinstance(
            self.type_of(target.obj), ct.ArrayType
        ):
            base = self.expr(target.obj)
            index = self.expr(target.index)
            return f"{_RT}.ptr_add({base}, {index}).get()"
        del ttype
        return self.expr(target)

    def _assign(self, node):
        if node.op is None:
            value = self.expr(node.value)
            return self._store(node.target, value)
        current = self._read_lvalue(node.target)
        temp = self.temp()
        self.emit(f"{temp} = {current}")
        value = self.expr(node.value)
        target_type = self.type_of(node.target)
        if isinstance(target_type, ct.PointerType):
            if node.op == "+":
                combined = f"{_RT}.ptr_add({temp}, {value})"
            elif node.op == "-":
                combined = f"{_RT}.ptr_add({temp}, -({value}))"
            else:
                raise CompileError(f"pointer {node.op}= unsupported")
        else:
            combined = self._int_binary(node.op, temp, f"({value})", target_type)
        return self._store(node.target, combined)

    def _incdec(self, node):
        current = self._read_lvalue(node.target)
        before = self.temp()
        self.emit(f"{before} = {current}")
        delta = "1" if node.op == "++" else "-1"
        target_type = self.type_of(node.target)
        if isinstance(target_type, ct.PointerType):
            updated = f"{_RT}.ptr_add({before}, {delta})"
        else:
            updated = self._int_binary("+", before, delta, target_type)
        after = self._store(node.target, updated)
        return after if node.prefix else before

    # -- statements ------------------------------------------------------------

    def stmt(self, node, new_scope=True):
        if isinstance(node, ast.Block):
            if new_scope:
                self.scopes.append({})
            self._stmts_with_batching(node.stmts)
            if new_scope:
                self.scopes.pop()
            return
        if isinstance(node, ast.ExprStmt):
            value = self.expr(node.expr)
            if not value.isidentifier():
                self.emit(f"{value}")
            return
        if isinstance(node, ast.Decl):
            self._decl(node)
            return
        if isinstance(node, ast.If):
            cond = self.expr(node.cond)
            self.emit(f"if {self._truthy(cond, node.cond)}:")
            self.depth += 1
            self.stmt(node.then)
            self._ensure_body()
            self.depth -= 1
            if node.other is not None:
                self.emit("else:")
                self.depth += 1
                self.stmt(node.other)
                self._ensure_body()
                self.depth -= 1
            return
        if isinstance(node, ast.While):
            self.emit("while True:")
            self.depth += 1
            cond = self.expr(node.cond)
            self.emit(f"if not ({self._truthy(cond, node.cond)}):")
            self.emit("    break")
            self.loop_stack.append("while")
            self.stmt(node.body)
            self.loop_stack.pop()
            self.depth -= 1
            return
        if isinstance(node, ast.For):
            self._for(node)
            return
        if isinstance(node, ast.Return):
            if node.value is None:
                self.emit("return None")
            else:
                value = self.expr(node.value)
                self.emit(f"return {value}")
            return
        if isinstance(node, ast.Break):
            self._break()
            return
        if isinstance(node, ast.Continue):
            self._continue()
            return
        raise CompileError(f"cannot compile statement {node!r}")

    # -- cursor batching -------------------------------------------------
    #
    # Tempo residual code marshals through a byte cursor: runs of
    #     *(long *)X = <value>;  X = X + 4;
    # pairs (and the mirrored load form).  Translating each pair through
    # the general pointer runtime costs several object allocations per
    # element; recognizing whole runs and emitting one struct.pack_into /
    # unpack_from is the Python analogue of what ``gcc -O2`` does to the
    # residual straight-line C in the paper.

    _MIN_BATCH = 3

    def _stmts_with_batching(self, stmts):
        from repro.minic.pretty import pretty_expr

        index = 0
        total = len(stmts)
        while index < total:
            run = self._collect_cursor_run(stmts, index, pretty_expr)
            if run is not None and len(run["items"]) >= self._MIN_BATCH:
                self._emit_cursor_run(run)
                index = run["end"]
                continue
            self.stmt(stmts[index])
            index += 1

    @staticmethod
    def _unwrap_casts(expr):
        while isinstance(expr, ast.Cast):
            expr = expr.operand
        return expr

    def _match_cursor_store(self, stmt):
        """Match ``*(int32 *)CURSOR = VALUE;`` -> (cursor, value_expr)."""
        if not isinstance(stmt, ast.ExprStmt):
            return None
        expr = stmt.expr
        if not (isinstance(expr, ast.Assign) and expr.op is None):
            return None
        target = expr.target
        if not (isinstance(target, ast.Unary) and target.op == "*"):
            return None
        inner = target.operand
        if not (
            isinstance(inner, ast.Cast)
            and isinstance(inner.ctype, ct.PointerType)
            and inner.ctype.base.is_integer
            and inner.ctype.base.size() == 4
        ):
            return None
        cursor = inner.operand
        value = self._unwrap_casts(expr.value)
        if isinstance(value, ast.Call):
            if value.name not in ("htonl", "ntohl"):
                return None
            value = self._unwrap_casts(value.args[0])
            if isinstance(value, ast.Call):
                return None
        return cursor, value

    def _match_cursor_load(self, stmt):
        """Match ``TARGET = ntohl(*(int32 *)CURSOR);`` ->
        (cursor, target_lvalue)."""
        if not isinstance(stmt, ast.ExprStmt):
            return None
        expr = stmt.expr
        if not (isinstance(expr, ast.Assign) and expr.op is None):
            return None
        value = self._unwrap_casts(expr.value)
        if isinstance(value, ast.Call):
            if value.name not in ("ntohl", "htonl"):
                return None
            value = self._unwrap_casts(value.args[0])
        if not (isinstance(value, ast.Unary) and value.op == "*"):
            return None
        inner = value.operand
        if not (
            isinstance(inner, ast.Cast)
            and isinstance(inner.ctype, ct.PointerType)
            and inner.ctype.base.is_integer
            and inner.ctype.base.size() == 4
        ):
            return None
        if isinstance(expr.target, (ast.Call,)):
            return None
        return inner.operand, expr.target

    @staticmethod
    def _match_cursor_bump(stmt, cursor_text, pretty_expr):
        """Match ``CURSOR = CURSOR + 4;``."""
        if not isinstance(stmt, ast.ExprStmt):
            return False
        expr = stmt.expr
        if not (isinstance(expr, ast.Assign) and expr.op is None):
            return False
        if pretty_expr(expr.target) != cursor_text:
            return False
        value = expr.value
        return (
            isinstance(value, ast.Binary)
            and value.op == "+"
            and pretty_expr(value.left) == cursor_text
            and isinstance(value.right, ast.IntLit)
            and value.right.value == 4
        )

    def _collect_cursor_run(self, stmts, start, pretty_expr):
        """Collect a maximal (store|load, bump) run over one cursor."""
        first = stmts[start]
        store = self._match_cursor_store(first)
        load = None if store else self._match_cursor_load(first)
        if store is None and load is None:
            return None
        cursor = store[0] if store else load[0]
        cursor_text = pretty_expr(cursor)
        kind = "store" if store else "load"
        items = []
        index = start
        while index + 1 < len(stmts):
            matched = (
                self._match_cursor_store(stmts[index])
                if kind == "store"
                else self._match_cursor_load(stmts[index])
            )
            if matched is None or pretty_expr(matched[0]) != cursor_text:
                break
            if not self._match_cursor_bump(
                stmts[index + 1], cursor_text, pretty_expr
            ):
                break
            items.append(matched[1])
            index += 2
        if not items:
            return None
        return {
            "kind": kind,
            "cursor": cursor,
            "items": items,
            "end": index,
        }

    def _emit_cursor_run(self, run):
        count = len(run["items"])
        cursor = self.expr(run["cursor"])
        temp = self.temp()
        self.emit(f"{temp} = {cursor}")
        if run["kind"] == "store":
            values = ", ".join(
                f"({self.expr(item)}) & 0xFFFFFFFF" for item in run["items"]
            )
            self.emit(
                f"_struct.pack_into('>{count}I', {temp}.buffer.data,"
                f" {temp}.offset, {values})"
            )
        else:
            vals = self.temp()
            self.emit(
                f"{vals} = _struct.unpack_from('>{count}i',"
                f" {temp}.buffer.data, {temp}.offset)"
            )
            slice_target = self._consecutive_index_targets(run["items"])
            if slice_target is not None:
                base, start_index = slice_target
                base_code = self.expr(base)
                self.emit(
                    f"{base_code}[{start_index}:{start_index + count}] ="
                    f" {vals}"
                )
            else:
                for position, target in enumerate(run["items"]):
                    self._store(target, f"{vals}[{position}]")
        # One cursor update for the whole run.
        bump = self.temp()
        self.emit(f"{bump} = {temp}.add({4 * count})")
        self._store_simple(run["cursor"], bump)

    def _consecutive_index_targets(self, targets):
        """If every target is ``BASE[k]`` on one array with consecutive
        literal indices, return (base_node, first_index)."""
        from repro.minic.pretty import pretty_expr

        base_text = None
        first = None
        for position, target in enumerate(targets):
            if not (
                isinstance(target, ast.Index)
                and isinstance(target.index, ast.IntLit)
            ):
                return None
            if not isinstance(
                self.type_of(target.obj), (ct.ArrayType,)
            ):
                return None
            text = pretty_expr(target.obj)
            if base_text is None:
                base_text = text
                first = target.index.value
            elif text != base_text or target.index.value != first + position:
                return None
        return targets[0].obj, first

    def _store_simple(self, target, value_name):
        """Store a precomputed value into an lvalue node."""
        self._store(target, value_name)

    def _ensure_body(self):
        """Guarantee the just-opened suite is non-empty."""
        last = self.lines[-1] if self.lines else ""
        if last.endswith(":"):
            self.emit("pass")

    def _decl(self, node):
        name = self.declare(node.name)
        boxed = node.name in self.address_taken and not isinstance(
            node.ctype, (ct.StructType, ct.ArrayType)
        )
        default = self.module.default_value(node.ctype)
        if node.init is not None:
            init = self.expr(node.init)
            if node.ctype.is_integer:
                init = self.wrap(init, node.ctype)
        else:
            init = default
        if boxed:
            self.boxed.add(name)
            self.emit(f"{name} = [{init}]")
        else:
            self.emit(f"{name} = {init}")

    def _for(self, node):
        self.scopes.append({})
        if isinstance(node.init, ast.Decl):
            self._decl(node.init)
        elif isinstance(node.init, ast.ExprStmt):
            value = self.expr(node.init.expr)
            if not value.isidentifier():
                self.emit(value)
        uses_break = any(
            isinstance(child, ast.Break) for child in self._own_jumps(node.body)
        )
        uses_continue = any(
            isinstance(child, ast.Continue)
            for child in self._own_jumps(node.body)
        )
        flag = None
        if uses_break:
            flag = self.temp()
            self.emit(f"{flag} = False")
        self.emit("while True:")
        self.depth += 1
        if node.cond is not None:
            cond = self.expr(node.cond)
            self.emit(f"if not ({self._truthy(cond, node.cond)}):")
            self.emit("    break")
        if uses_continue or uses_break:
            self.emit("for _once in (0,):")
            self.depth += 1
            self.loop_stack.append(("for", flag))
            self.stmt(node.body)
            self._ensure_body()
            self.loop_stack.pop()
            self.depth -= 1
            if uses_break:
                self.emit(f"if {flag}:")
                self.emit("    break")
        else:
            self.loop_stack.append(("for", None))
            self.stmt(node.body)
            self.loop_stack.pop()
        if node.step is not None:
            value = self.expr(node.step)
            if not value.isidentifier():
                self.emit(value)
        self.depth -= 1
        self.scopes.pop()

    @staticmethod
    def _own_jumps(body):
        """Break/Continue nodes belonging to this loop (not nested ones)."""
        result = []
        stack = [body]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.While, ast.For)):
                continue
            if isinstance(node, (ast.Break, ast.Continue)):
                result.append(node)
            stack.extend(node.children())
        return result

    def _break(self):
        if not self.loop_stack:
            raise CompileError("break outside a loop")
        top = self.loop_stack[-1]
        if top == "while":
            self.emit("break")
        else:
            _, flag = top
            if flag is None:
                raise CompileError("internal: break without flag")
            self.emit(f"{flag} = True")
            self.emit("break")

    def _continue(self):
        if not self.loop_stack:
            raise CompileError("continue outside a loop")
        top = self.loop_stack[-1]
        if top == "while":
            self.emit("continue")
        else:
            self.emit("break")  # leaves the _once loop; step still runs


_RESERVED = frozenset(
    {
        "def",
        "class",
        "return",
        "pass",
        "break",
        "continue",
        "if",
        "else",
        "elif",
        "while",
        "for",
        "in",
        "not",
        "and",
        "or",
        "None",
        "True",
        "False",
        "lambda",
        "import",
        "from",
        "global",
        "del",
        "try",
        "except",
        "finally",
        "raise",
        "with",
        "as",
        "is",
        "_rt",
        "_once",
    }
)


class CompiledModule:
    """A MiniC program compiled to a live Python namespace."""

    def __init__(self, program, typeinfo=None):
        self.program = program
        self.typeinfo = typeinfo or typecheck_program(program)
        self.global_names = {}
        self.source = self._generate()
        self.namespace = {}
        code = compile(self.source, "<minic-compiled>", "exec")
        exec(code, self.namespace)  # noqa: S102 - our own generated code

    def func_name(self, name):
        return f"mc_{name}"

    def default_value(self, ctype):
        if isinstance(ctype, ct.StructType):
            return f"{_struct_class_name(ctype.name)}()"
        if isinstance(ctype, ct.ArrayType):
            if isinstance(ctype.base, ct.StructType):
                cls = _struct_class_name(ctype.base.name)
                return f"[{cls}() for _ in range({ctype.length})]"
            return f"[0] * {ctype.length}"
        if isinstance(ctype, ct.PointerType):
            return f"{_RT}.NULL"
        return "0"

    def _generate(self):
        lines = [
            "# Generated by repro.minic.compile_py — do not edit.",
            "import struct as _struct",
            "import repro.minic.pyruntime as _rt",
            "",
            "def _net_sendrecv(out_ptr, out_len, in_ptr, in_max):",
            "    raise _rt.InterpError('no network attached;"
            " use CompiledModule.attach_network')",
            "",
        ]
        for struct in self.program.structs:
            lines.extend(self._struct_class(struct))
            lines.append("")
        for glob in self.program.globals:
            name = f"g_{glob.name}"
            self.global_names[glob.name] = name
            lines.append(f"{name} = {self.default_value(glob.ctype)}")
        if self.program.globals:
            lines.append("")
        for func in self.program.funcs:
            lines.extend(_FuncCompiler(self, func).compile())
            lines.append("")
        return "\n".join(lines) + "\n"

    def _struct_class(self, struct):
        cls = _struct_class_name(struct.name)
        field_names = ", ".join(repr(f.name) for f in struct.fields)
        lines = [
            f"class {cls}:",
            f"    __slots__ = ({field_names}{',' if struct.fields else ''})",
            "    def __init__(self):",
        ]
        for field in struct.fields:
            lines.append(
                f"        self.{field.name} = {self.default_value(field.ctype)}"
            )
        if not struct.fields:
            lines.append("        pass")
        return lines

    # -- public API ----------------------------------------------------------

    def func(self, name):
        """Return the compiled Python callable for MiniC function ``name``."""
        return self.namespace[self.func_name(name)]

    def call(self, name, *args):
        return self.func(name)(*args)

    def new_struct(self, name):
        return self.namespace[_struct_class_name(name)]()

    def attach_network(self, network):
        """Install a loopback transport for ``net_sendrecv``.

        ``network`` is a callable taking request ``bytes`` and returning
        reply ``bytes`` (UDP request/response semantics).
        """

        def _net_sendrecv(out_ptr, out_len, in_ptr, in_max):
            request = bytes(
                out_ptr.buffer.data[out_ptr.offset:out_ptr.offset + out_len]
            )
            reply = network(request)[:in_max]
            in_ptr.buffer.data[in_ptr.offset:in_ptr.offset + len(reply)] = (
                reply
            )
            return len(reply)

        self.namespace["_net_sendrecv"] = _net_sendrecv

    @staticmethod
    def new_buffer(size):
        from repro.minic import pyruntime as rt

        return rt.PyBuffer(size)


def compile_program(program, typeinfo=None):
    """Compile a MiniC program; returns a :class:`CompiledModule`."""
    return CompiledModule(program, typeinfo)
